"""Semantics of the bulk-ingestion fast path (``db.batch()``).

Covers the three legs of the batch contract -- journal group commit,
deferred cache/attribute-index maintenance, coalesced event emission --
plus the transaction interplay, the ablation switch, and the crash
shape (torn flush drops the whole batch).  Recovery equivalence under
random crash schedules lives in tests/test_crash_recovery.py; the
per-op-vs-batched build equivalence property in tests/test_query_oracle.py.
"""

import os

import pytest

from repro import perf
from repro.database import TemporalDatabase, open_database
from repro.database import batch as batch_module
from repro.database.events import EventKind
from repro.database.integrity import check_database
from repro.database.transactions import Transaction
from repro.database.wal import Journal, scan_frames
from repro.errors import BatchError, JournalError, TransactionError
from repro.faults.fs import SimulatedFS
from repro.triggers.triggers import (
    EventSpec,
    Trigger,
    TriggerManager,
)


def _seed_db(db):
    db.define_class(
        "person",
        attributes=[("name", "string"), ("age", "temporal(integer)")],
    )
    db.tick()


def _counting_fs():
    fs = SimulatedFS()
    counts = {"append": 0, "fsync": 0}
    original_append, original_fsync = fs.append, fs.fsync

    def append(path, data):
        counts["append"] += 1
        return original_append(path, data)

    def fsync(path):
        counts["fsync"] += 1
        return original_fsync(path)

    fs.append, fs.fsync = append, fsync
    return fs, counts


class TestGroupCommit:
    def test_one_append_one_fsync_per_batch(self):
        fs, counts = _counting_fs()
        journal = Journal("/db/journal.wal", fs=fs)
        db = TemporalDatabase(journal=journal)
        _seed_db(db)
        before = dict(counts)
        with db.batch():
            oids = [
                db.create_object("person", {"name": f"p{i}", "age": i})
                for i in range(20)
            ]
            for oid in oids:
                db.update_attribute(oid, "age", 99)
        assert counts["append"] - before["append"] == 1
        assert counts["fsync"] - before["fsync"] == 1

    def test_per_op_path_appends_and_fsyncs_each_record(self):
        fs, counts = _counting_fs()
        journal = Journal("/db/journal.wal", fs=fs)
        db = TemporalDatabase(journal=journal)
        _seed_db(db)
        before = dict(counts)
        for i in range(5):
            db.create_object("person", {"name": f"p{i}", "age": i})
        assert counts["append"] - before["append"] == 5
        assert counts["fsync"] - before["fsync"] == 5

    def test_batch_is_bracketed_by_tagged_markers(self):
        fs = SimulatedFS()
        journal = Journal("/db/journal.wal", fs=fs)
        db = TemporalDatabase(journal=journal)
        _seed_db(db)
        with db.batch():
            db.create_object("person", {"name": "a", "age": 1})
            db.create_object("person", {"name": "b", "age": 2})
        records, tail = scan_frames(fs.read("/db/journal.wal"))
        assert tail.clean
        kinds = [r["kind"] for r in records]
        begin_at = kinds.index("begin")
        assert records[begin_at]["batch"] is True
        assert kinds[begin_at:] == ["begin", "create", "create", "commit"]
        assert records[-1]["batch"] is True
        # LSNs stay consecutive through the buffered run.
        lsns = [r["lsn"] for r in records]
        assert lsns == list(range(lsns[0], lsns[0] + len(lsns)))

    def test_empty_batch_writes_nothing_and_reuses_lsns(self):
        fs = SimulatedFS()
        journal = Journal("/db/journal.wal", fs=fs)
        db = TemporalDatabase(journal=journal)
        _seed_db(db)
        size = fs.size("/db/journal.wal")
        next_lsn = journal.next_lsn
        with db.batch():
            pass
        assert fs.size("/db/journal.wal") == size
        assert journal.next_lsn == next_lsn

    def test_torn_flush_drops_whole_batch_never_a_prefix(self, tmp_path):
        directory = str(tmp_path / "db")
        db, _ = open_database(directory)
        _seed_db(db)
        kept = db.create_object("person", {"name": "kept", "age": 1})
        with db.batch():
            db.create_object("person", {"name": "torn1", "age": 2})
            db.create_object("person", {"name": "torn2", "age": 3})
        journal_path = os.path.join(directory, "journal.wal")
        with open(journal_path, "rb+") as handle:
            handle.truncate(os.path.getsize(journal_path) - 7)
        recovered, report = open_database(directory)
        assert report.uncommitted_txn
        names = sorted(
            str(recovered.snapshot_at(obj.oid)["name"])
            for obj in recovered.objects()
        )
        assert names == ["kept"]
        assert check_database(recovered).ok
        assert kept in recovered

    def test_journal_batch_rejects_nested_transaction_markers(self):
        journal = Journal("/db/journal.wal", fs=SimulatedFS())
        journal.begin_batch()
        with pytest.raises(JournalError):
            journal.begin()
        with pytest.raises(JournalError):
            journal.checkpoint(TemporalDatabase())
        journal.abort_batch()
        assert not journal.in_batch


class TestCoalescedEvents:
    def test_single_batch_event_with_ordered_payload(self):
        db = TemporalDatabase()
        _seed_db(db)
        events = []
        db.subscribe(lambda _db, event: events.append(event))
        with db.batch():
            oid = db.create_object("person", {"name": "a", "age": 1})
            db.update_attribute(oid, "age", 2)
            db.update_attribute(oid, "age", 3)
        assert len(events) == 1
        event = events[0]
        assert event.kind is EventKind.BATCH
        kinds = [e.kind for e in event.events]
        assert kinds == [
            EventKind.CREATE, EventKind.UPDATE, EventKind.UPDATE
        ]
        assert [e.new_value for e in event.events[1:]] == [2, 3]

    def test_non_batch_event_unpacks_to_itself(self):
        db = TemporalDatabase()
        _seed_db(db)
        events = []
        db.subscribe(lambda _db, event: events.append(event))
        db.create_object("person", {"name": "a", "age": 1})
        assert len(events) == 1
        assert events[0].events == (events[0],)

    def test_exception_mid_batch_keeps_prefix_skips_notification(self):
        db = TemporalDatabase()
        _seed_db(db)
        events = []
        db.subscribe(lambda _db, event: events.append(event))
        with pytest.raises(RuntimeError):
            with db.batch():
                db.create_object("person", {"name": "a", "age": 1})
                raise RuntimeError("boom")
        # The applied prefix stays (no transaction, no rollback)...
        assert len(list(db.objects())) == 1
        # ...but the coalesced notification is skipped.
        assert events == []
        assert not db.in_batch

    def test_triggers_fire_per_contained_op_in_order(self):
        db = TemporalDatabase()
        _seed_db(db)
        manager = TriggerManager(db)
        log = []
        manager.register(
            Trigger(
                name="on-create",
                event=EventSpec(EventKind.CREATE, "person"),
                action=lambda _db, e: log.append(("create", e.oid)),
            )
        )
        manager.register(
            Trigger(
                name="on-age",
                event=EventSpec(EventKind.UPDATE, "person", "age"),
                action=lambda _db, e: log.append(("age", e.new_value)),
            )
        )
        with db.batch():
            oid = db.create_object("person", {"name": "a", "age": 1})
            db.update_attribute(oid, "age", 7)
        assert log == [("create", oid), ("age", 7)]


class TestDeferredMaintenance:
    def test_mid_batch_reads_are_coherent(self):
        db = TemporalDatabase()
        _seed_db(db)
        with db.batch():
            oid = db.create_object("person", {"name": "a", "age": 1})
            # Extents, membership and snapshots must see the new
            # object immediately, not a stale pre-batch cache entry.
            assert oid in db.pi("person", db.now)
            assert oid in db.anchor_extent("person", db.now)
            assert not db.membership_times("person", oid).is_empty
            db.update_attribute(oid, "age", 5)
            assert db.snapshot_at(oid)["age"] == 5
        assert db.snapshot_at(oid)["age"] == 5

    def test_reads_warmed_before_batch_are_invalidated_at_close(self):
        db = TemporalDatabase()
        _seed_db(db)
        oid = db.create_object("person", {"name": "a", "age": 1})
        assert db.snapshot_at(oid)["age"] == 1  # warm the caches
        extent = db.pi("person", db.now)
        with db.batch():
            db.update_attribute(oid, "age", 2)
            other = db.create_object("person", {"name": "b", "age": 3})
        assert db.snapshot_at(oid)["age"] == 2
        assert other in db.pi("person", db.now)
        assert extent == frozenset({oid})  # the old answer was a copy

    def test_attr_index_delta_keeps_planner_exact(self):
        from repro.query import attr, select

        db = TemporalDatabase()
        _seed_db(db)
        oids = [
            db.create_object("person", {"name": f"p{i}", "age": i})
            for i in range(40)
        ]
        # Build the index, then mutate a few objects in a batch (below
        # the rebuild fraction): the coalesced delta must rederive them.
        query = select("person").where(attr("age") == 99)
        assert query.run(db) == []
        registry = db.caches.attr_indexes
        assert registry.peek("age") is not None
        with db.batch():
            for oid in oids[:5]:
                db.update_attribute(oid, "age", 99)
        assert registry.peek("age") is not None  # delta, not rebuild
        assert set(query.run(db)) == set(oids[:5])

    def test_rebuild_heuristic_drops_indexes_on_big_batches(self):
        from repro.query import attr, select

        db = TemporalDatabase()
        _seed_db(db)
        oids = [
            db.create_object("person", {"name": f"p{i}", "age": i})
            for i in range(40)
        ]
        query = select("person").where(attr("age") == 99)
        assert query.run(db) == []
        registry = db.caches.attr_indexes
        assert registry.peek("age") is not None
        with db.batch():
            for oid in oids:  # the whole population: past the fraction
                db.update_attribute(oid, "age", 99)
        assert registry.peek("age") is None  # dropped for lazy rebuild
        assert set(query.run(db)) == set(oids)

    def test_suspension_flag_round_trips(self):
        db = TemporalDatabase()
        _seed_db(db)
        assert not db.caches.suspended
        with db.batch():
            assert db.caches.suspended
            assert db.caches.attr_indexes.suspended
        assert not db.caches.suspended
        assert not db.caches.attr_indexes.suspended


class TestTransactionInterplay:
    def test_rollback_truncates_whole_batch(self, tmp_path):
        directory = str(tmp_path / "db")
        db, _ = open_database(directory)
        _seed_db(db)
        db.create_object("person", {"name": "kept", "age": 1})
        size_before = os.path.getsize(
            os.path.join(directory, "journal.wal")
        )
        try:
            with Transaction(db):
                with db.batch():
                    db.create_object("person", {"name": "gone", "age": 2})
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        assert len(list(db.objects())) == 1
        assert os.path.getsize(
            os.path.join(directory, "journal.wal")
        ) == size_before
        recovered, _ = open_database(directory)
        assert len(list(recovered.objects())) == 1

    def test_rollback_mid_batch_discards_buffer(self, tmp_path):
        directory = str(tmp_path / "db")
        db, _ = open_database(directory)
        _seed_db(db)
        try:
            with Transaction(db):
                with db.batch():
                    db.create_object("person", {"name": "gone", "age": 2})
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(list(db.objects())) == 0
        assert not db.in_batch
        recovered, _ = open_database(directory)
        assert len(list(recovered.objects())) == 0

    def test_commit_defers_barrier_to_transaction(self):
        fs, counts = _counting_fs()
        journal = Journal("/db/journal.wal", fs=fs)
        db = TemporalDatabase(journal=journal)
        _seed_db(db)
        before = dict(counts)
        with Transaction(db):
            with db.batch():
                db.create_object("person", {"name": "a", "age": 1})
                db.create_object("person", {"name": "b", "age": 2})
        # begin marker + batch flush + commit marker appended; exactly
        # one fsync -- the transaction commit barrier.
        assert counts["fsync"] - before["fsync"] == 1
        records, _tail = scan_frames(fs.read("/db/journal.wal"))
        kinds = [r["kind"] for r in records]
        # The batch wrote no markers of its own inside the transaction.
        assert kinds.count("begin") == 1 and kinds.count("commit") == 1

    def test_transaction_inside_batch_is_rejected(self):
        db = TemporalDatabase()
        _seed_db(db)
        with db.batch():
            with pytest.raises(BatchError):
                Transaction(db).begin()

    def test_nested_batch_is_rejected(self):
        db = TemporalDatabase()
        _seed_db(db)
        with db.batch():
            with pytest.raises(BatchError):
                db.batch().__enter__()

    def test_commit_with_open_batch_is_rejected(self):
        db = TemporalDatabase()
        _seed_db(db)
        txn = Transaction(db).begin()
        batch = db.batch()
        batch.__enter__()
        with pytest.raises(TransactionError):
            txn.commit()
        batch.__exit__(None, None, None)
        txn.commit()


class TestAblation:
    def test_disabled_batch_takes_per_op_path(self):
        fs, counts = _counting_fs()
        journal = Journal("/db/journal.wal", fs=fs)
        db = TemporalDatabase(journal=journal)
        _seed_db(db)
        events = []
        db.subscribe(lambda _db, event: events.append(event))
        before = dict(counts)
        with batch_module.disabled():
            with db.batch():
                db.create_object("person", {"name": "a", "age": 1})
                db.create_object("person", {"name": "b", "age": 2})
        assert counts["fsync"] - before["fsync"] == 2  # one per op
        assert [e.kind for e in events] == [
            EventKind.CREATE, EventKind.CREATE
        ]

    def test_set_enabled_round_trips(self):
        assert batch_module.is_enabled
        previous = batch_module.set_enabled(False)
        assert previous is True
        assert not batch_module.is_enabled
        batch_module.set_enabled(True)
        with batch_module.disabled():
            assert not batch_module.is_enabled
        assert batch_module.is_enabled


class TestCounters:
    def test_batch_metrics_register(self):
        perf.reset_stats()
        db = TemporalDatabase()
        _seed_db(db)
        with db.batch():
            oid = db.create_object("person", {"name": "a", "age": 1})
            db.update_attribute(oid, "age", 2)
        stats = perf.stats()
        assert stats["batch.ops"]["count"] == 2
        assert stats["batch.coalesced_events"]["count"] == 2
        assert stats["batch.commits"]["count"] == 1
        # No journal attached: no group-commit fsync happened.
        assert stats["batch.fsyncs"]["count"] == 0
        assert "batch.ops" in perf.format_stats()

    def test_fsync_metric_counts_group_commits(self):
        perf.reset_stats()
        journal = Journal("/db/journal.wal", fs=SimulatedFS())
        db = TemporalDatabase(journal=journal)
        _seed_db(db)
        for _ in range(3):
            with db.batch():
                db.create_object("person", {"name": "x", "age": 1})
        assert perf.stats()["batch.fsyncs"]["count"] == 3
