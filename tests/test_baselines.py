"""The relational-era baselines and their cross-validation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    AttributeTimestampedStore,
    HistoryUnsupported,
    Operation,
    SnapshotStore,
    TupleTimestampedStore,
    replay,
    stores_agree,
)


def simple_log():
    return [
        Operation("insert", 1, 0, row={"a": 1, "b": "x"}),
        Operation("update", 1, 5, attribute="a", value=2),
        Operation("update", 1, 9, attribute="b", value="y"),
        Operation("insert", 2, 3, row={"a": 10, "b": "z"}),
        Operation("update", 1, 12, attribute="a", value=3),
        Operation("delete", 2, 14),
    ]


def all_stores():
    attrs = ["a", "b"]
    return (
        SnapshotStore(attrs),
        TupleTimestampedStore(attrs),
        AttributeTimestampedStore(attrs),
    )


class TestSnapshotStore:
    def test_current_only(self):
        snapshot_store, *_ = all_stores()
        replay(snapshot_store, simple_log())
        assert snapshot_store.current(1) == {"a": 3, "b": "y"}
        assert snapshot_store.current(2) is None  # deleted

    def test_history_unsupported(self):
        snapshot_store, *_ = all_stores()
        replay(snapshot_store, simple_log())
        with pytest.raises(HistoryUnsupported):
            snapshot_store.attribute_history(1, "a")
        with pytest.raises(HistoryUnsupported):
            snapshot_store.snapshot_at(1, 5)

    def test_storage_is_current_cells_only(self):
        snapshot_store, *_ = all_stores()
        replay(snapshot_store, simple_log())
        assert snapshot_store.storage_cells() == 2  # one live row, 2 attrs


class TestTupleTimestamping:
    def test_versions_whole_rows(self):
        _, tuple_store, _ = all_stores()
        replay(tuple_store, simple_log())
        # key 1: insert + 3 updates = 4 versions of 2 cells each.
        assert tuple_store.version_count() == 4 + 1
        assert tuple_store.storage_cells() == 5 * 2

    def test_snapshot_reconstruction(self):
        _, tuple_store, _ = all_stores()
        replay(tuple_store, simple_log())
        assert tuple_store.snapshot_at(1, 0) == {"a": 1, "b": "x"}
        assert tuple_store.snapshot_at(1, 7) == {"a": 2, "b": "x"}
        assert tuple_store.snapshot_at(1, 10) == {"a": 2, "b": "y"}
        assert tuple_store.snapshot_at(2, 13) == {"a": 10, "b": "z"}
        assert tuple_store.snapshot_at(2, 14) is None  # deleted at 14
        assert tuple_store.snapshot_at(1, 100) == {"a": 3, "b": "y"}

    def test_attribute_history_coalesces(self):
        _, tuple_store, _ = all_stores()
        replay(tuple_store, simple_log())
        # b was "x" through versions at 0 and 5, then "y".
        history = tuple_store.attribute_history(1, "b")
        assert history == [((0, 9), "x"), ((9, None), "y")]

    def test_same_value_update_is_free(self):
        _, tuple_store, _ = all_stores()
        tuple_store.insert(1, {"a": 1, "b": 2}, 0)
        tuple_store.update(1, "a", 1, 5)
        assert tuple_store.version_count() == 1

    def test_same_instant_update_in_place(self):
        _, tuple_store, _ = all_stores()
        tuple_store.insert(1, {"a": 1, "b": 2}, 3)
        tuple_store.update(1, "a", 9, 3)
        assert tuple_store.version_count() == 1
        assert tuple_store.current(1) == {"a": 9, "b": 2}


class TestAttributeTimestamping:
    def test_per_attribute_histories(self):
        _, _, attribute_store = all_stores()
        replay(attribute_store, simple_log())
        assert attribute_store.attribute_history(1, "a") == [
            ((0, 5), 1), ((5, 12), 2), ((12, None), 3),
        ]
        assert attribute_store.attribute_history(1, "b") == [
            ((0, 9), "x"), ((9, None), "y"),
        ]

    def test_storage_cells_fewer_than_tuple(self):
        """The space story: attribute timestamping stores one new cell
        per change; tuple timestamping copies the whole row."""
        _, tuple_store, attribute_store = all_stores()
        replay(tuple_store, simple_log())
        replay(attribute_store, simple_log())
        assert attribute_store.storage_cells() < tuple_store.storage_cells()

    def test_snapshot_reconstruction(self):
        _, _, attribute_store = all_stores()
        replay(attribute_store, simple_log())
        assert attribute_store.snapshot_at(1, 7) == {"a": 2, "b": "x"}
        assert attribute_store.snapshot_at(2, 2) is None
        assert attribute_store.snapshot_at(2, 14) is None

    def test_delete_closes_histories(self):
        _, _, attribute_store = all_stores()
        replay(attribute_store, simple_log())
        assert attribute_store.current(2) is None
        assert attribute_store.attribute_history(2, "a") == [((3, 14), 10)]


class TestAgreement:
    def test_simple_log(self):
        _, tuple_store, attribute_store = all_stores()
        replay(tuple_store, simple_log())
        replay(attribute_store, simple_log())
        assert stores_agree(
            tuple_store, attribute_store, [1, 2], range(0, 20)
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_logs(self, seed):
        """The two history-keeping stores always describe the same
        function of time."""
        rng = random.Random(seed)
        attrs = ["a", "b", "c"]
        ops = []
        t = 0
        live = set()
        for key in (1, 2, 3):
            ops.append(
                Operation(
                    "insert", key, t,
                    row={a: rng.randrange(5) for a in attrs},
                )
            )
            live.add(key)
            t += rng.randint(0, 2)
        for _ in range(40):
            t += rng.randint(0, 3)
            action = rng.random()
            if action < 0.85 or not live:
                key = rng.choice([1, 2, 3])
                if key not in live:
                    continue
                ops.append(
                    Operation(
                        "update", key, t,
                        attribute=rng.choice(attrs),
                        value=rng.randrange(5),
                    )
                )
            else:
                key = rng.choice(sorted(live))
                ops.append(Operation("delete", key, t))
                live.discard(key)
        _, tuple_store, attribute_store = (
            SnapshotStore(attrs),
            TupleTimestampedStore(attrs),
            AttributeTimestampedStore(attrs),
        )
        replay(tuple_store, ops)
        replay(attribute_store, ops)
        assert stores_agree(
            tuple_store, attribute_store, [1, 2, 3], range(0, t + 2)
        )

    def test_agreement_with_the_model(self, empty_db):
        """The attribute-timestamped baseline mirrors a T_Chimera
        temporal attribute exactly (same update log)."""
        db = empty_db
        db.define_class("item", attributes=[("v", "temporal(integer)")])
        store = AttributeTimestampedStore(["v"])
        oid = db.create_object("item", {"v": 1})
        store.insert(1, {"v": 1}, db.now)
        for value in (2, 5, 5, 9):
            db.tick(3)
            db.update_attribute(oid, "v", value)
            store.update(1, "v", value, db.now)
        history = db.get_object(oid).value["v"]
        base_history = store.attribute_history(1, "v")
        model_pairs = [
            (interval.start, carried)
            for interval, carried in history.pairs()
        ]
        base_pairs = [(start, v) for (start, _end), v in base_history]
        assert model_pairs == base_pairs

    def test_unknown_operation_kind(self):
        store = SnapshotStore(["a"])
        with pytest.raises(ValueError):
            replay(store, [Operation("upsert", 1, 0)])
