"""Attributes, methods, class signatures, metaclasses (Section 4)."""

import pytest

from repro.errors import (
    DuplicateAttributeError,
    LifespanError,
    SchemaError,
    TypeSyntaxError,
)
from repro.schema.attribute import Attribute
from repro.schema.class_def import ClassKind, ClassSignature
from repro.schema.derived_types import (
    historical_type,
    is_null_type,
    static_type,
    structural_type,
)
from repro.schema.metaclass import Metaclass
from repro.schema.method import MethodSignature
from repro.temporal.intervals import Interval
from repro.temporal.temporalvalue import TemporalValue
from repro.types.extension import in_extension
from repro.types.grammar import (
    INTEGER,
    REAL,
    STRING,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
)
from repro.types.parser import parse_type
from repro.values.oid import OID

from tests.strategies import WORLD_ISA, world_context


class TestAttribute:
    def test_basic(self):
        a = Attribute("salary", TemporalType(REAL))
        assert a.is_temporal and not a.is_static
        assert a.kind == "temporal"

    def test_concrete_syntax_accepted(self):
        a = Attribute("name", "temporal(string)")
        assert a.type == TemporalType(STRING)

    def test_static(self):
        a = Attribute("dept", STRING)
        assert a.is_static and a.kind == "static"

    def test_immutable_needs_temporal(self):
        # Immutable attributes are a special case of temporal ones
        # (constant functions from the temporal domain; Section 1.1).
        a = Attribute("name", "temporal(string)", immutable=True)
        assert a.kind == "immutable"
        with pytest.raises(SchemaError):
            Attribute("name", STRING, immutable=True)

    def test_bad_name(self):
        with pytest.raises(SchemaError):
            Attribute("", INTEGER)

    def test_bad_type(self):
        with pytest.raises(TypeSyntaxError):
            Attribute("a", 42)


class TestMethodSignature:
    def test_basic(self):
        m = MethodSignature("add-participant", ("person",), "project")
        assert m.inputs == (ObjectType("person"),)
        assert m.output == ObjectType("project")
        assert m.arity == 1

    def test_repr_matches_paper(self):
        m = MethodSignature("add-participant", ("person",), "project")
        assert repr(m) == "(add-participant, person -> project)"

    def test_override_covariant_output(self):
        base = MethodSignature("m", (), "person")
        good = MethodSignature("m", (), "employee")
        bad = MethodSignature("m", (), "project")
        assert good.is_valid_override(base, WORLD_ISA)
        assert not bad.is_valid_override(base, WORLD_ISA)

    def test_override_contravariant_inputs(self):
        base = MethodSignature("m", ("employee",), "integer")
        generalized = MethodSignature("m", ("person",), "integer")
        specialized = MethodSignature("m", ("manager",), "integer")
        assert generalized.is_valid_override(base, WORLD_ISA)
        assert not specialized.is_valid_override(base, WORLD_ISA)

    def test_override_arity_mismatch(self):
        base = MethodSignature("m", ("person",), "integer")
        other = MethodSignature("m", ("person", "person"), "integer")
        assert not other.is_valid_override(base, WORLD_ISA)


def make_project_class(created_at=10) -> ClassSignature:
    """The class of Example 4.1."""
    return ClassSignature(
        "project",
        attributes=[
            Attribute("name", "temporal(string)", immutable=True),
            Attribute("objective", "string"),
            Attribute("workplan", "set-of(task)"),
            Attribute("subproject", "temporal(project)"),
            Attribute("participants", "temporal(set-of(person))"),
        ],
        methods=[MethodSignature("add-participant", ("person",), "project")],
        c_attributes=[Attribute("average-participants", "integer")],
        created_at=created_at,
        c_attr_values={"average-participants": 20},
    )


class TestClassSignature:
    def test_example_4_1_is_static(self):
        """The project class is static: its only c-attribute is static
        -- even though its instances are historical objects."""
        cls = make_project_class()
        assert cls.kind is ClassKind.STATIC
        assert not cls.is_historical
        assert cls.instances_are_historical()

    def test_historical_class(self):
        cls = ClassSignature(
            "stats",
            c_attributes=[Attribute("avg", "temporal(real)")],
        )
        assert cls.kind is ClassKind.HISTORICAL

    def test_attribute_partition(self):
        cls = make_project_class()
        assert set(cls.temporal_attributes()) == {
            "name", "subproject", "participants",
        }
        assert set(cls.static_attributes()) == {"objective", "workplan"}

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DuplicateAttributeError):
            ClassSignature(
                "c",
                attributes=[Attribute("a", INTEGER), Attribute("a", STRING)],
            )

    def test_reserved_c_attribute_names(self):
        with pytest.raises(SchemaError):
            ClassSignature("c", c_attributes=[Attribute("ext", INTEGER)])

    def test_lifespan(self):
        cls = make_project_class(created_at=10)
        assert cls.lifespan == Interval.from_now(10)
        assert cls.is_alive
        assert cls.alive_at(10) and cls.alive_at(500)
        assert not cls.alive_at(9)

    def test_close_lifespan(self):
        cls = make_project_class(created_at=10)
        cls.close_lifespan(50)
        assert cls.lifespan == Interval(10, 49)
        assert not cls.is_alive
        with pytest.raises(LifespanError):
            cls.close_lifespan(60)

    def test_cannot_drop_in_creation_tick(self):
        cls = make_project_class(created_at=10)
        with pytest.raises(LifespanError):
            cls.close_lifespan(10)

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            make_project_class().attribute("ghost")


class TestDerivedTypes:
    def test_structural_type(self):
        t = structural_type(make_project_class())
        assert t == parse_type(
            "record-of(name: temporal(string), objective: string, "
            "workplan: set-of(task), subproject: temporal(project), "
            "participants: temporal(set-of(person)))"
        )

    def test_h_type_example_4_2(self):
        """h_type(project) from Example 4.2."""
        assert historical_type(make_project_class()) == parse_type(
            "record-of(name: string, subproject: project, "
            "participants: set-of(person))"
        )

    def test_s_type_example_4_2(self):
        """s_type(project) from Example 4.2."""
        assert static_type(make_project_class()) == parse_type(
            "record-of(objective: string, workplan: set-of(task))"
        )

    def test_footnote_5_null_types(self):
        all_static = ClassSignature(
            "s", attributes=[Attribute("a", INTEGER)]
        )
        assert is_null_type(historical_type(all_static))
        assert not is_null_type(static_type(all_static))
        all_temporal = ClassSignature(
            "t", attributes=[Attribute("a", "temporal(integer)")]
        )
        assert is_null_type(static_type(all_temporal))
        assert not is_null_type(historical_type(all_temporal))


class TestClassHistory:
    def test_membership_lifecycle(self):
        cls = make_project_class()
        oid = OID(1)
        cls.history.add_member(oid, 20)
        assert cls.history.is_member(oid, 20)
        assert cls.history.is_member(oid, 99)
        assert not cls.history.is_member(oid, 19)
        cls.history.remove_member(oid, 50)
        assert cls.history.is_member(oid, 49)
        assert not cls.history.is_member(oid, 50)

    def test_member_times(self):
        cls = make_project_class()
        oid = OID(1)
        cls.history.add_member(oid, 20)
        cls.history.remove_member(oid, 50)
        cls.history.add_member(oid, 60)
        times = cls.history.member_times(oid, now=70)
        assert list(times.instants())[:1] == [20]
        assert 49 in times and 50 not in times and 65 in times

    def test_instance_requires_membership(self):
        cls = make_project_class()
        with pytest.raises(LifespanError):
            cls.history.add_instance(OID(1), 20)

    def test_proper_ext_subset_of_ext(self):
        cls = make_project_class()
        oid = OID(1)
        cls.history.add_member(oid, 20)
        cls.history.add_instance(oid, 20)
        assert cls.history.instances_at(30) <= cls.history.members_at(30)

    def test_join_and_leave_same_tick(self):
        cls = make_project_class()
        oid = OID(1)
        cls.history.add_member(oid, 20)
        cls.history.remove_member(oid, 20)
        assert not cls.history.is_member(oid, 20)
        assert cls.history.member_times(oid, now=30).is_empty

    def test_scan_agrees_with_sets(self):
        cls = make_project_class()
        a, b = OID(1), OID(2)
        cls.history.add_member(a, 20)
        cls.history.add_member(b, 25)
        cls.history.remove_member(a, 30)
        for t in (19, 20, 24, 25, 29, 30, 40):
            assert cls.history.members_at(t) == (
                cls.history.members_at_via_scan(t)
            )

    def test_c_attr_values(self):
        cls = make_project_class()
        assert cls.history.get_c_attr("average-participants") == 20
        cls.history.set_c_attr("average-participants", 25, 30)
        assert cls.history.get_c_attr("average-participants") == 25
        with pytest.raises(SchemaError):
            cls.history.get_c_attr("ghost")

    def test_temporal_c_attr(self):
        cls = ClassSignature(
            "stats",
            c_attributes=[Attribute("avg", "temporal(real)")],
            c_attr_values={"avg": TemporalValue.from_items([((0, 0), 1.0)])},
        )
        cls.history.set_c_attr("avg", 2.0, 5)
        assert cls.history.get_c_attr("avg").at(5) == 2.0
        assert cls.history.get_c_attr("avg").at(0) == 1.0

    def test_as_record_shape(self):
        """Definition 4.1: (a1: v1, ..., ext: E, proper-ext: PE)."""
        record = make_project_class().history.as_record()
        assert set(record.names) == {
            "average-participants", "ext", "proper-ext",
        }


class TestMetaclass:
    def test_naming(self):
        cls = make_project_class()
        mc = Metaclass(cls)
        assert mc.name == "m-project"
        assert mc.instance_name == "project"
        assert mc.unique_instance is cls

    def test_structural_type_includes_extents(self):
        mc = Metaclass(make_project_class())
        t = mc.structural_type()
        member_history = parse_type("temporal(set-of(project))")
        assert t.field_type("ext") == member_history
        assert t.field_type("proper-ext") == member_history
        assert t.field_type("average-participants") == INTEGER

    def test_history_inhabits_metaclass_type(self):
        """The class history record is a legal value of the metaclass's
        structural type -- classes really are instances of their
        metaclasses."""
        cls = make_project_class()
        oid = OID(1, "project")
        cls.history.add_member(oid, 20)
        cls.history.add_instance(oid, 20)
        mc = Metaclass(cls)
        from repro.temporal.intervalsets import IntervalSet

        ctx = world_context()
        ctx.add_membership("project", oid, IntervalSet.span(20, 100))
        assert in_extension(
            cls.history.as_record(), mc.structural_type(), 50, ctx, now=50
        )
