"""Hypothesis strategies for the T_Chimera universe.

Generates instants, intervals, interval sets, temporal values, type
terms, and -- crucially for the theorem tests -- *(type, value)* pairs
where the value is drawn from ``[[T]]_t`` for a fixed shared typing
context, so soundness/completeness can be quantified meaningfully.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.types.context import DictTypeContext
from repro.types.grammar import (
    BOOL,
    CHARACTER,
    INTEGER,
    REAL,
    STRING,
    TIME,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
    Type,
)
from repro.types.subtyping import IsaOrder
from repro.values.null import NULL
from repro.values.oid import OID
from repro.values.records import RecordValue

MAX_INSTANT = 200

instants = st.integers(min_value=0, max_value=MAX_INSTANT)


@st.composite
def intervals(draw, max_instant: int = MAX_INSTANT):
    start = draw(st.integers(min_value=0, max_value=max_instant))
    end = draw(st.integers(min_value=start, max_value=max_instant))
    return Interval(start, end)


@st.composite
def interval_sets(draw, max_intervals: int = 6):
    pieces = draw(st.lists(intervals(), max_size=max_intervals))
    return IntervalSet(pieces)


@st.composite
def temporal_values(draw, values=st.integers(-100, 100), max_pairs: int = 8):
    """A concrete (no open pair) temporal value with random gaps."""
    n = draw(st.integers(min_value=0, max_value=max_pairs))
    history = TemporalValue()
    t = draw(st.integers(min_value=0, max_value=10))
    for _ in range(n):
        length = draw(st.integers(min_value=1, max_value=10))
        history.put(Interval(t, t + length - 1), draw(values))
        t += length + draw(st.integers(min_value=0, max_value=4))
    return history


# ---------------------------------------------------------------------------
# A small fixed class world shared by type/value generation.
# ---------------------------------------------------------------------------

#: class name -> (parents)
WORLD_CLASSES: dict[str, tuple[str, ...]] = {
    "person": (),
    "employee": ("person",),
    "manager": ("employee",),
    "project": (),
}

WORLD_OIDS: dict[str, tuple[OID, ...]] = {
    "person": (OID(1, "person"), OID(2, "person"), OID(3, "person")),
    "employee": (OID(2, "person"), OID(3, "person")),
    "manager": (OID(3, "person"),),
    "project": (OID(10, "project"), OID(11, "project")),
}


class WorldIsa:
    """The ISA order of the fixed class world."""

    _ANCESTORS = {
        "person": {"person"},
        "employee": {"employee", "person"},
        "manager": {"manager", "employee", "person"},
        "project": {"project"},
    }

    def isa_le(self, sub: str, sup: str) -> bool:
        return sup in self._ANCESTORS.get(sub, {sub})

    def class_lub(self, names) -> str | None:
        items = list(names)
        if not items:
            return None
        common = set.intersection(
            *(set(self._ANCESTORS.get(n, {n})) for n in items)
        )
        minimal = [
            c
            for c in common
            if not any(
                o != c and c in self._ANCESTORS.get(o, ()) for o in common
            )
        ]
        return minimal[0] if len(minimal) == 1 else None


WORLD_ISA: IsaOrder = WorldIsa()


def world_context(now: int | None = 150) -> DictTypeContext:
    """A typing context for the fixed world, constant over [0, 200]."""
    return DictTypeContext.from_constant_extents(
        WORLD_OIDS, horizon=(0, MAX_INSTANT), isa=WORLD_ISA, now=now
    )


basic_types = st.sampled_from([INTEGER, REAL, BOOL, CHARACTER, STRING, TIME])
object_types = st.sampled_from(
    [ObjectType(name) for name in WORLD_CLASSES]
)
_attr_names = st.sampled_from(["a", "b", "c", "d"])


def chimera_types(max_depth: int = 3):
    """Types in CT (no temporal constructor)."""
    return st.recursive(
        st.one_of(basic_types, object_types),
        lambda children: st.one_of(
            children.map(SetOf),
            children.map(ListOf),
            st.dictionaries(
                _attr_names, children, min_size=1, max_size=3
            ).map(RecordOf),
        ),
        max_leaves=max_depth * 2,
    )


def t_chimera_types(max_depth: int = 3):
    """Arbitrary T_Chimera types (temporal allowed, not nested)."""
    leaf = st.one_of(
        basic_types, object_types, chimera_types(2).map(TemporalType)
    )
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            children.map(SetOf),
            children.map(ListOf),
            st.dictionaries(
                _attr_names, children, min_size=1, max_size=3
            ).map(RecordOf),
        ),
        max_leaves=max_depth * 2,
    )


@st.composite
def values_of_type(draw, t: Type, allow_null: bool = True, depth: int = 0):
    """A value drawn from ``[[t]]_x`` for every x in [0, MAX_INSTANT]
    of the fixed world (the world's extents are constant, so the draw
    is uniform in time)."""
    if allow_null and depth > 0 and draw(st.integers(0, 19)) == 0:
        return NULL
    if t == INTEGER:
        return draw(st.integers(-1000, 1000))
    if t == REAL:
        return draw(
            st.floats(
                allow_nan=False, allow_infinity=False, width=32
            )
        )
    if t == BOOL:
        return draw(st.booleans())
    if t == CHARACTER:
        return draw(st.characters(codec="ascii", min_codepoint=33,
                                  max_codepoint=126))
    if t == STRING:
        return draw(st.text(max_size=8))
    if t == TIME:
        return draw(instants)
    if isinstance(t, ObjectType):
        pool = WORLD_OIDS.get(t.class_name, ())
        if not pool:
            return NULL
        return draw(st.sampled_from(pool))
    if isinstance(t, SetOf):
        items = draw(
            st.lists(values_of_type(t.element, depth=depth + 1), max_size=3)
        )
        return frozenset(items)
    if isinstance(t, ListOf):
        return tuple(
            draw(
                st.lists(
                    values_of_type(t.element, depth=depth + 1), max_size=3
                )
            )
        )
    if isinstance(t, RecordOf):
        return RecordValue(
            {
                name: draw(values_of_type(ft, depth=depth + 1))
                for name, ft in t.fields.items()
            }
        )
    if isinstance(t, TemporalType):
        history = TemporalValue()
        clock = draw(st.integers(0, 10))
        for _ in range(draw(st.integers(0, 3))):
            length = draw(st.integers(1, 8))
            if clock + length - 1 > MAX_INSTANT:
                break
            history.put(
                Interval(clock, clock + length - 1),
                draw(values_of_type(t.argument, depth=depth + 1)),
            )
            clock += length + draw(st.integers(0, 3))
        return history
    raise AssertionError(f"no generator for {t!r}")


@st.composite
def typed_values(draw, types=None):
    """(type, value-in-its-extension) pairs over the fixed world."""
    t = draw(types if types is not None else t_chimera_types())
    value = draw(values_of_type(t))
    return t, value
