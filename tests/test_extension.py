"""Type extensions [[T]]_t (Definition 3.5)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnresolvedNowError
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.types.context import DictTypeContext
from repro.types.extension import in_basic_domain, in_extension
from repro.types.grammar import (
    BOOL,
    CHARACTER,
    INTEGER,
    REAL,
    STRING,
    TIME,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
)
from repro.values.null import NULL
from repro.values.oid import OID
from repro.values.records import RecordValue

from tests.strategies import typed_values, world_context


class TestNull:
    """null in [[T]]_t for every T (Definition 3.5, first clause)."""

    @pytest.mark.parametrize(
        "t",
        [
            INTEGER,
            TIME,
            ObjectType("person"),
            SetOf(INTEGER),
            RecordOf(a=STRING),
            TemporalType(INTEGER),
        ],
    )
    def test_null_in_every_type(self, t):
        assert in_extension(NULL, t, 0, world_context())


class TestBasicDomains:
    def test_integer(self):
        assert in_basic_domain(5, INTEGER)
        assert in_basic_domain(-5, INTEGER)
        assert not in_basic_domain(5.0, INTEGER)
        assert not in_basic_domain(True, INTEGER)

    def test_real_includes_integers(self):
        # dom(real) is R; the integers embed.
        assert in_basic_domain(1.5, REAL)
        assert in_basic_domain(2, REAL)
        assert not in_basic_domain(True, REAL)
        assert not in_basic_domain("1.5", REAL)

    def test_bool(self):
        assert in_basic_domain(True, BOOL)
        assert not in_basic_domain(1, BOOL)

    def test_character_is_length_one(self):
        assert in_basic_domain("a", CHARACTER)
        assert not in_basic_domain("ab", CHARACTER)
        assert not in_basic_domain("", CHARACTER)

    def test_string(self):
        assert in_basic_domain("", STRING)
        assert in_basic_domain("abc", STRING)

    def test_time_is_naturals(self):
        assert in_basic_domain(0, TIME)
        assert not in_basic_domain(-1, TIME)
        assert not in_basic_domain(True, TIME)


class TestObjectTypes:
    """[[c]]_t = pi(c, t): extents vary over time."""

    def setup_method(self):
        self.i1 = OID(1)
        self.i2 = OID(2)
        self.ctx = DictTypeContext(
            {
                "person": {
                    self.i1: IntervalSet.span(0, 100),
                    self.i2: IntervalSet.span(10, 50),
                },
            },
            now=120,
        )

    def test_member_at_instant(self):
        assert in_extension(self.i2, ObjectType("person"), 30, self.ctx)

    def test_not_member_outside(self):
        assert not in_extension(self.i2, ObjectType("person"), 5, self.ctx)
        assert not in_extension(self.i2, ObjectType("person"), 60, self.ctx)

    def test_unknown_class_empty_extent(self):
        assert not in_extension(self.i1, ObjectType("ghost"), 30, self.ctx)

    def test_non_oid_rejected(self):
        assert not in_extension(42, ObjectType("person"), 30, self.ctx)


class TestStructured:
    def test_set(self):
        ctx = world_context()
        t = SetOf(INTEGER)
        assert in_extension(frozenset({1, 2}), t, 0, ctx)
        assert in_extension(set(), t, 0, ctx)
        assert not in_extension(frozenset({1, "x"}), t, 0, ctx)
        assert not in_extension([1, 2], t, 0, ctx)

    def test_list(self):
        ctx = world_context()
        t = ListOf(STRING)
        assert in_extension(["a", "b"], t, 0, ctx)
        assert in_extension((), t, 0, ctx)
        assert not in_extension(["a", 1], t, 0, ctx)
        assert not in_extension({"a"}, t, 0, ctx)

    def test_record_exact_names(self):
        ctx = world_context()
        t = RecordOf(a=INTEGER, b=STRING)
        assert in_extension(RecordValue(a=1, b="x"), t, 0, ctx)
        assert not in_extension(RecordValue(a=1), t, 0, ctx)
        assert not in_extension(RecordValue(a=1, b="x", c=0), t, 0, ctx)
        assert not in_extension(RecordValue(a="x", b="x"), t, 0, ctx)

    def test_record_null_fields(self):
        ctx = world_context()
        t = RecordOf(a=INTEGER, b=STRING)
        assert in_extension(RecordValue(a=NULL, b=NULL), t, 0, ctx)

    def test_example_3_2(self):
        """Example 3.2, with the world's person/employee extents."""
        ctx = world_context()
        i2 = OID(2, "person")  # an employee in the fixed world
        assert in_extension(10, INTEGER, 0, ctx)
        assert in_extension(100, INTEGER, 0, ctx)
        assert in_extension(i2, ObjectType("employee"), 5, ctx)
        assert in_extension(
            frozenset({OID(1, "person"), i2}),
            SetOf(ObjectType("person")),
            5,
            ctx,
        )
        assert in_extension(
            TemporalValue.from_items([((5, 10), 12), ((11, 30), 5)]),
            TemporalType(INTEGER),
            5,
            ctx,
        )
        assert in_extension(
            RecordValue(
                name="Bob",
                score=TemporalValue.from_items(
                    [((1, 100), 40), ((101, 200), 70)]
                ),
            ),
            RecordOf(name=STRING, score=TemporalType(INTEGER)),
            5,
            ctx,
        )


class TestTemporalExtension:
    """[[temporal(T)]]_t: partial functions with per-instant legality."""

    def test_carrier_must_be_temporal_value(self):
        assert not in_extension(
            5, TemporalType(INTEGER), 0, world_context()
        )

    def test_per_pair_check(self):
        tv = TemporalValue.from_items([((0, 5), 1), ((6, 9), "x")])
        assert not in_extension(tv, TemporalType(INTEGER), 0, world_context())

    def test_empty_function_is_legal(self):
        assert in_extension(
            TemporalValue(), TemporalType(INTEGER), 0, world_context()
        )

    def test_null_pairs_are_legal(self):
        tv = TemporalValue.from_items([((0, 5), NULL)])
        assert in_extension(tv, TemporalType(INTEGER), 0, world_context())

    def test_object_valued_checks_membership_throughout(self):
        """f(t') in [[T]]_t' -- the primed instant of Definition 3.5."""
        oid = OID(7)
        ctx = DictTypeContext(
            {"person": {oid: IntervalSet.span(10, 20)}}, now=100
        )
        inside = TemporalValue.from_items([((12, 18), oid)])
        assert in_extension(inside, TemporalType(ObjectType("person")), 0, ctx)
        spills = TemporalValue.from_items([((15, 25), oid)])
        assert not in_extension(
            spills, TemporalType(ObjectType("person")), 0, ctx
        )

    def test_structured_object_valued(self):
        oid = OID(7)
        ctx = DictTypeContext(
            {"person": {oid: IntervalSet.span(10, 20)}}, now=100
        )
        good = TemporalValue.from_items([((12, 14), frozenset({oid}))])
        t = TemporalType(SetOf(ObjectType("person")))
        assert in_extension(good, t, 0, ctx)
        bad = TemporalValue.from_items([((19, 22), frozenset({oid}))])
        assert not in_extension(bad, t, 0, ctx)

    def test_open_pair_needs_now(self):
        oid = OID(7)
        ctx = DictTypeContext({"person": {oid: IntervalSet.span(0, 100)}})
        tv = TemporalValue()
        tv.assign(5, oid)
        with pytest.raises(UnresolvedNowError):
            in_extension(tv, TemporalType(ObjectType("person")), 0, ctx)
        assert in_extension(
            tv, TemporalType(ObjectType("person")), 0, ctx, now=50
        )

    def test_time_independence_without_object_types(self):
        """[[T]]_t is the same for every t when T mentions no classes."""
        tv = TemporalValue.from_items([((0, 9), 42)])
        ctx = world_context()
        for at in (0, 7, 100):
            assert in_extension(tv, TemporalType(INTEGER), at, ctx)

    @given(typed_values(), st.integers(0, 200))
    def test_generated_values_inhabit_their_type(self, pair, at):
        """The strategies only generate (T, v) with v in [[T]]_at."""
        t, value = pair
        assert in_extension(value, t, at, world_context())
