"""Temporal triggers: ECA rules, cascades, termination analysis."""

import pytest

from repro.database.events import EventKind
from repro.errors import TriggerError
from repro.query import attr
from repro.triggers import (
    Trigger,
    TriggerManager,
    on_create,
    on_delete,
    on_migrate,
    on_update,
)
from repro.triggers.triggers import WriteSpec


@pytest.fixture
def hr_db(empty_db):
    db = empty_db
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[
            ("salary", "temporal(real)"),
            ("grade", "temporal(integer)"),
        ],
    )
    db.tick(5)
    return db


class TestEventMatching:
    def test_update_event_with_attribute(self, hr_db):
        db = hr_db
        fired = []
        manager = TriggerManager(db)
        manager.register(
            Trigger(
                "on-salary",
                on_update("employee", "salary"),
                action=lambda d, e: fired.append(e),
            )
        )
        oid = db.create_object("employee", {"name": "A", "salary": 1.0})
        db.tick()
        db.update_attribute(oid, "salary", 2.0)
        db.update_attribute(oid, "grade", 1)
        assert len(fired) == 1
        assert fired[0].attribute == "salary"
        assert fired[0].old_value == 1.0 and fired[0].new_value == 2.0

    def test_event_matches_subclasses(self, hr_db):
        db = hr_db
        db.define_class("manager", parents=["employee"])
        fired = []
        TriggerManager(db).register(
            Trigger(
                "on-any-person-create",
                on_create("person"),
                action=lambda d, e: fired.append(e.class_name),
            )
        )
        db.create_object("manager", {"name": "M", "salary": 1.0})
        db.create_object("person", {"name": "P"})
        assert fired == ["manager", "person"]

    def test_migrate_and_delete_events(self, hr_db):
        db = hr_db
        db.define_class("manager", parents=["employee"])
        log = []
        manager = TriggerManager(db)
        manager.register(
            Trigger(
                "migrations",
                on_migrate("employee"),
                action=lambda d, e: log.append(("m", e.from_class)),
            )
        )
        manager.register(
            Trigger(
                "deletions",
                on_delete("person"),
                action=lambda d, e: log.append(("d", e.class_name)),
            )
        )
        oid = db.create_object("employee", {"name": "A", "salary": 1.0})
        db.tick()
        db.migrate(oid, "manager")
        db.tick()
        db.delete_object(oid)
        assert log == [("m", "employee"), ("d", "manager")]


class TestConditions:
    def test_callable_condition(self, hr_db):
        """A temporal condition: fire only when the salary decreased."""
        db = hr_db
        fired = []

        def decreased(database, event):
            return (
                event.old_value is not None
                and event.new_value < event.old_value
            )

        TriggerManager(db).register(
            Trigger(
                "pay-cut",
                on_update("employee", "salary"),
                condition=decreased,
                action=lambda d, e: fired.append(e.new_value),
            )
        )
        oid = db.create_object("employee", {"name": "A", "salary": 5.0})
        db.tick()
        db.update_attribute(oid, "salary", 9.0)
        db.tick()
        db.update_attribute(oid, "salary", 3.0)
        assert fired == [3.0]

    def test_query_predicate_condition(self, hr_db):
        db = hr_db
        fired = []
        TriggerManager(db).register(
            Trigger(
                "big-earner",
                on_update("employee", "salary"),
                predicate=attr("salary") > 100.0,
                action=lambda d, e: fired.append(e.oid),
            )
        )
        oid = db.create_object("employee", {"name": "A", "salary": 5.0})
        db.tick()
        db.update_attribute(oid, "salary", 50.0)
        db.update_attribute(oid, "salary", 500.0)
        assert fired == [oid]


class TestCascades:
    def test_trigger_triggers_trigger(self, hr_db):
        """salary update -> grade bump -> audit log."""
        db = hr_db
        audit = []
        manager = TriggerManager(db)
        manager.register(
            Trigger(
                "bump-grade",
                on_update("employee", "salary"),
                action=lambda d, e: d.update_attribute(e.oid, "grade", 99),
                writes=(WriteSpec(EventKind.UPDATE, "employee", "grade"),),
            )
        )
        manager.register(
            Trigger(
                "audit-grade",
                on_update("employee", "grade"),
                action=lambda d, e: audit.append(e.new_value),
                writes=(),
            )
        )
        oid = db.create_object("employee", {"name": "A", "salary": 1.0})
        db.tick()
        db.update_attribute(oid, "salary", 2.0)
        assert audit == [99]
        names = [name for name, _e in manager.fired_log]
        assert names == ["bump-grade", "audit-grade"]

    def test_runaway_cascade_bounded(self, hr_db):
        db = hr_db
        manager = TriggerManager(db, max_cascade_depth=8)
        manager.register(
            Trigger(
                "loop",
                on_update("employee", "grade"),
                action=lambda d, e: d.update_attribute(
                    e.oid, "grade", (e.new_value or 0) + 1
                ),
                writes=(WriteSpec(EventKind.UPDATE, "employee", "grade"),),
            )
        )
        oid = db.create_object("employee", {"name": "A", "salary": 1.0})
        db.tick()
        with pytest.raises(TriggerError, match="cascade"):
            db.update_attribute(oid, "grade", 0)

    def test_duplicate_name_rejected(self, hr_db):
        manager = TriggerManager(hr_db)
        trigger = Trigger("t", on_create("person"), action=lambda d, e: None)
        manager.register(trigger)
        with pytest.raises(TriggerError):
            manager.register(
                Trigger("t", on_create("person"), action=lambda d, e: None)
            )

    def test_detach(self, hr_db):
        db = hr_db
        fired = []
        manager = TriggerManager(db)
        manager.register(
            Trigger(
                "t", on_create("person"),
                action=lambda d, e: fired.append(1),
            )
        )
        manager.detach()
        db.create_object("person", {"name": "X"})
        assert fired == []


class TestTerminationAnalysis:
    def test_acyclic_set_terminates(self, hr_db):
        manager = TriggerManager(hr_db)
        manager.register(
            Trigger(
                "a",
                on_update("employee", "salary"),
                action=lambda d, e: None,
                writes=(WriteSpec(EventKind.UPDATE, "employee", "grade"),),
            )
        )
        manager.register(
            Trigger(
                "b",
                on_update("employee", "grade"),
                action=lambda d, e: None,
                writes=(),
            )
        )
        report = manager.termination_report()
        assert report["terminates"] and report["cycles"] == []

    def test_cycle_detected(self, hr_db):
        manager = TriggerManager(hr_db)
        manager.register(
            Trigger(
                "a",
                on_update("employee", "salary"),
                action=lambda d, e: None,
                writes=(WriteSpec(EventKind.UPDATE, "employee", "grade"),),
            )
        )
        manager.register(
            Trigger(
                "b",
                on_update("employee", "grade"),
                action=lambda d, e: None,
                writes=(WriteSpec(EventKind.UPDATE, "employee", "salary"),),
            )
        )
        report = manager.termination_report()
        assert not report["terminates"]
        assert sorted(report["cycles"][0]) == ["a", "b"]

    def test_self_loop(self, hr_db):
        manager = TriggerManager(hr_db)
        manager.register(
            Trigger(
                "selfie",
                on_update("employee", "grade"),
                action=lambda d, e: None,
                writes=(WriteSpec(EventKind.UPDATE, "employee", "grade"),),
            )
        )
        assert manager.cycles() == [["selfie"]]

    def test_past_only_refinement(self, hr_db):
        """A condition reading strictly-past history cannot re-enable
        itself within one instant: its self-loop is discounted."""
        manager = TriggerManager(hr_db)
        manager.register(
            Trigger(
                "selfie",
                on_update("employee", "grade"),
                action=lambda d, e: None,
                writes=(WriteSpec(EventKind.UPDATE, "employee", "grade"),),
                past_only=True,
            )
        )
        report = manager.termination_report()
        assert report["terminates"]

    def test_write_spec_attribute_wildcard(self, hr_db):
        manager = TriggerManager(hr_db)
        manager.register(
            Trigger(
                "wild",
                on_update("employee", "salary"),
                action=lambda d, e: None,
                writes=(WriteSpec(EventKind.UPDATE, "employee", None),),
            )
        )
        graph = manager.triggering_graph()
        assert "wild" in graph["wild"]  # may write salary itself


class TestPredicateOnDelete:
    def test_predicate_trigger_never_fires_on_delete(self, hr_db):
        """A query-predicate condition needs a live object to evaluate
        against; DELETE events cannot satisfy it."""
        db = hr_db
        fired = []
        from repro.triggers import on_delete

        TriggerManager(db).register(
            Trigger(
                "ghost",
                on_delete("employee"),
                predicate=attr("salary") > 0.0,
                action=lambda d, e: fired.append(e),
            )
        )
        oid = db.create_object("employee", {"name": "A", "salary": 5.0})
        db.tick()
        db.delete_object(oid)
        assert fired == []
