"""Equivalence and invalidation tests for the hot-path caches (E11).

The caching layer must be *transparent*: every cached read path --
``pi``, ``anchor_extent``, ``snapshot_at``, ``membership_times``,
``TemporalValue.at``, ``is_subtype`` -- must return exactly what a
from-scratch recomputation returns, at every point of an arbitrary
mutate-then-read sequence.  The property tests drive randomized
operation sequences (tick, create, update, retroactive correction,
migration, deletion, schema growth) and compare cached answers against
``perf.disabled()`` recomputation *on the same database*; the
deterministic tests pin the individual invalidation triggers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.database.database import TemporalDatabase
from repro.database.transactions import Transaction
from repro.errors import InvalidInstantError, TChimeraError
from repro.temporal.intervals import Interval
from repro.temporal.temporalvalue import TemporalValue
from repro.types.grammar import INTEGER, ObjectType, SetOf
from repro.types.subtyping import is_subtype, try_lub

from tests.strategies import temporal_values

CLASSES = ("base", "left", "right", "grand")


def _world() -> tuple[TemporalDatabase, list]:
    db = TemporalDatabase()
    db.define_class("base", attributes=[("score", "temporal(integer)")])
    db.define_class("left", parents=["base"])
    db.define_class("right", parents=["base"])
    db.define_class("grand", parents=["left"])
    oids = [
        db.create_object(("base", "left", "right", "grand")[i % 4],
                         {"score": i})
        for i in range(6)
    ]
    return db, oids


def _assert_reads_agree(db: TemporalDatabase, oids: list) -> None:
    """Every cached read equals its from-scratch recomputation."""
    instants = sorted({0, db.now // 2, db.now})
    for name in CLASSES:
        for t in instants:
            cached_pi = db.pi(name, t)
            cached_anchor = db.anchor_extent(name, t)
            with perf.disabled():
                fresh = db.pi(name, t)
            assert cached_pi == fresh, (name, t)
            assert cached_anchor == fresh, (name, t)
    for oid in oids:
        for name in CLASSES:
            cached_m = db.membership_times(name, oid)
            with perf.disabled():
                fresh_m = db.membership_times(name, oid)
            assert cached_m == fresh_m, (name, oid)
        obj = db._objects.get(oid)
        if obj is None or not obj.alive_at(db.now, db.now):
            continue
        cached_snap = db.snapshot_at(oid)
        with perf.disabled():
            fresh_snap = db.snapshot_at(oid)
        assert cached_snap == fresh_snap, oid
    for sub in CLASSES:
        for sup in CLASSES:
            t2, t1 = ObjectType(sub), ObjectType(sup)
            cached_sub = is_subtype(t2, t1, db.isa)
            cached_lub = try_lub([SetOf(t2), SetOf(t1)], db.isa)
            with perf.disabled():
                assert is_subtype(t2, t1, db.isa) == cached_sub
                assert try_lub([SetOf(t2), SetOf(t1)], db.isa) == cached_lub


_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["tick", "create", "update", "correct", "migrate",
             "delete", "subclass"]
        ),
        st.integers(0, 9),
        st.integers(0, 999),
    ),
    min_size=1,
    max_size=14,
)


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_cached_reads_equal_fresh_reads_under_mutation(ops):
    """The core transparency property: cached == uncached at every
    step of a random mutate-then-read sequence."""
    db, oids = _world()
    extra_classes = 0
    for kind, pick, value in ops:
        try:
            if kind == "tick":
                db.tick()
            elif kind == "create":
                oids.append(
                    db.create_object(CLASSES[pick % 4], {"score": value})
                )
            elif kind == "update":
                db.update_attribute(oids[pick % len(oids)], "score", value)
            elif kind == "correct":
                target = oids[pick % len(oids)]
                start = value % (db.now + 1)
                db.correct_attribute(
                    target, "score", start, db.now, value
                )
            elif kind == "migrate":
                db.migrate(oids[pick % len(oids)], CLASSES[value % 4])
            elif kind == "delete":
                db.delete_object(oids[pick % len(oids)], force=True)
            elif kind == "subclass":
                extra_classes += 1
                db.define_class(
                    f"extra{extra_classes}", parents=[CLASSES[pick % 4]]
                )
        except TChimeraError:
            # Illegal op for the current state (dead object, identity
            # migration, correction outside the lifespan, ...): the
            # model rejecting it is fine; the caches must still agree.
            pass
        _assert_reads_agree(db, oids)


@settings(max_examples=60, deadline=None)
@given(value=temporal_values(), t=st.integers(0, 220))
def test_starts_cache_transparent_on_random_histories(value, t):
    """``at``/``get``/``defined_at`` agree with the ablated path, and
    the start-key cache (when warm) mirrors the pair list exactly."""
    cached = (value.at(t) if value.defined_at(t) else None,
              value.get(t, default="missing"))
    with perf.disabled():
        fresh = (value.at(t) if value.defined_at(t) else None,
                 value.get(t, default="missing"))
    assert cached == fresh
    starts = value._starts_cache
    assert starts is None or starts == [p[0] for p in value._pairs]


@settings(max_examples=40, deadline=None)
@given(
    value=temporal_values(),
    edits=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 220), st.integers(0, 99)),
        max_size=6,
    ),
    t=st.integers(0, 220),
)
def test_starts_cache_survives_mutation(value, edits, t):
    value.at(t) if value.defined_at(t) else None  # warm the cache
    for op, instant, payload in edits:
        try:
            if op == 0:
                value.assign(instant, payload)
            elif op == 1:
                value.close(instant)
            else:
                value.put(Interval(instant, instant + 3), payload)
        except TChimeraError:
            pass
        starts = value._starts_cache
        assert starts is None or starts == [p[0] for p in value._pairs]
        cached = value.get(t, default="missing")
        with perf.disabled():
            assert value.get(t, default="missing") == cached


# ---------------------------------------------------------------------------
# Deterministic invalidation triggers, one per cache.
# ---------------------------------------------------------------------------


def test_pi_cache_sees_create_migrate_delete():
    db, oids = _world()
    assert len(db.pi("base", db.now)) == 6  # primes the cache
    new = db.create_object("grand", {"score": 99})
    assert new in db.pi("base", db.now)
    assert new in db.pi("left", db.now)  # superclass bumped too
    db.tick()
    db.migrate(new, "right")
    assert new in db.pi("right", db.now)
    assert new not in db.pi("left", db.now)
    db.delete_object(new, force=True)
    assert new not in db.pi("base", db.now)


def test_snapshot_cache_sees_update_and_correction():
    db, oids = _world()
    db.tick(5)
    db.update_attribute(oids[0], "score", 10)
    assert db.snapshot_at(oids[0])["score"] == 10
    db.update_attribute(oids[0], "score", 20)
    assert db.snapshot_at(oids[0])["score"] == 20
    past = db.now - 2
    assert db.snapshot_at(oids[0], past)["score"] == 0  # primes (oid, past)
    db.correct_attribute(oids[0], "score", 0, past, 77)
    assert db.snapshot_at(oids[0], past)["score"] == 77


def test_membership_cache_sees_tick():
    db, oids = _world()
    before = db.membership_times("base", oids[0])
    db.tick(3)
    after = db.membership_times("base", oids[0])
    assert after != before  # the moving Now end advanced with the clock
    assert after.end() == db.now


def test_subtype_memo_sees_isa_change():
    db = TemporalDatabase()
    db.define_class("a")
    assert not is_subtype(ObjectType("b"), ObjectType("a"), db.isa)
    db.define_class("b", parents=["a"])
    assert is_subtype(ObjectType("b"), ObjectType("a"), db.isa)


def test_rollback_drops_in_transaction_entries():
    db, oids = _world()
    with pytest.raises(RuntimeError):
        with Transaction(db):
            victim = db.create_object("base", {"score": 1})
            assert victim in db.pi("base", db.now)  # cached mid-txn
            raise RuntimeError("abort")
    assert all(
        oid.serial != victim.serial for oid in db.pi("base", db.now)
    )
    with perf.disabled():
        assert db.pi("base", db.now) == db.pi("base", db.now)


def test_rollback_drops_attribute_index_postings():
    """Same staleness discipline for the planner's secondary indexes:
    postings covering in-transaction state die with the rollback."""
    from repro.query import evaluate, select, attr, const

    db, oids = _world()
    query = select("base").where(attr("score") == const(99)).now().build()
    assert evaluate(db, query) == []  # builds the "score" index
    assert "score" in db.caches.attr_indexes.names()
    with pytest.raises(RuntimeError):
        with Transaction(db):
            db.tick()
            db.update_attribute(oids[0], "score", 99)
            assert evaluate(db, query) == [oids[0]]  # indexed mid-txn
            raise RuntimeError("abort")
    assert db.caches.attr_indexes.names() == ()  # dropped wholesale
    assert evaluate(db, query) == []
    with perf.disabled():
        assert evaluate(db, query) == []


def test_ablation_flag_round_trips():
    assert perf.is_enabled
    previous = perf.set_enabled(False)
    assert previous is True
    assert not perf.is_enabled
    perf.set_enabled(True)
    with perf.disabled():
        assert not perf.is_enabled
    assert perf.is_enabled


def test_counters_register_hits():
    perf.reset_stats()
    db, oids = _world()
    for _ in range(3):
        db.pi("base", db.now)
        db.snapshot_at(oids[0])
    stats = perf.stats()
    assert stats["database.pi"]["hits"] >= 2
    assert stats["database.snapshot"]["hits"] >= 2
    assert "database.pi" in perf.format_stats()


def test_membership_cache_registers_hits():
    # membership_times is only reached by quantified-scope reads and
    # constraint checks, never NOW/AT queries -- guard against the
    # cache silently going dark (it once reported 0/0 in the E11
    # artifact because no workload exercised it).
    perf.reset_stats()
    db, oids = _world()
    for _ in range(3):
        for oid in oids:
            db.membership_times("base", oid)
    stats = perf.stats()["database.membership_times"]
    assert stats["misses"] == len(oids)
    assert stats["hits"] == 2 * len(oids)
    assert stats["hit_rate"] > 0.5


# ---------------------------------------------------------------------------
# Satellite behaviours on TemporalValue itself.
# ---------------------------------------------------------------------------


def test_get_validates_instants_like_at():
    value = TemporalValue()
    value.put(Interval(0, 5), "x")
    assert value.get(3) == "x"
    assert value.get(9, default="d") == "d"
    with pytest.raises(InvalidInstantError):
        value.get(-1)
    with pytest.raises(InvalidInstantError):
        value.get("soon")  # type: ignore[arg-type]


def test_is_constant_short_circuits():
    empty = TemporalValue()
    assert empty.is_constant()
    value = TemporalValue()
    value.put(Interval(0, 2), 7)
    value.put(Interval(5, 8), 7)
    assert value.is_constant()
    value.put(Interval(10, 11), 8)
    assert not value.is_constant()
