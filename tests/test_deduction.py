"""The typing rules for values (Definition 3.6) and type inference."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NoLubError, TypeCheckError
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.types.context import DictTypeContext, EMPTY_CONTEXT
from repro.types.deduction import infer_type, is_deducible
from repro.types.grammar import (
    BOOL,
    BOTTOM,
    CHARACTER,
    INTEGER,
    REAL,
    STRING,
    TIME,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
)
from repro.types.subtyping import is_subtype, try_lub
from repro.values.null import NULL
from repro.values.oid import OID
from repro.values.records import RecordValue

from tests.strategies import (
    WORLD_ISA,
    WORLD_OIDS,
    typed_values,
    world_context,
)


class TestNullRule:
    @pytest.mark.parametrize(
        "t", [INTEGER, TIME, SetOf(STRING), TemporalType(BOOL)]
    )
    def test_null_deducible_at_every_type(self, t):
        assert is_deducible(NULL, t)


class TestBasicRules:
    def test_basic_values(self):
        assert is_deducible(5, INTEGER)
        assert is_deducible(1.5, REAL)
        assert is_deducible(True, BOOL)
        assert is_deducible("a", CHARACTER)
        assert is_deducible("abc", STRING)
        assert not is_deducible("abc", INTEGER)

    def test_time_rule(self):
        assert is_deducible(7, TIME)
        assert not is_deducible(-7, TIME)

    def test_char_also_string(self):
        # dom(character) is a subset of dom(string): both rules apply.
        assert is_deducible("a", STRING)
        assert is_deducible("a", CHARACTER)


class TestOidRule:
    """i : c iff i in pi(c, t) for SOME t (the existential premise)."""

    def test_current_member(self):
        ctx = world_context()
        assert is_deducible(OID(2, "person"), ObjectType("employee"), ctx)

    def test_past_member_still_typeable(self):
        oid = OID(9)
        ctx = DictTypeContext(
            {"person": {oid: IntervalSet.span(0, 10)}}, now=100
        )
        # Not a member now, but was at t in [0,10]: deducible.
        assert is_deducible(oid, ObjectType("person"), ctx)

    def test_never_member(self):
        ctx = world_context()
        assert not is_deducible(OID(99), ObjectType("person"), ctx)

    def test_superclass_typing_via_pi(self):
        # pi includes members of subclasses, so subsumption is built in.
        ctx = world_context()
        assert is_deducible(OID(3, "person"), ObjectType("person"), ctx)
        assert is_deducible(OID(3, "person"), ObjectType("employee"), ctx)
        assert is_deducible(OID(3, "person"), ObjectType("manager"), ctx)


class TestStructuredRules:
    def test_homogeneous_set(self):
        assert is_deducible(frozenset({1, 2, 3}), SetOf(INTEGER))

    def test_empty_collections_deducible_at_anything(self):
        assert is_deducible(frozenset(), SetOf(ObjectType("person")))
        assert is_deducible((), ListOf(STRING))

    def test_heterogeneous_set_via_lub(self):
        """{i_employee, i_person} : set-of(person) -- the lub rule."""
        ctx = world_context()
        mixed = frozenset({OID(1, "person"), OID(2, "person")})
        assert is_deducible(mixed, SetOf(ObjectType("person")), ctx)
        assert not is_deducible(mixed, SetOf(ObjectType("employee")), ctx)

    def test_record_rule(self):
        v = RecordValue(a=1, b="x")
        assert is_deducible(v, RecordOf(a=INTEGER, b=STRING))
        assert not is_deducible(v, RecordOf(a=INTEGER))
        assert not is_deducible(v, RecordOf(a=INTEGER, b=BOOL))

    def test_temporal_rule(self):
        tv = TemporalValue.from_items([((5, 10), 12), ((11, 30), 5)])
        assert is_deducible(tv, TemporalType(INTEGER))
        assert not is_deducible(tv, TemporalType(STRING))

    def test_temporal_carrier(self):
        assert not is_deducible(5, TemporalType(INTEGER))

    @given(typed_values(), st.data())
    def test_deduction_lub_formulation_agrees(self, pair, data):
        """The syntax-directed set rule equals the lub formulation:
        checking every element against T agrees with inferring element
        types and comparing their lub (see deduction module docstring).
        """
        _t, value = pair
        ctx = world_context()
        elements = data.draw(
            st.lists(st.sampled_from(sorted(
                [1, 2, "x"] + [o for pool in WORLD_OIDS.values() for o in pool],
                key=repr,
            )), max_size=4)
        )
        collection = frozenset(elements)
        try:
            inferred = [infer_type(e, ctx) for e in collection]
        except (TypeCheckError, NoLubError):
            return
        target = try_lub(inferred, WORLD_ISA) if inferred else BOTTOM
        if target is None:
            return
        assert is_deducible(collection, SetOf(target), ctx)


class TestInference:
    def test_primitives(self):
        assert infer_type(5) == INTEGER
        assert infer_type(1.5) == REAL
        assert infer_type(True) == BOOL
        assert infer_type("a") == CHARACTER
        assert infer_type("ab") == STRING

    def test_null_infers_bottom(self):
        assert infer_type(NULL) == BOTTOM

    def test_oid_most_specific(self):
        ctx = world_context()
        assert infer_type(OID(3, "person"), ctx) == ObjectType("manager")
        assert infer_type(OID(1, "person"), ctx) == ObjectType("person")

    def test_unknown_oid_rejected(self):
        with pytest.raises(TypeCheckError):
            infer_type(OID(77), world_context())

    def test_set_lub(self):
        ctx = world_context()
        mixed = frozenset({OID(2, "person"), OID(3, "person")})
        assert infer_type(mixed, ctx) == SetOf(ObjectType("employee"))

    def test_empty_set(self):
        assert infer_type(frozenset()) == SetOf(BOTTOM)
        assert infer_type([]) == ListOf(BOTTOM)

    def test_heterogeneous_without_lub_rejected(self):
        with pytest.raises(NoLubError):
            infer_type(frozenset({1, "xy"}))

    def test_record(self):
        assert infer_type(RecordValue(a=1, b="xy")) == RecordOf(
            a=INTEGER, b=STRING
        )

    def test_temporal(self):
        tv = TemporalValue.from_items([((0, 5), 12)])
        assert infer_type(tv) == TemporalType(INTEGER)

    def test_non_value_rejected(self):
        with pytest.raises(TypeCheckError):
            infer_type({"a": 1})  # dicts are not T_Chimera values
        with pytest.raises(TypeCheckError):
            infer_type(object())

    @given(typed_values())
    def test_inference_is_deducible_and_subtype(self, pair):
        """infer_type returns a deducible type below any generated
        target type (principality, restricted to the generated pairs)."""
        t, value = pair
        ctx = world_context()
        try:
            inferred = infer_type(value, ctx)
        except (NoLubError, TypeCheckError):
            return  # inference is partial; checking is the total one
        assert is_deducible(value, inferred, ctx) or inferred == BOTTOM
