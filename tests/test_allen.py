"""Allen's interval relations on the discrete time domain."""

import pytest
from hypothesis import given

from repro.errors import InvalidIntervalError
from repro.temporal.algebra import AllenRelation, allen_relation
from repro.temporal.intervals import Interval, NULL_INTERVAL

from tests.strategies import intervals


CASES = [
    (Interval(1, 2), Interval(5, 9), AllenRelation.BEFORE),
    (Interval(1, 4), Interval(5, 9), AllenRelation.MEETS),
    (Interval(1, 6), Interval(5, 9), AllenRelation.OVERLAPS),
    (Interval(5, 7), Interval(5, 9), AllenRelation.STARTS),
    (Interval(6, 8), Interval(5, 9), AllenRelation.DURING),
    (Interval(7, 9), Interval(5, 9), AllenRelation.FINISHES),
    (Interval(5, 9), Interval(5, 9), AllenRelation.EQUAL),
    (Interval(5, 9), Interval(7, 9), AllenRelation.FINISHED_BY),
    (Interval(5, 9), Interval(6, 8), AllenRelation.CONTAINS),
    (Interval(5, 9), Interval(5, 7), AllenRelation.STARTED_BY),
    (Interval(5, 9), Interval(1, 6), AllenRelation.OVERLAPPED_BY),
    (Interval(5, 9), Interval(1, 4), AllenRelation.MET_BY),
    (Interval(5, 9), Interval(1, 2), AllenRelation.AFTER),
]


class TestClassification:
    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_each_relation(self, a, b, expected):
        assert allen_relation(a, b) is expected

    def test_null_interval_rejected(self):
        with pytest.raises(InvalidIntervalError):
            allen_relation(NULL_INTERVAL, Interval(1, 2))
        with pytest.raises(InvalidIntervalError):
            allen_relation(Interval(1, 2), NULL_INTERVAL)

    def test_moving_intervals_resolved(self):
        a = Interval.from_now(5)
        assert allen_relation(a, Interval(5, 9), now=9) is AllenRelation.EQUAL

    def test_meets_is_discrete_abutment(self):
        # [1,4] meets [5,9]: no gap, no shared instant (discrete time).
        assert allen_relation(Interval(1, 4), Interval(5, 9)) is (
            AllenRelation.MEETS
        )
        assert allen_relation(Interval(1, 5), Interval(5, 9)) is (
            AllenRelation.OVERLAPS
        )


class TestAlgebraicProperties:
    @given(intervals(), intervals())
    def test_exactly_one_relation(self, a, b):
        # Totality: every pair classifies (no exception, one verdict).
        assert allen_relation(a, b) in AllenRelation

    @given(intervals(), intervals())
    def test_converse(self, a, b):
        assert allen_relation(b, a) is allen_relation(a, b).inverse()

    @given(intervals())
    def test_reflexive_is_equal(self, a):
        assert allen_relation(a, a) is AllenRelation.EQUAL

    def test_inverse_is_involution(self):
        for relation in AllenRelation:
            assert relation.inverse().inverse() is relation

    def test_equal_is_self_inverse(self):
        assert AllenRelation.EQUAL.inverse() is AllenRelation.EQUAL

    @given(intervals(), intervals())
    def test_overlap_relations_match_interval_overlap(self, a, b):
        relation = allen_relation(a, b)
        disjoint = relation in (
            AllenRelation.BEFORE,
            AllenRelation.AFTER,
            AllenRelation.MEETS,
            AllenRelation.MET_BY,
        )
        assert a.overlaps(b) == (not disjoint)

    @given(intervals(), intervals())
    def test_containment_relations_match_issubset(self, a, b):
        relation = allen_relation(a, b)
        inside = relation in (
            AllenRelation.STARTS,
            AllenRelation.DURING,
            AllenRelation.FINISHES,
            AllenRelation.EQUAL,
        )
        assert a.issubset(b) == inside
