"""The ref function and referential integrity (Definition 5.6)."""

from repro.objects.references import (
    all_referenced_oids,
    oids_in_value,
    referenced_oids,
)
from repro.objects.object import TemporalObject
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID
from repro.values.records import RecordValue


class TestOidsInValue:
    def test_flat(self):
        assert set(oids_in_value(OID(1))) == {OID(1)}
        assert set(oids_in_value(42)) == set()

    def test_nested_collections(self):
        value = [frozenset({OID(1)}), (OID(2), [OID(3)])]
        assert set(oids_in_value(value)) == {OID(1), OID(2), OID(3)}

    def test_records(self):
        value = RecordValue(a=OID(1), b=[OID(2)])
        assert set(oids_in_value(value)) == {OID(1), OID(2)}

    def test_temporal_values(self):
        tv = TemporalValue.from_items([((0, 5), OID(1)), ((6, 9), OID(2))])
        assert set(oids_in_value(tv)) == {OID(1), OID(2)}


class TestRef:
    def test_paper_example(self, project_db):
        """ref(i1, 50): subproject i9 + participants {i2, i3}; the
        static workplan contributes only at the current time."""
        db, names = project_db
        obj = db.get_object(names["i1"])
        at_50 = referenced_oids(obj, 50, db.now)
        assert at_50 == frozenset(
            {names["i9"], names["i2"], names["i3"]}
        )

    def test_static_attributes_contribute_at_now(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        at_now = referenced_oids(obj, db.now, db.now)
        assert names["i7"] in at_now  # workplan (static) visible at now
        assert names["i8"] in at_now  # participants at 90

    def test_not_meaningful_not_referenced(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        # Before creation: nothing.
        assert referenced_oids(obj, 10, db.now) == frozenset()

    def test_retained_histories_counted(self, staff_db):
        db, names = staff_db
        dan = db.get_object(names["dan"])
        # dependents (retained after demotion) referenced pat at 45.
        assert names["pat"] in referenced_oids(dan, 45, db.now)
        assert names["pat"] not in referenced_oids(dan, db.now, db.now)

    def test_all_referenced(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        everything = all_referenced_oids(obj)
        for key in ("i2", "i3", "i4", "i7", "i8", "i9"):
            assert names[key] in everything
