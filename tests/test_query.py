"""The temporal query language: parser, typing, evaluation."""

import pytest

from repro.errors import QuerySyntaxError, QueryTypeError
from repro.query import (
    attr,
    const,
    evaluate,
    parse_query,
    select,
    when,
)
from repro.query.ast import (
    And,
    Attr,
    Compare,
    CompareOp,
    Const,
    Contains,
    HistoryOf,
    In,
    Not,
    Or,
    Query,
    SizeOf,
    TemporalScope,
)
from repro.temporal.intervalsets import IntervalSet
from repro.values.null import NULL
from repro.values.oid import OID


@pytest.fixture
def payroll_db(empty_db):
    db = empty_db
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[
            ("salary", "temporal(real)"),
            ("dept", "string"),
            ("skills", "temporal(set-of(person))"),
        ],
    )
    db.tick(10)
    ann = db.create_object(
        "employee", {"name": "Ann", "salary": 1000.0, "dept": "R"}
    )
    bob = db.create_object(
        "employee", {"name": "Bob", "salary": 3000.0, "dept": "S"}
    )
    db.tick(10)  # 20
    db.update_attribute(ann, "salary", 2500.0)
    db.tick(10)  # 30
    return db, {"ann": ann, "bob": bob}


class TestParser:
    def test_minimal(self):
        q = parse_query("select employee")
        assert q == Query("employee")
        assert q.scope is TemporalScope.NOW

    def test_where_comparison(self):
        q = parse_query("select employee where salary > 1000.0")
        assert isinstance(q.predicate, Compare)
        assert q.predicate.op is CompareOp.GT

    def test_scopes(self):
        assert parse_query("select e at 5").scope is TemporalScope.AT
        assert parse_query("select e at 5").at == 5
        assert parse_query("select e sometime").scope is (
            TemporalScope.SOMETIME
        )
        assert parse_query("select e always").scope is TemporalScope.ALWAYS
        q = parse_query("select e sometime in [3, 9]")
        assert q.scope is TemporalScope.SOMETIME_IN
        assert q.interval == (3, 9)
        q = parse_query("select e always in [3, 9]")
        assert q.scope is TemporalScope.ALWAYS_IN

    def test_connectives_and_precedence(self):
        q = parse_query(
            "select e where a = 1 and b = 2 or not c = 3"
        )
        assert isinstance(q.predicate, Or)
        assert isinstance(q.predicate.left, And)
        assert isinstance(q.predicate.right, Not)

    def test_parentheses(self):
        q = parse_query("select e where a = 1 and (b = 2 or c = 3)")
        assert isinstance(q.predicate, And)
        assert isinstance(q.predicate.right, Or)

    def test_membership(self):
        q = parse_query("select e where oid(3, person) in skills")
        assert isinstance(q.predicate, In)
        assert q.predicate.item == Const(OID(3, "person"))
        q = parse_query("select e where skills contains oid(3)")
        assert isinstance(q.predicate, Contains)

    def test_size_history(self):
        q = parse_query("select e where size(skills) >= 2")
        assert isinstance(q.predicate.left, SizeOf)
        q2 = parse_query("select e where history(salary) = null")
        assert isinstance(q2.predicate.left, HistoryOf)

    def test_literals(self):
        q = parse_query(
            "select e where a = 'text' or b = true or c = null"
        )
        assert q is not None
        assert parse_query("select e where a = 1.25").predicate.right == (
            Const(1.25)
        )

    def test_escaped_string(self):
        q = parse_query(r"select e where name = 'O\'Brien'")
        assert q.predicate.right == Const("O'Brien")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "select",
            "select e where",
            "select e where a",
            "select e where a = ",
            "select e at x",
            "select e sometime in [1 2]",
            "select e where (a = 1",
            "select e trailing",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


class TestTyping:
    def test_attribute_vs_literal(self, payroll_db):
        db, _ = payroll_db
        with pytest.raises(QueryTypeError):
            evaluate(db, parse_query("select employee where salary = 'x'"))

    def test_unknown_attribute(self, payroll_db):
        db, _ = payroll_db
        with pytest.raises(QueryTypeError):
            evaluate(db, parse_query("select employee where ghost = 1"))

    def test_order_comparison_needs_ordered_type(self, payroll_db):
        db, _ = payroll_db
        with pytest.raises(QueryTypeError):
            evaluate(db, parse_query("select employee where skills > 1"))

    def test_membership_needs_collection(self, payroll_db):
        db, _ = payroll_db
        with pytest.raises(QueryTypeError):
            evaluate(db, parse_query("select employee where 1 in salary"))

    def test_size_needs_collection(self, payroll_db):
        db, _ = payroll_db
        with pytest.raises(QueryTypeError):
            evaluate(db, parse_query("select employee where size(dept) = 1"))

    def test_history_needs_temporal_attribute(self, payroll_db):
        db, _ = payroll_db
        with pytest.raises(QueryTypeError):
            evaluate(
                db, parse_query("select employee where history(dept) = null")
            )

    def test_numeric_cross_comparison_allowed(self, payroll_db):
        db, _ = payroll_db
        evaluate(db, parse_query("select employee where salary > 1000"))

    def test_null_comparable_with_anything(self, payroll_db):
        db, _ = payroll_db
        evaluate(db, parse_query("select employee where dept = null"))


class TestEvaluation:
    def test_now_scope(self, payroll_db):
        db, names = payroll_db
        assert evaluate(
            db, parse_query("select employee where salary > 2000.0")
        ) == sorted([names["ann"], names["bob"]])

    def test_at_scope(self, payroll_db):
        db, names = payroll_db
        hits = evaluate(
            db, parse_query("select employee where salary > 2000.0 at 15")
        )
        assert hits == [names["bob"]]

    def test_at_uses_extent_at_that_instant(self, payroll_db):
        db, names = payroll_db
        assert evaluate(db, parse_query("select employee at 5")) == []

    def test_sometime_always(self, payroll_db):
        db, names = payroll_db
        assert evaluate(
            db, parse_query("select employee where salary >= 2500.0 sometime")
        ) == sorted([names["ann"], names["bob"]])
        assert evaluate(
            db, parse_query("select employee where salary >= 2500.0 always")
        ) == [names["bob"]]

    def test_scoped_intervals(self, payroll_db):
        db, names = payroll_db
        assert evaluate(
            db,
            parse_query(
                "select employee where salary >= 2500.0 sometime in [10, 19]"
            ),
        ) == [names["bob"]]
        assert evaluate(
            db,
            parse_query(
                "select employee where salary >= 2500.0 always in [20, 30]"
            ),
        ) == sorted([names["ann"], names["bob"]])

    def test_static_attribute_only_at_now(self, payroll_db):
        """At past instants a static attribute is unknown: atoms over
        it are false (the Definition 5.5 information asymmetry)."""
        db, names = payroll_db
        assert evaluate(
            db, parse_query("select employee where dept = 'R'")
        ) == [names["ann"]]
        assert evaluate(
            db, parse_query("select employee where dept = 'R' at 15")
        ) == []
        # But a negated atom over it is true there (not-true semantics).
        assert evaluate(
            db, parse_query("select employee where not dept = 'R' at 15")
        ) == sorted(names.values())

    def test_superclass_query_sees_members(self, payroll_db):
        db, names = payroll_db
        assert evaluate(db, parse_query("select person")) == sorted(
            names.values()
        )

    def test_null_rejecting_atoms(self, payroll_db):
        db, names = payroll_db
        carl = db.create_object("employee", {"name": "Carl"})
        hits = evaluate(
            db, parse_query("select employee where salary > 0.0")
        )
        assert carl not in hits

    def test_when_operator(self, payroll_db):
        db, names = payroll_db
        holds = when(db, names["ann"], attr("salary") < 2000.0)
        assert holds == IntervalSet.span(10, 19)

    def test_builder_equivalence(self, payroll_db):
        db, names = payroll_db
        via_text = evaluate(
            db,
            parse_query("select employee where salary > 2000.0 at 15"),
        )
        via_builder = (
            select("employee").where(attr("salary") > 2000.0).at(15).run(db)
        )
        assert via_text == via_builder

    def test_builder_conjoins_where_calls(self, payroll_db):
        db, names = payroll_db
        hits = (
            select("employee")
            .where(attr("salary") > 0.0)
            .where(attr("dept") == "R")
            .run(db)
        )
        assert hits == [names["ann"]]

    def test_membership_evaluation(self, payroll_db):
        db, names = payroll_db
        db.update_attribute(
            names["ann"], "skills", frozenset({names["bob"]})
        )
        hits = select("employee").where(
            attr("skills").contains(const(names["bob"]))
        ).run(db)
        assert hits == [names["ann"]]

    def test_size_evaluation(self, payroll_db):
        db, names = payroll_db
        db.update_attribute(
            names["ann"], "skills", frozenset({names["bob"], names["ann"]})
        )
        hits = select("employee").where(
            attr("skills").size() >= const(2)
        ).run(db)
        assert hits == [names["ann"]]

    def test_no_predicate_returns_extent(self, payroll_db):
        db, names = payroll_db
        assert evaluate(db, parse_query("select employee")) == sorted(
            names.values()
        )


class TestRunRecords:
    def test_snapshots_at_now(self, payroll_db):
        db, names = payroll_db
        rows = (
            select("employee").where(attr("salary") > 2000.0).run_records(db)
        )
        assert [oid for oid, _r in rows] == sorted(names.values())
        by_oid = dict(rows)
        assert by_oid[names["ann"]]["salary"] == 2500.0
        assert by_oid[names["ann"]]["name"] == "Ann"

    def test_snapshots_at_past_instant_with_static_attrs(self, payroll_db):
        """Objects with static attributes have undefined past
        snapshots: paired with None."""
        db, names = payroll_db
        rows = (
            select("employee")
            .where(attr("salary") > 2000.0)
            .at(15)
            .run_records(db)
        )
        assert rows == [(names["bob"], None)]

    def test_all_temporal_objects_materialize_in_the_past(self, empty_db):
        db = empty_db
        db.define_class("m", attributes=[("v", "temporal(integer)")])
        oid = db.create_object("m", {"v": 1})
        db.tick(10)
        db.update_attribute(oid, "v", 2)
        db.tick(5)
        rows = select("m").where(attr("v") == 1).at(5).run_records(db)
        assert rows[0][0] == oid
        assert rows[0][1]["v"] == 1
