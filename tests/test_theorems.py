"""Executable metatheory: Theorems 3.1, 3.2 and 6.1.

The paper proves these by induction (proofs in the companion technical
report); here hypothesis quantifies them over randomly generated
types, values and instants of the fixed class world.
"""

from hypothesis import given, settings, strategies as st

from repro.types.deduction import infer_type, is_deducible
from repro.types.extension import in_extension
from repro.types.grammar import (
    INTEGER,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
)
from repro.types.subtyping import is_subtype
from repro.types.theorems import (
    completeness_holds,
    extension_inclusion_holds,
    soundness_holds,
)
from repro.values.null import NULL
from repro.values.oid import OID

from tests.strategies import (
    MAX_INSTANT,
    WORLD_ISA,
    t_chimera_types,
    typed_values,
    values_of_type,
    world_context,
)


class TestTheorem31Soundness:
    """Deduced types are inhabited: v : T implies exists t, v in [[T]]_t."""

    @given(typed_values())
    @settings(max_examples=150)
    def test_soundness_on_generated_pairs(self, pair):
        t, value = pair
        ctx = world_context()
        if is_deducible(value, t, ctx):
            assert soundness_holds(value, t, ctx, now=150)

    @given(typed_values())
    @settings(max_examples=100)
    def test_soundness_of_inferred_type(self, pair):
        _t, value = pair
        ctx = world_context()
        try:
            inferred = infer_type(value, ctx)
        except Exception:
            return
        if is_deducible(value, inferred, ctx):
            assert soundness_holds(value, inferred, ctx, now=150)

    def test_precondition_enforced(self):
        import pytest

        with pytest.raises(AssertionError):
            soundness_holds("not an int", INTEGER)


class TestTheorem32Completeness:
    """v in [[T]]_t implies v : T is deducible."""

    @given(typed_values(), st.integers(0, MAX_INSTANT))
    @settings(max_examples=150)
    def test_completeness_on_generated_pairs(self, pair, at):
        t, value = pair
        assert completeness_holds(value, t, at, world_context(), now=150)

    @given(t_chimera_types(), st.data(), st.integers(0, MAX_INSTANT))
    @settings(max_examples=100)
    def test_completeness_on_cross_typed_values(self, t, data, at):
        """Draw the value from a DIFFERENT random type; whenever it
        happens to lie in [[t]]_at, deduction must find t."""
        other = data.draw(t_chimera_types())
        value = data.draw(values_of_type(other))
        assert completeness_holds(value, t, at, world_context(), now=150)

    def test_vacuous_when_not_member(self):
        assert completeness_holds("x", INTEGER, 0)


class TestTheorem61ExtensionInclusion:
    """T1 <=_T T2 implies [[T1]]_t included in [[T2]]_t, for all t."""

    @given(typed_values(), st.integers(0, MAX_INSTANT))
    @settings(max_examples=120)
    def test_value_of_subtype_in_supertype_extension(self, pair, at):
        t, value = pair
        ctx = world_context()
        for super_type in _supertypes_of(t):
            assert is_subtype(t, super_type, WORLD_ISA)
            if in_extension(value, t, at, ctx):
                assert in_extension(value, super_type, at, ctx)

    @given(st.integers(0, MAX_INSTANT))
    def test_class_chain(self, at):
        ctx = world_context()
        samples = [OID(1, "person"), OID(2, "person"), OID(3, "person"),
                   OID(99), NULL]
        assert extension_inclusion_holds(
            ObjectType("manager"), ObjectType("employee"), samples, at, ctx
        )
        assert extension_inclusion_holds(
            ObjectType("employee"), ObjectType("person"), samples, at, ctx
        )

    @given(st.data(), st.integers(0, MAX_INSTANT))
    @settings(max_examples=100)
    def test_structural_lifting(self, data, at):
        """The inclusion lifts through set-of/list-of/record/temporal."""
        ctx = world_context()
        sub, sup = SetOf(ObjectType("manager")), SetOf(ObjectType("person"))
        value = data.draw(values_of_type(sub))
        assert extension_inclusion_holds(sub, sup, [value], at, ctx)
        sub_t = TemporalType(ObjectType("employee"))
        sup_t = TemporalType(ObjectType("person"))
        tv = data.draw(values_of_type(sub_t))
        assert extension_inclusion_holds(sub_t, sup_t, [tv], at, ctx)

    def test_precondition_enforced(self):
        import pytest

        with pytest.raises(AssertionError):
            extension_inclusion_holds(
                ObjectType("person"),
                ObjectType("manager"),
                [],
                0,
                world_context(),
            )


def _supertypes_of(t):
    """A few syntactic supertypes of t in the fixed world."""
    results = [t]
    if isinstance(t, ObjectType):
        ladder = {
            "manager": ["employee", "person"],
            "employee": ["person"],
        }
        results.extend(
            ObjectType(name) for name in ladder.get(t.class_name, [])
        )
    if isinstance(t, (SetOf, ListOf)):
        wrap = type(t)
        results.extend(wrap(inner) for inner in _supertypes_of(t.element))
    if isinstance(t, TemporalType):
        results.extend(
            TemporalType(inner)
            for inner in _supertypes_of(t.argument)
            if inner.is_chimera()
        )
    if isinstance(t, RecordOf) and t.names:
        first = t.names[0]
        for sup_field in _supertypes_of(t.field_type(first)):
            fields = dict(t.fields)
            fields[first] = sup_field
            results.append(RecordOf(fields))
    return results
