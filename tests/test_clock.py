"""The database clock."""

import pytest

from repro.errors import ClockError, InvalidInstantError
from repro.temporal.clock import Clock


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_custom_start(self):
        assert Clock(10).now == 10

    def test_invalid_start(self):
        with pytest.raises(InvalidInstantError):
            Clock(-1)

    def test_tick(self):
        clock = Clock()
        assert clock.tick() == 1
        assert clock.tick(5) == 6
        assert clock.now == 6

    def test_tick_backwards_rejected(self):
        with pytest.raises(ClockError):
            Clock().tick(-1)

    def test_advance_to(self):
        clock = Clock(3)
        assert clock.advance_to(9) == 9

    def test_advance_to_is_idempotent_at_now(self):
        clock = Clock(3)
        assert clock.advance_to(3) == 3

    def test_advance_backwards_rejected(self):
        clock = Clock(9)
        with pytest.raises(ClockError):
            clock.advance_to(3)

    def test_reading_has_no_side_effects(self):
        clock = Clock(4)
        for _ in range(3):
            assert clock.now == 4

    def test_repr(self):
        assert repr(Clock(7)) == "Clock(now=7)"
