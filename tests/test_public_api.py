"""The public API surface and the error hierarchy."""

import inspect

import pytest

import repro
from repro import errors


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_entry_points(self):
        assert callable(repro.TemporalDatabase)
        assert callable(repro.BitemporalDatabase)
        assert callable(repro.parse_type)
        assert callable(repro.check_database)

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_callables_have_docstrings(self):
        """Every public item of the façade is documented."""
        for name in repro.__all__:
            item = getattr(repro, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                assert item.__doc__, f"{name} lacks a docstring"

    def test_subpackage_facades(self):
        import repro.query
        import repro.constraints
        import repro.triggers
        import repro.baselines
        import repro.survey
        import repro.workloads
        import repro.views
        import repro.bitemporal
        import repro.tools

        for module in (
            repro.query, repro.constraints, repro.triggers,
            repro.baselines, repro.survey, repro.workloads,
            repro.views, repro.bitemporal, repro.tools,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestErrorHierarchy:
    def test_every_error_derives_from_the_root(self):
        for name in dir(errors):
            item = getattr(errors, name)
            if (
                inspect.isclass(item)
                and issubclass(item, Exception)
                and item.__module__ == "repro.errors"
            ):
                assert issubclass(item, errors.TChimeraError), name

    def test_family_relationships(self):
        assert issubclass(errors.InvalidIntervalError, errors.TimeError)
        assert issubclass(errors.UndefinedAtError, errors.TimeError)
        assert issubclass(
            errors.NotAChimeraTypeError, errors.TypeSystemError
        )
        assert issubclass(errors.RefinementError, errors.SchemaError)
        assert issubclass(
            errors.ReferentialIntegrityError, errors.IntegrityError
        )
        assert issubclass(errors.IntegrityError, errors.DatabaseError)

    def test_single_catch_all(self):
        """One except clause catches the whole library."""
        from repro import TemporalDatabase

        db = TemporalDatabase()
        try:
            db.get_class("ghost")
        except errors.TChimeraError:
            pass
        else:
            pytest.fail("expected a TChimeraError")

    def test_errors_are_documented(self):
        for name in dir(errors):
            item = getattr(errors, name)
            if (
                inspect.isclass(item)
                and issubclass(item, Exception)
                and item.__module__ == "repro.errors"
            ):
                assert item.__doc__, name
