"""Object migration (Section 5.2): the manager/employee story."""

import pytest

from repro.errors import LifespanError, MigrationError, SchemaError, TypeCheckError
from repro.objects.consistency import is_consistent
from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import NULL


class TestPromotionDemotion:
    def test_promotion_adds_attributes(self, staff_db):
        db, names = staff_db
        dan = db.get_object(names["dan"])
        # At 45 Dan is a manager with dependents and officialcar.
        assert dan.most_specific_class(45) == "manager"

    def test_demotion_drops_static_without_trace(self, staff_db):
        """'If the attributes ... are static, they are simply deleted
        from the object and no track of their existence is recorded'."""
        db, names = staff_db
        dan = db.get_object(names["dan"])
        assert "officialcar" not in dan.value
        assert "officialcar" not in dan.retained

    def test_demotion_retains_temporal_history(self, staff_db):
        """'If they are temporal, the values they have assumed ... are
        maintained in the object, even if they are not part of the
        object anymore'."""
        db, names = staff_db
        dan = db.get_object(names["dan"])
        assert "dependents" not in dan.value
        dependents = dan.retained["dependents"]
        assert dependents.defined_at(45)
        assert names["pat"] in dependents.at(45)
        assert not dependents.defined_at(60)  # closed at demotion

    def test_class_history_records_migrations(self, staff_db):
        db, names = staff_db
        dan = db.get_object(names["dan"])
        classes = [c for _i, c in dan.class_history.pairs()]
        assert classes == ["employee", "manager", "employee"]

    def test_extents_follow(self, staff_db):
        db, names = staff_db
        dan = names["dan"]
        assert dan in db.pi("manager", 45)
        assert dan not in db.pi("manager", 65)
        assert dan in db.pi("employee", 45)  # member via subclass
        assert dan in db.pi("person", 65)

    def test_proper_ext_vs_ext(self, staff_db):
        db, names = staff_db
        dan = names["dan"]
        employee = db.get_class("employee")
        # While a manager, Dan is a member but not an instance of
        # employee.
        assert dan in employee.history.members_at(45)
        assert dan not in employee.history.instances_at(45)
        assert dan in employee.history.instances_at(65)

    def test_repromotion_resumes_history(self, staff_db):
        """An employee re-promoted to manager continues the dependents
        history across the gap."""
        db, names = staff_db
        db.tick(10)  # 80
        db.migrate(names["dan"], "manager", {"officialcar": "M-2"})
        dan = db.get_object(names["dan"])
        dependents = dan.value["dependents"]
        assert dependents.defined_at(45)        # old manager period
        assert not dependents.defined_at(70)    # the employee gap
        assert dependents.defined_at(80)        # resumed
        assert "dependents" not in dan.retained
        assert is_consistent(dan, db, db, db.now)

    def test_consistency_throughout(self, staff_db):
        db, names = staff_db
        assert is_consistent(db.get_object(names["dan"]), db, db, db.now)


class TestMigrationRules:
    def test_same_class_rejected(self, staff_db):
        db, names = staff_db
        with pytest.raises(MigrationError):
            db.migrate(names["dan"], "employee")

    def test_cross_hierarchy_rejected(self, project_db):
        db, names = project_db
        with pytest.raises(MigrationError):
            db.migrate(names["i2"], "project")

    def test_unknown_attribute_rejected(self, staff_db):
        db, names = staff_db
        db.tick()
        with pytest.raises(SchemaError):
            db.migrate(names["dan"], "manager", {"ghost": 1})

    def test_values_type_checked_before_mutation(self, staff_db):
        db, names = staff_db
        db.tick()
        with pytest.raises(TypeCheckError):
            db.migrate(names["dan"], "manager", {"officialcar": 42})
        # Nothing was applied.
        dan = db.get_object(names["dan"])
        assert dan.current_class(db.now) == "employee"

    def test_migrate_dead_object(self, staff_db):
        db, names = staff_db
        db.tick()
        db.delete_object(names["pat"])
        with pytest.raises(LifespanError):
            db.migrate(names["pat"], "employee")

    def test_new_temporal_attribute_defaults_to_null(self, staff_db):
        db, names = staff_db
        db.tick()
        db.migrate(names["dan"], "manager", {"officialcar": "M-9"})
        dan = db.get_object(names["dan"])
        assert dan.value["dependents"].at(db.now) is NULL
        assert is_consistent(dan, db, db, db.now)


class TestKindChangingMigration:
    """Attributes whose temporal/static kind differs between source and
    target class (static <-> temporal refinement, Rule 6.1)."""

    def make_db(self, empty_db):
        db = empty_db
        db.define_class("account", attributes=[("balance", "real")])
        db.define_class(
            "audited",
            parents=["account"],
            attributes=[("balance", "temporal(real)")],
        )
        return db

    def test_static_to_temporal_starts_recording(self, empty_db):
        db = self.make_db(empty_db)
        oid = db.create_object("account", {"balance": 10.0})
        db.tick(5)
        db.migrate(oid, "audited")
        obj = db.get_object(oid)
        history = obj.value["balance"]
        assert isinstance(history, TemporalValue)
        # Recording starts at migration from the current static value.
        assert history.at(db.now) == 10.0
        assert not history.defined_at(db.now - 1)
        assert is_consistent(obj, db, db, db.now)

    def test_temporal_to_static_coerces_and_retains(self, empty_db):
        db = self.make_db(empty_db)
        oid = db.create_object("audited", {"balance": 10.0})
        db.tick(5)
        db.update_attribute(oid, "balance", 20.0)
        db.tick(5)
        db.migrate(oid, "account")
        obj = db.get_object(oid)
        # The static slot holds the coerced current value...
        assert obj.value["balance"] == 20.0
        # ...and the history survives, closed at the migration.
        retained = obj.retained["balance"]
        assert retained.at(0) == 10.0
        assert retained.at(db.now - 1) == 20.0
        assert not retained.defined_at(db.now)
        assert is_consistent(obj, db, db, db.now)

    def test_roundtrip_resumes_history(self, empty_db):
        db = self.make_db(empty_db)
        oid = db.create_object("audited", {"balance": 10.0})
        db.tick(5)
        db.migrate(oid, "account")
        db.tick(5)
        db.update_attribute(oid, "balance", 99.0)
        db.tick(5)
        db.migrate(oid, "audited")
        obj = db.get_object(oid)
        history = obj.value["balance"]
        assert history.at(0) == 10.0        # original recording
        assert not history.defined_at(7)    # static gap not recorded
        assert history.at(db.now) == 99.0   # resumed from static value
        assert is_consistent(obj, db, db, db.now)
