"""The query evaluator against a brute-force per-instant oracle.

The evaluator is segment-wise (it never loops over instants); the
oracle here *does* loop over every instant, re-deriving each atom from
first principles.  Hypothesis drives both over randomized databases
and predicates; they must always agree -- for every temporal scope.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.database import TemporalDatabase
from repro.query.ast import (
    And,
    Attr,
    Compare,
    CompareOp,
    Const,
    Not,
    Or,
    Query,
    TemporalScope,
)
from repro.query.evaluator import evaluate
from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import is_null


def build_db(seed: int) -> TemporalDatabase:
    rng = random.Random(seed)
    db = TemporalDatabase()
    db.define_class(
        "item",
        attributes=[
            ("hot", "temporal(integer)"),
            ("cold", "integer"),
        ],
    )
    for _ in range(4):
        db.create_object(
            "item",
            {"hot": rng.randrange(4), "cold": rng.randrange(4)},
        )
    for _ in range(12):
        db.tick(rng.randint(1, 3))
        for obj in list(db.live_objects()):
            if rng.random() < 0.5:
                db.update_attribute(
                    obj.oid, "hot", rng.randrange(4)
                )
            if rng.random() < 0.2:
                db.update_attribute(
                    obj.oid, "cold", rng.randrange(4)
                )
        if rng.random() < 0.15:
            db.create_object("item", {"hot": rng.randrange(4),
                                      "cold": rng.randrange(4)})
        if rng.random() < 0.1:
            candidates = list(db.live_objects())
            if len(candidates) > 2:
                victim = rng.choice(candidates)
                if victim.lifespan.start < db.now:
                    db.delete_object(victim.oid)
    db.tick()
    return db


ATOMS = st.sampled_from(["hot", "cold"])
OPS = st.sampled_from(list(CompareOp))


@st.composite
def predicates(draw, depth: int = 0):
    kind = draw(st.integers(0, 5 if depth < 2 else 2))
    if kind <= 2:
        return Compare(
            draw(OPS), Attr(draw(ATOMS)), Const(draw(st.integers(0, 4)))
        )
    if kind == 3:
        return Not(draw(predicates(depth=depth + 1)))
    if kind == 4:
        return And(
            draw(predicates(depth=depth + 1)),
            draw(predicates(depth=depth + 1)),
        )
    return Or(
        draw(predicates(depth=depth + 1)),
        draw(predicates(depth=depth + 1)),
    )


def oracle_eval_at(db, obj, predicate, t: int) -> bool:
    """Definition-style evaluation of one atom at one instant."""
    if isinstance(predicate, Compare):
        value = obj.value.get(predicate.left.name)
        if isinstance(value, TemporalValue):
            operand = value.get(t, None) if value.defined_at(t) else None
        else:
            operand = value if t == db.now else None
        literal = predicate.right.value
        if operand is None or is_null(operand):
            return False
        table = {
            CompareOp.EQ: operand == literal,
            CompareOp.NE: operand != literal,
            CompareOp.LT: operand < literal,
            CompareOp.LE: operand <= literal,
            CompareOp.GT: operand > literal,
            CompareOp.GE: operand >= literal,
        }
        return table[predicate.op]
    if isinstance(predicate, Not):
        return not oracle_eval_at(db, obj, predicate.operand, t)
    if isinstance(predicate, And):
        return oracle_eval_at(db, obj, predicate.left, t) and (
            oracle_eval_at(db, obj, predicate.right, t)
        )
    if isinstance(predicate, Or):
        return oracle_eval_at(db, obj, predicate.left, t) or (
            oracle_eval_at(db, obj, predicate.right, t)
        )
    raise AssertionError(predicate)


def oracle(db, query: Query) -> list:
    anchor = query.at if query.scope is TemporalScope.AT else db.now
    hits = []
    for oid in sorted(db.pi("item", anchor)):
        obj = db.get_object(oid)
        membership = list(db.membership_times("item", oid).instants())
        if query.scope in (TemporalScope.NOW, TemporalScope.AT):
            t = db.now if query.scope is TemporalScope.NOW else query.at
            if oracle_eval_at(db, obj, query.predicate, t):
                hits.append(oid)
            continue
        scoped = membership
        if query.scope in (
            TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN
        ):
            lo, hi = query.interval
            scoped = [t for t in membership if lo <= t <= hi]
            if not scoped:
                continue
        results = [
            oracle_eval_at(db, obj, query.predicate, t) for t in scoped
        ]
        if query.scope in (
            TemporalScope.SOMETIME, TemporalScope.SOMETIME_IN
        ):
            if any(results):
                hits.append(oid)
        elif all(results):
            hits.append(oid)
    return hits


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**6), predicates(), st.data())
def test_evaluator_matches_oracle(seed, predicate, data):
    db = build_db(seed % 50)  # reuse a pool of databases
    scope = data.draw(st.sampled_from(list(TemporalScope)))
    at = None
    interval = None
    if scope is TemporalScope.AT:
        at = data.draw(st.integers(0, db.now))
    if scope in (TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN):
        lo = data.draw(st.integers(0, db.now))
        hi = data.draw(st.integers(lo, db.now))
        interval = (lo, hi)
    query = Query("item", predicate, scope, at, interval)
    assert evaluate(db, query) == oracle(db, query)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 20), predicates())
def test_when_matches_oracle(seed, predicate):
    from repro.query.evaluator import evaluate_when

    db = build_db(seed)
    for obj in db.objects():
        holds = evaluate_when(db, obj, predicate, db.now)
        span = obj.lifespan.resolve(db.now)
        for t in span.instants():
            assert (t in holds) == oracle_eval_at(db, obj, predicate, t)
