"""The query evaluator against a brute-force per-instant oracle.

The evaluator is segment-wise (it never loops over instants); the
oracle here *does* loop over every instant, re-deriving each atom from
first principles.  Hypothesis drives both over randomized databases
and predicates; they must always agree -- for every temporal scope.

Since the planner landed, ``evaluate`` routes through cost-based
access-path selection, so the oracle tests double as planner
equivalence tests whenever the plan chooses an index path.  The
predicate pool includes the indexable atom shapes (equality, ranges,
``In`` over a constant collection, ``Contains`` over a set-valued
temporal attribute) next to the residual-only ones, and
``test_planner_matches_scan`` additionally pins planner-on == planner-
off on every generated query.
"""

import contextlib
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.database import TemporalDatabase
from repro.query import planner
from repro.query.ast import (
    And,
    Attr,
    Compare,
    CompareOp,
    Const,
    Contains,
    In,
    Not,
    Or,
    Query,
    TemporalScope,
)
from repro.query.evaluator import evaluate
from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import is_null
from repro.values.structure import values_equal


def build_db(
    seed: int,
    bulk: bool = False,
    n_partitions: int | None = None,
    db: TemporalDatabase | None = None,
    on_tick=None,
) -> TemporalDatabase:
    """Randomized database; with ``bulk=True`` every op wave runs
    inside ``db.batch()`` from the identical RNG-driven op stream, so
    the two builds must be weak-value-equal (Definition 5.10).

    Pass *db* to grow an existing (e.g. journal-backed) database;
    *on_tick* fires right after every clock tick -- the AS OF matrix
    uses it to record committed transaction times."""
    rng = random.Random(seed)
    if db is None:
        db = TemporalDatabase(n_partitions=n_partitions)
    db.define_class(
        "item",
        attributes=[
            ("hot", "temporal(integer)"),
            ("cold", "integer"),
            ("tags", "temporal(set-of(integer))"),
        ],
    )

    def _tags():
        return {rng.randrange(5) for _ in range(rng.randint(0, 3))}

    def wave():
        return db.batch() if bulk else contextlib.nullcontext()

    with wave():
        for _ in range(4):
            db.create_object(
                "item",
                {"hot": rng.randrange(4), "cold": rng.randrange(4),
                 "tags": _tags()},
            )
    for _ in range(12):
        db.tick(rng.randint(1, 3))
        if on_tick is not None:
            on_tick(db)
        with wave():
            for obj in list(db.live_objects()):
                if rng.random() < 0.5:
                    db.update_attribute(
                        obj.oid, "hot", rng.randrange(4)
                    )
                if rng.random() < 0.2:
                    db.update_attribute(
                        obj.oid, "cold", rng.randrange(4)
                    )
                if rng.random() < 0.3:
                    db.update_attribute(obj.oid, "tags", _tags())
            if rng.random() < 0.15:
                db.create_object("item", {"hot": rng.randrange(4),
                                          "cold": rng.randrange(4),
                                          "tags": _tags()})
            if rng.random() < 0.1:
                candidates = list(db.live_objects())
                if len(candidates) > 2:
                    victim = rng.choice(candidates)
                    if victim.lifespan.start < db.now:
                        db.delete_object(victim.oid)
    db.tick()
    return db


ATOMS = st.sampled_from(["hot", "cold"])
OPS = st.sampled_from(list(CompareOp))


@st.composite
def predicates(draw, depth: int = 0):
    kind = draw(st.integers(0, 7 if depth < 2 else 4))
    if kind <= 2:
        return Compare(
            draw(OPS), Attr(draw(ATOMS)), Const(draw(st.integers(0, 4)))
        )
    if kind == 3:
        # attr in {constant collection} -- an indexable val-in atom.
        members = draw(
            st.lists(st.integers(0, 4), min_size=0, max_size=3)
        )
        return In(Attr(draw(ATOMS)), Const(tuple(members)))
    if kind == 4:
        # set-valued attr contains constant -- an element probe.
        return Contains(Attr("tags"), Const(draw(st.integers(0, 5))))
    if kind == 5:
        return Not(draw(predicates(depth=depth + 1)))
    if kind == 6:
        return And(
            draw(predicates(depth=depth + 1)),
            draw(predicates(depth=depth + 1)),
        )
    return Or(
        draw(predicates(depth=depth + 1)),
        draw(predicates(depth=depth + 1)),
    )


def _oracle_read(db, obj, name: str, t: int):
    """The value of one attribute at one instant; None = undefined."""
    value = obj.value.get(name)
    if isinstance(value, TemporalValue):
        return value.get(t, None) if value.defined_at(t) else None
    return value if t == db.now else None


def oracle_eval_at(db, obj, predicate, t: int) -> bool:
    """Definition-style evaluation of one atom at one instant."""
    if isinstance(predicate, Compare):
        operand = _oracle_read(db, obj, predicate.left.name, t)
        literal = predicate.right.value
        if operand is None or is_null(operand):
            return False
        table = {
            CompareOp.EQ: operand == literal,
            CompareOp.NE: operand != literal,
            CompareOp.LT: operand < literal,
            CompareOp.LE: operand <= literal,
            CompareOp.GT: operand > literal,
            CompareOp.GE: operand >= literal,
        }
        return table[predicate.op]
    if isinstance(predicate, In):
        operand = _oracle_read(db, obj, predicate.item.name, t)
        if operand is None:
            return False
        return any(
            values_equal(operand, member)
            for member in predicate.collection.value
        )
    if isinstance(predicate, Contains):
        operand = _oracle_read(db, obj, predicate.collection.name, t)
        if operand is None or is_null(operand):
            return False
        if not isinstance(operand, (set, frozenset, list, tuple)):
            return False
        return any(
            values_equal(predicate.item.value, member)
            for member in operand
        )
    if isinstance(predicate, Not):
        return not oracle_eval_at(db, obj, predicate.operand, t)
    if isinstance(predicate, And):
        return oracle_eval_at(db, obj, predicate.left, t) and (
            oracle_eval_at(db, obj, predicate.right, t)
        )
    if isinstance(predicate, Or):
        return oracle_eval_at(db, obj, predicate.left, t) or (
            oracle_eval_at(db, obj, predicate.right, t)
        )
    raise AssertionError(predicate)


def oracle(db, query: Query) -> list:
    anchor = query.at if query.scope is TemporalScope.AT else db.now
    hits = []
    for oid in sorted(db.pi("item", anchor)):
        obj = db.get_object(oid)
        membership = list(db.membership_times("item", oid).instants())
        if query.scope in (TemporalScope.NOW, TemporalScope.AT):
            t = db.now if query.scope is TemporalScope.NOW else query.at
            if oracle_eval_at(db, obj, query.predicate, t):
                hits.append(oid)
            continue
        scoped = membership
        if query.scope in (
            TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN
        ):
            lo, hi = query.interval
            scoped = [t for t in membership if lo <= t <= hi]
            if not scoped:
                continue
        results = [
            oracle_eval_at(db, obj, query.predicate, t) for t in scoped
        ]
        if query.scope in (
            TemporalScope.SOMETIME, TemporalScope.SOMETIME_IN
        ):
            if any(results):
                hits.append(oid)
        elif all(results):
            hits.append(oid)
    return hits


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**6), predicates(), st.data())
def test_evaluator_matches_oracle(seed, predicate, data):
    db = build_db(seed % 50)  # reuse a pool of databases
    scope = data.draw(st.sampled_from(list(TemporalScope)))
    at = None
    interval = None
    if scope is TemporalScope.AT:
        at = data.draw(st.integers(0, db.now))
    if scope in (TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN):
        lo = data.draw(st.integers(0, db.now))
        hi = data.draw(st.integers(lo, db.now))
        interval = (lo, hi)
    query = Query("item", predicate, scope, at, interval)
    assert evaluate(db, query) == oracle(db, query)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**6), predicates(), st.data())
def test_planner_matches_scan(seed, predicate, data):
    """Planner-on and planner-off (brute scan) agree on every query,
    for every temporal scope -- the index path must be invisible."""
    db = build_db(seed % 50)
    scope = data.draw(st.sampled_from(list(TemporalScope)))
    at = None
    interval = None
    if scope is TemporalScope.AT:
        at = data.draw(st.integers(0, db.now))
    if scope in (TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN):
        lo = data.draw(st.integers(0, db.now))
        hi = data.draw(st.integers(lo, db.now))
        interval = (lo, hi)
    query = Query("item", predicate, scope, at, interval)
    with planner.disabled():
        brute = evaluate(db, query)
    assert evaluate(db, query) == brute


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**6), predicates())
def test_bulk_build_is_weak_value_equal(seed, predicate):
    """The per-op and batched builds of the same op stream yield the
    same database: identical oid sets, weak value equality per object
    (Definition 5.10), clean integrity, and identical query results
    under every temporal scope."""
    from repro.database.integrity import check_database
    from repro.objects.equality import equal_by_value, weak_value_equal

    per_op = build_db(seed % 30)
    batched = build_db(seed % 30, bulk=True)

    assert per_op.now == batched.now
    oids = {obj.oid for obj in per_op.objects()}
    assert oids == {obj.oid for obj in batched.objects()}
    now = per_op.now
    for oid in oids:
        first, second = per_op.get_object(oid), batched.get_object(oid)
        # Strict value equality (Def 5.8) must hold -- the batched
        # path replays the identical op stream -- and implies weak
        # value equality (Def 5.10), asserted directly on live
        # objects (a dead object with static attributes has no
        # defined snapshot to witness the weak comparison with).
        assert equal_by_value(first, second), (
            f"object {oid!r} diverged between per-op and batched builds"
        )
        if first.alive_at(now, now):
            assert weak_value_equal(first, second, now)
    assert check_database(batched).ok

    for scope in TemporalScope:
        at = per_op.now // 2 if scope is TemporalScope.AT else None
        interval = (
            (per_op.now // 4, per_op.now // 2)
            if scope in (TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN)
            else None
        )
        query = Query("item", predicate, scope, at, interval)
        assert evaluate(per_op, query) == evaluate(batched, query), scope


@pytest.mark.parallel
@pytest.mark.parametrize("n_partitions", [1, 4, 7])
@pytest.mark.parametrize("seed", [0, 11, 29])
def test_parallel_matches_serial_and_oracle(
    seed, n_partitions, monkeypatch
):
    """Scatter-gather is invisible: for every temporal scope and a
    fixed predicate pool, the parallel scan equals both the serial
    scan and the per-instant oracle -- at one partition (degenerate),
    the core-shaped four, and a prime that leaves buckets empty."""
    from repro.database import parallel

    # Shrink the cost thresholds so the tiny oracle workloads scatter.
    monkeypatch.setattr(parallel, "MIN_PARALLEL_ITEMS", 1)
    monkeypatch.setattr(parallel, "SCATTER_OVERHEAD", 0.0)
    monkeypatch.setattr(parallel, "SHIP_COST", 0.0)

    db = build_db(seed, n_partitions=n_partitions)
    pool = [
        Compare(CompareOp.GE, Attr("hot"), Const(1)),
        Not(Compare(CompareOp.EQ, Attr("cold"), Const(2))),
        Or(
            Compare(CompareOp.LT, Attr("hot"), Const(2)),
            Contains(Attr("tags"), Const(3)),
        ),
    ]
    try:
        for scope in TemporalScope:
            at = db.now // 2 if scope is TemporalScope.AT else None
            interval = (
                (db.now // 4, db.now // 2)
                if scope
                in (TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN)
                else None
            )
            for predicate in pool:
                query = Query("item", predicate, scope, at, interval)
                with parallel.disabled():
                    serial = evaluate(db, query)
                assert evaluate(db, query) == serial == oracle(db, query)
    finally:
        parallel.shutdown(db)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6), predicates())
def test_segmented_build_matches_resident(seed, predicate):
    """The cold-segment tier is invisible to the evaluator: after a
    checkpoint spills history to disk, every query -- under all five
    temporal scopes, with the page cache squeezed to a single resident
    page so nearly every cold read faults -- returns exactly what the
    all-resident build of the same op stream returns."""
    from repro.database import pagecache, segments
    from repro.database.recovery import JOURNAL_NAME
    from repro.database.wal import Journal
    from repro.faults.fs import SimulatedFS

    resident = build_db(seed % 30)
    paged = build_db(seed % 30)
    paged.attach_journal(
        Journal(f"/db/{JOURNAL_NAME}", fs=SimulatedFS(), sync="always")
    )
    saved = (
        segments.SPILL_MIN_PAIRS,
        segments.HOT_TAIL_PAIRS,
        segments.PAGE_PAIRS,
    )
    segments.SPILL_MIN_PAIRS = 3
    segments.HOT_TAIL_PAIRS = 1
    segments.PAGE_PAIRS = 2
    pagecache.PAGE_CACHE.clear()
    pagecache.set_budget(1)  # sub-page budget: exactly one page stays
    try:
        paged.checkpoint()
        assert paged.segment_values > 0
        for scope in TemporalScope:
            at = resident.now // 2 if scope is TemporalScope.AT else None
            interval = (
                (resident.now // 4, resident.now // 2)
                if scope
                in (TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN)
                else None
            )
            query = Query("item", predicate, scope, at, interval)
            assert evaluate(paged, query) == evaluate(resident, query), scope
        assert pagecache.stats()["pages"] <= 1
    finally:
        (
            segments.SPILL_MIN_PAIRS,
            segments.HOT_TAIL_PAIRS,
            segments.PAGE_PAIRS,
        ) = saved
        pagecache.PAGE_CACHE.clear()
        pagecache.set_budget(pagecache.DEFAULT_BUDGET)


ASOF_TRIALS = int(os.environ.get("ASOF_TRIALS", "40"))

ASOF_PREDICATES = [
    Compare(CompareOp.GE, Attr("hot"), Const(1)),
    Not(Compare(CompareOp.EQ, Attr("cold"), Const(2))),
    Or(
        Compare(CompareOp.LT, Attr("hot"), Const(2)),
        Contains(Attr("tags"), Const(3)),
    ),
]


def _journaled_build(seed: int):
    """The build_db op stream replayed against a journal-backed
    database on a simulated disk; returns ``(db, fs, marks)`` where
    *marks* are the committed LSNs at every tick boundary."""
    from repro.database.recovery import open_database
    from repro.faults.fs import SimulatedFS

    fs = SimulatedFS()
    db, _ = open_database("/db", fs=fs)
    marks: list[int] = []
    build_db(seed, db=db, on_tick=lambda d: marks.append(d.journal.last_lsn))
    marks.append(db.journal.last_lsn)
    return db, fs, marks


class TestAsOfMatrix:
    """``AS OF <lsn>`` == ``restore_to(lsn)`` -- the transaction-time
    dimension's correctness oracle, for every valid-time scope.

    Both sides replay the same committed journal prefix by
    construction; the matrix (``ASOF_TRIALS`` seeds x 5 scopes x the
    indexable/residual predicate pool, CI runs 200 seeds) checks the
    whole pipeline around that core: parse -> resolve -> plan ->
    evaluate on the reconstruction, including the believed clock that
    anchors ``NOW`` and interval scopes."""

    @pytest.mark.parametrize("seed", range(ASOF_TRIALS))
    def test_as_of_equals_restore_to(self, seed):
        from dataclasses import replace

        from repro.bitemporal import asof as asof_mod
        from repro.replication.pitr import restore_to

        db, fs, marks = _journaled_build(seed % 30)
        rng = random.Random(10_000 + seed)
        lsn = rng.choice(marks)
        restored, _ = restore_to("/db", lsn=lsn, fs=fs)
        believed = asof_mod.as_of(db, lsn)
        assert believed.now == restored.now
        horizon = max(restored.now, 1)
        predicate = ASOF_PREDICATES[seed % len(ASOF_PREDICATES)]
        for scope in TemporalScope:
            at = rng.randrange(horizon) if scope is TemporalScope.AT else None
            interval = None
            if scope in (TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN):
                lo = rng.randrange(horizon)
                interval = (lo, rng.randrange(lo, horizon + 1))
            query = Query("item", predicate, scope, at, interval, as_of=lsn)
            got = evaluate(db, query)
            want = evaluate(restored, replace(query, as_of=None))
            assert got == want, (scope, lsn, marks[-1])
            # The oracle double-checks the restored side per instant.
            assert want == oracle(restored, replace(query, as_of=None))


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 20), predicates())
def test_when_matches_oracle(seed, predicate):
    from repro.query.evaluator import evaluate_when

    db = build_db(seed)
    for obj in db.objects():
        holds = evaluate_when(db, obj, predicate, db.now)
        span = obj.lifespan.resolve(db.now)
        for t in span.instants():
            assert (t in holds) == oracle_eval_at(db, obj, predicate, t)
