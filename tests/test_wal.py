"""The write-ahead journal: framing, checkpointing, recovery."""

import json

import pytest

from repro.database.database import TemporalDatabase
from repro.database.integrity import check_database
from repro.database.recovery import (
    JOURNAL_NAME,
    open_database,
    recover,
)
from repro.database.transactions import Transaction
from repro.database.wal import (
    MAGIC,
    Frame,
    Journal,
    checkpoint_lsn,
    checkpoint_name,
    drop_uncommitted,
    frame_record,
    iter_frames,
    list_checkpoints,
    scan_frames,
)
from repro.errors import JournalError, RecoveryError
from repro.faults.fs import SimulatedFS


def fresh(fs=None, directory="/db", sync="always"):
    """A journaled database on a simulated disk."""
    fs = fs or SimulatedFS()
    journal = Journal(f"{directory}/{JOURNAL_NAME}", fs=fs, sync=sync)
    return TemporalDatabase(journal=journal), fs


def build_staff(db):
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[("salary", "temporal(real)"), ("dept", "string")],
    )
    db.tick()
    ann = db.create_object(
        "employee", {"name": "Ann", "salary": 1000.0, "dept": "R"}
    )
    db.tick()
    db.update_attribute(ann, "salary", 1200.0)
    return ann


class TestFraming:
    def test_roundtrip(self):
        payloads = [{"lsn": i, "kind": "tick", "steps": i} for i in (1, 2, 3)]
        data = MAGIC + b"".join(frame_record(p) for p in payloads)
        records, tail = scan_frames(data)
        assert records == payloads
        assert tail.clean
        assert tail.valid_end == len(data)

    def test_empty_journal(self):
        records, tail = scan_frames(MAGIC)
        assert records == [] and tail.clean

    def test_bad_magic(self):
        records, tail = scan_frames(b"garbage!" + frame_record({"lsn": 1}))
        assert records == []
        assert tail.error == "bad or missing magic"
        assert tail.valid_end == 0

    def test_torn_record_salvages_prefix(self):
        good = frame_record({"lsn": 1, "kind": "tick"})
        torn = frame_record({"lsn": 2, "kind": "tick"})[:-3]
        records, tail = scan_frames(MAGIC + good + torn)
        assert [r["lsn"] for r in records] == [1]
        assert tail.error == "truncated record body"
        assert tail.dropped_bytes == len(torn)
        assert tail.valid_end == len(MAGIC) + len(good)

    def test_bitflip_detected_by_crc(self):
        good = frame_record({"lsn": 1, "kind": "tick"})
        bad = bytearray(frame_record({"lsn": 2, "kind": "tick"}))
        bad[10] ^= 0x40  # flip a payload bit; the CRC must catch it
        records, tail = scan_frames(MAGIC + good + bytes(bad))
        assert [r["lsn"] for r in records] == [1]
        assert tail.error == "checksum mismatch"

    def test_header_cut_short(self):
        good = frame_record({"lsn": 1, "kind": "tick"})
        records, tail = scan_frames(MAGIC + good + b"\x05\x00")
        assert len(records) == 1
        assert tail.error == "truncated record header"

    def test_payload_without_lsn_rejected(self):
        records, tail = scan_frames(MAGIC + frame_record({"kind": "tick"}))
        assert records == []
        assert tail.error == "malformed record payload"


class TestIterFrames:
    """The public frame reader shared by recovery, the LSN-resume scan,
    and the replication log shipper."""

    def _journal(self, fs, payloads):
        data = MAGIC + b"".join(frame_record(p) for p in payloads)
        fs.write("/db/journal.wal", data)
        return "/db/journal.wal"

    def test_frames_carry_position_and_raw_bytes(self):
        fs = SimulatedFS()
        payloads = [{"lsn": i, "kind": "tick", "steps": i} for i in (1, 2)]
        path = self._journal(fs, payloads)
        frames = list(iter_frames(path, fs=fs))
        assert [f.lsn for f in frames] == [1, 2]
        assert [f.record for f in frames] == payloads
        assert frames[0].offset == len(MAGIC)
        assert frames[0].end == frames[1].offset
        # raw is the frame verbatim: header + payload, CRC included.
        data = fs.read(path)
        for frame in frames:
            assert data[frame.offset:frame.end] == frame.raw
            assert frame_record(frame.record) == frame.raw

    def test_start_lsn_skips_earlier_frames(self):
        fs = SimulatedFS()
        path = self._journal(
            fs, [{"lsn": i, "kind": "tick"} for i in range(1, 6)]
        )
        assert [
            f.lsn for f in iter_frames(path, fs=fs, start_lsn=3)
        ] == [3, 4, 5]

    def test_corrupt_tail_ends_iteration_silently(self):
        fs = SimulatedFS()
        good = frame_record({"lsn": 1, "kind": "tick"})
        torn = frame_record({"lsn": 2, "kind": "tick"})[:-3]
        fs.write("/db/journal.wal", MAGIC + good + torn)
        assert [
            f.lsn for f in iter_frames("/db/journal.wal", fs=fs)
        ] == [1]

    def test_marker_and_kind_properties(self):
        begin = Frame(1, 8, 9, {"lsn": 1, "kind": "begin"}, b"")
        data = Frame(2, 9, 10, {"lsn": 2, "kind": "update"}, b"")
        assert begin.is_marker and begin.kind == "begin"
        assert not data.is_marker and data.kind == "update"

    def test_agrees_with_scan_frames(self):
        fs = SimulatedFS()
        payloads = [
            {"lsn": 1, "kind": "begin"},
            {"lsn": 2, "kind": "tick"},
            {"lsn": 3, "kind": "commit"},
        ]
        path = self._journal(fs, payloads)
        records, tail = scan_frames(fs.read(path))
        assert [f.record for f in iter_frames(path, fs=fs)] == records
        assert tail.clean


class TestDropUncommitted:
    def test_trailing_open_transaction_dropped(self):
        records = [
            {"lsn": 1, "kind": "tick"},
            {"lsn": 2, "kind": "begin"},
            {"lsn": 3, "kind": "update"},
            {"lsn": 4, "kind": "update"},
        ]
        committed, dropped, open_txn = drop_uncommitted(records)
        assert [r["lsn"] for r in committed] == [1]
        assert dropped == 2
        assert open_txn

    def test_committed_transaction_kept_markers_stripped(self):
        records = [
            {"lsn": 1, "kind": "begin"},
            {"lsn": 2, "kind": "update"},
            {"lsn": 3, "kind": "commit"},
            {"lsn": 4, "kind": "tick"},
        ]
        committed, dropped, open_txn = drop_uncommitted(records)
        assert [r["lsn"] for r in committed] == [2, 4]
        assert dropped == 0
        assert not open_txn

    def test_bare_dangling_begin_flagged_despite_zero_drops(self):
        records = [
            {"lsn": 1, "kind": "tick"},
            {"lsn": 2, "kind": "begin"},
        ]
        committed, dropped, open_txn = drop_uncommitted(records)
        assert [r["lsn"] for r in committed] == [1]
        assert dropped == 0
        assert open_txn


class TestJournal:
    def test_existing_journal_resumes_lsn_sequence(self):
        fs = SimulatedFS()
        first = Journal("/db/journal.wal", fs=fs)
        first.append({"kind": "tick"})
        first.append({"kind": "tick"})
        # A bare Journal() on a pre-existing file must not restart at
        # lsn 1 and mint duplicates.
        second = Journal("/db/journal.wal", fs=fs)
        assert second.next_lsn == 3
        assert second.append({"kind": "tick"}) == 3

    def test_existing_journal_with_corrupt_tail_resumes_from_prefix(self):
        fs = SimulatedFS()
        first = Journal("/db/journal.wal", fs=fs)
        first.append({"kind": "tick"})
        fs._files["/db/journal.wal"].visible.extend(b"\xde\xad")
        second = Journal("/db/journal.wal", fs=fs)
        assert second.next_lsn == 2

    def test_append_assigns_monotonic_lsns(self):
        fs = SimulatedFS()
        journal = Journal("/db/journal.wal", fs=fs)
        assert journal.append({"kind": "tick"}) == 1
        assert journal.append({"kind": "tick"}) == 2
        records, tail = journal.read_records()
        assert [r["lsn"] for r in records] == [1, 2]
        assert tail.clean

    def test_always_policy_syncs_every_record(self):
        fs = SimulatedFS()
        journal = Journal("/db/journal.wal", fs=fs)
        journal.append({"kind": "tick"})
        file = fs._files["/db/journal.wal"]
        assert file.synced == len(file.visible)

    def test_never_policy_leaves_data_unsynced(self):
        fs = SimulatedFS()
        journal = Journal("/db/journal.wal", fs=fs, sync="never")
        journal.append({"kind": "tick"})
        file = fs._files["/db/journal.wal"]
        assert file.synced < len(file.visible)

    def test_unknown_sync_policy_rejected(self):
        with pytest.raises(JournalError):
            Journal("/db/journal.wal", fs=SimulatedFS(), sync="mostly")

    def test_abort_truncates_and_rewinds_lsn(self):
        fs = SimulatedFS()
        journal = Journal("/db/journal.wal", fs=fs)
        journal.append({"kind": "tick"})
        size_before = fs.size("/db/journal.wal")
        journal.begin()
        journal.append({"kind": "update"})
        journal.abort()
        assert fs.size("/db/journal.wal") == size_before
        assert journal.next_lsn == 2
        # LSNs are reused for the next record -- no gap.
        assert journal.append({"kind": "tick"}) == 2

    def test_double_begin_rejected(self):
        journal = Journal("/db/journal.wal", fs=SimulatedFS())
        journal.begin()
        with pytest.raises(JournalError):
            journal.begin()

    def test_commit_without_begin_rejected(self):
        journal = Journal("/db/journal.wal", fs=SimulatedFS())
        with pytest.raises(JournalError):
            journal.commit()


class TestJournaledDatabase:
    def test_operations_are_recorded(self):
        db, fs = fresh()
        build_staff(db)
        records, tail = db.journal.read_records()
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "genesis"
        assert kinds.count("define_class") == 2
        assert kinds.count("create") == 1
        assert kinds.count("update") == 1
        assert kinds.count("tick") == 2
        assert tail.clean

    def test_recover_replays_everything(self):
        db, fs = fresh()
        ann = build_staff(db)
        recovered, report = recover("/db", fs=fs)
        assert report.ok and not report.errors
        assert recovered.now == db.now
        assert len(recovered) == len(db)
        twin = recovered.get_object(ann)
        assert twin.value["salary"].at(recovered.now) == 1200.0
        assert check_database(recovered).ok

    def test_recover_replays_delete_and_correct(self):
        db, fs = fresh()
        ann = build_staff(db)
        db.correct_attribute(ann, "salary", 1, 1, 999.0)
        db.tick()
        db.delete_object(ann)
        recovered, report = recover("/db", fs=fs)
        assert report.ok
        twin = recovered.get_object(ann)
        assert not twin.alive_at(recovered.now, recovered.now)
        assert twin.value["salary"].at(1) == 999.0

    def test_recover_replays_schema_evolution(self):
        db, fs = fresh()
        build_staff(db)
        db.add_attribute("employee", ("grade", "string"))
        db.remove_attribute("employee", "dept")
        db.define_class("temp", attributes=[("x", "integer")])
        db.tick()
        db.drop_class("temp")
        recovered, report = recover("/db", fs=fs)
        assert report.ok
        cls = recovered.get_class("employee")
        assert "grade" in cls.attributes
        assert "dept" not in cls.attributes
        assert "dept" in cls.retired_attributes
        # Dropped classes live on as historical classes; the drop closes
        # the lifespan, and replay must agree on where.
        assert (
            recovered.get_class("temp").lifespan
            == db.get_class("temp").lifespan
        )
        assert not recovered.get_class("temp").lifespan.is_moving

    def test_rolled_back_transaction_leaves_no_trace(self):
        db, fs = fresh()
        ann = build_staff(db)
        txn = Transaction(db).begin()
        db.update_attribute(ann, "salary", 9999.0)
        txn.rollback()
        recovered, report = recover("/db", fs=fs)
        assert report.ok
        assert (
            recovered.get_object(ann).value["salary"].at(recovered.now)
            == 1200.0
        )

    def test_uncommitted_suffix_dropped_at_recovery(self):
        db, fs = fresh()
        ann = build_staff(db)
        journal = db.journal
        journal.begin()
        db.update_attribute(ann, "salary", 9999.0)
        # No commit: simulate a crash by recovering the raw disk as-is.
        recovered, report = recover("/db", fs=fs)
        assert report.ok
        assert report.records_dropped_uncommitted == 1
        assert (
            recovered.get_object(ann).value["salary"].at(recovered.now)
            == 1200.0
        )

    def test_corrupt_tail_salvaged(self):
        db, fs = fresh()
        build_staff(db)
        path = f"/db/{JOURNAL_NAME}"
        fs._files[path].visible.extend(b"\xde\xad\xbe\xef")
        recovered, report = recover("/db", fs=fs)
        assert report.ok
        assert report.salvaged_tail
        assert report.dropped_bytes == 4
        assert recovered.now == db.now

    def test_delete_replay_uses_recorded_force_flag(self, monkeypatch):
        from repro.database import database as database_module

        db, fs = fresh()
        ann = build_staff(db)
        db.tick()
        db.delete_object(ann)  # non-forced
        records, _ = db.journal.read_records()
        delete_record = next(r for r in records if r["kind"] == "delete")
        assert delete_record["force"] is False

        seen = {}
        original = database_module.TemporalDatabase.delete_object

        def spy(self, oid, force=False):
            seen["force"] = force
            return original(self, oid, force=force)

        monkeypatch.setattr(
            database_module.TemporalDatabase, "delete_object", spy
        )
        recovered, report = recover("/db", fs=fs)
        assert report.ok and not report.errors
        assert seen["force"] is False

    def test_midstream_replay_failure_flags_divergence(self):
        fs = SimulatedFS()
        frames = [
            {"lsn": 1, "kind": "genesis", "start_time": 0},
            {"lsn": 2, "kind": "tick", "steps": 1},
            {"lsn": 3, "kind": "drop_class", "class": "nope"},
            {"lsn": 4, "kind": "tick", "steps": 1},
        ]
        fs.write(
            f"/db/{JOURNAL_NAME}",
            MAGIC + b"".join(frame_record(f) for f in frames),
        )
        db, report = recover("/db", fs=fs)
        assert report.ok  # a database was still produced (the prefix)
        assert report.replay_divergence
        assert report.last_lsn == 2
        assert db.now == 1
        assert report.errors

    def test_unrecoverable_without_genesis_or_checkpoint(self):
        fs = SimulatedFS()
        fs.write(f"/db/{JOURNAL_NAME}", b"not a journal at all")
        recovered, report = recover("/db", fs=fs)
        assert recovered is None
        assert not report.ok
        assert any("unrecoverable" in e for e in report.errors)


class TestCheckpoint:
    def test_checkpoint_truncates_journal_and_recovers(self):
        db, fs = fresh()
        ann = build_staff(db)
        path = db.checkpoint()
        assert list_checkpoints(fs, "/db") == [path.rsplit("/", 1)[1]]
        assert db.journal.is_empty()
        db.tick()
        db.update_attribute(ann, "salary", 1500.0)
        recovered, report = recover("/db", fs=fs)
        assert report.ok
        assert report.checkpoint is not None
        assert report.records_applied == 2  # tick + update after the ckpt
        assert (
            recovered.get_object(ann).value["salary"].at(recovered.now)
            == 1500.0
        )
        assert check_database(recovered).ok

    def test_records_covered_by_checkpoint_are_skipped(self):
        db, fs = fresh()
        build_staff(db)
        checkpoint_file = db.checkpoint()
        # Simulate the crash window between checkpoint rename and journal
        # truncation: restore the pre-truncation journal content.
        doc = json.loads(fs.read(checkpoint_file).decode("utf-8"))
        db.tick()
        recovered, report = recover("/db", fs=fs)
        assert report.ok
        assert report.checkpoint_lsn == doc["lsn"]
        assert recovered.now == db.now

    def test_corrupt_newest_checkpoint_falls_back(self):
        db, fs = fresh()
        ann = build_staff(db)
        db.checkpoint()
        db.tick()
        db.update_attribute(ann, "salary", 1500.0)
        newest = db.checkpoint()
        # Corrupt the newest snapshot; the older one must have been kept
        # only if the newest was durable -- it was, so recreate an older
        # one by hand to exercise the fallback.
        older = "/db/" + checkpoint_name(1)
        fs.write(older, fs.read(newest))
        fs.write(newest, b"{broken json")
        recovered, report = recover("/db", fs=fs)
        assert report.ok
        assert newest.rsplit("/", 1)[1] in report.corrupt_checkpoints
        assert report.checkpoint == older
        assert check_database(recovered).ok

    def test_checkpoint_requires_journal(self):
        db = TemporalDatabase()
        with pytest.raises(JournalError):
            db.checkpoint()

    def test_checkpoint_inside_transaction_rejected(self):
        db, fs = fresh()
        build_staff(db)
        txn = Transaction(db).begin()
        with pytest.raises(JournalError):
            db.checkpoint()
        txn.rollback()

    def test_checkpoint_name_roundtrip(self):
        assert checkpoint_lsn(checkpoint_name(42)) == 42
        assert checkpoint_lsn("nonsense.json") == -1
        assert checkpoint_lsn("checkpoint-x.json") == -1


class TestOpenDatabase:
    def test_fresh_then_reopen(self, tmp_path):
        directory = tmp_path / "db"
        db, report = open_database(directory)
        build_staff(db)
        db2, report2 = open_database(directory)
        assert report2.ok
        assert db2.now == db.now
        assert len(db2) == len(db)
        # The reopened database keeps journaling.
        db2.tick()
        db3, _ = open_database(directory)
        assert db3.now == db.now + 1

    def test_reopen_repairs_corrupt_tail(self, tmp_path):
        directory = tmp_path / "db"
        db, _ = open_database(directory)
        build_staff(db)
        journal_file = directory / JOURNAL_NAME
        with open(journal_file, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        db2, report = open_database(directory)
        assert report.salvaged_tail
        db2.tick()  # appends must not collide with the garbage tail
        db3, report3 = open_database(directory)
        assert not report3.salvaged_tail
        assert db3.now == db.now + 1

    def test_reopen_cuts_bare_dangling_begin(self, tmp_path):
        # Crash right after the begin marker: the dangling transaction
        # holds zero data records, so dropped-count-based repair would
        # leave the begin in the file and every subsequent autocommit
        # append would land inside a dead transaction.
        directory = tmp_path / "db"
        db, _ = open_database(directory)
        build_staff(db)
        before = db.now
        db.journal.begin()
        db2, report = open_database(directory)
        assert report.uncommitted_txn
        assert report.records_dropped_uncommitted == 0
        db2.tick()  # acknowledged durable write
        db3, report3 = open_database(directory)
        assert not report3.uncommitted_txn
        assert db3.now == before + 1  # the tick survived the reopen

    def test_reopen_cuts_uncommitted_txn_under_corrupt_tail(self, tmp_path):
        # Torn write mid-transaction: a corrupt tail AND an uncommitted
        # transaction coexist.  Truncating only at valid_end would keep
        # the begin + uncommitted records in the file.
        directory = tmp_path / "db"
        db, _ = open_database(directory)
        ann = build_staff(db)
        before = db.now
        db.journal.begin()
        db.update_attribute(ann, "salary", 9999.0)
        with open(directory / JOURNAL_NAME, "ab") as handle:
            handle.write(b"\xde\xad")
        db2, report = open_database(directory)
        assert report.salvaged_tail
        assert report.uncommitted_txn
        assert report.records_dropped_uncommitted == 1
        assert db2.get_object(ann).value["salary"].at(db2.now) == 1200.0
        db2.tick()
        db3, report3 = open_database(directory)
        assert not report3.uncommitted_txn
        assert db3.now == before + 1
        assert db3.get_object(ann).value["salary"].at(db3.now) == 1200.0

    def test_open_refuses_reattach_after_replay_divergence(self, tmp_path):
        directory = tmp_path / "db"
        directory.mkdir()
        frames = [
            {"lsn": 1, "kind": "genesis", "start_time": 0},
            {"lsn": 2, "kind": "tick", "steps": 1},
            {"lsn": 3, "kind": "drop_class", "class": "nope"},
            {"lsn": 4, "kind": "tick", "steps": 1},
        ]
        (directory / JOURNAL_NAME).write_bytes(
            MAGIC + b"".join(frame_record(f) for f in frames)
        )
        with pytest.raises(RecoveryError, match="diverged"):
            open_database(directory)
        # The journal is left untouched for forensics.
        data = (directory / JOURNAL_NAME).read_bytes()
        records, tail = scan_frames(data)
        assert [r["lsn"] for r in records] == [1, 2, 3, 4]

    def test_open_unrecoverable_raises(self, tmp_path):
        directory = tmp_path / "db"
        directory.mkdir()
        (directory / JOURNAL_NAME).write_bytes(b"garbage")
        with pytest.raises(RecoveryError):
            open_database(directory)

    def test_lsns_continue_after_reopen(self, tmp_path):
        directory = tmp_path / "db"
        db, _ = open_database(directory)
        db.tick()
        last = db.journal.last_lsn
        db2, report = open_database(directory)
        assert db2.journal.next_lsn == last + 1

    def test_oid_counter_survives_recovery(self, tmp_path):
        directory = tmp_path / "db"
        db, _ = open_database(directory)
        ann = build_staff(db)
        db.tick()
        db.delete_object(ann)
        db2, _ = open_database(directory)
        fresh_oid = db2.create_object(
            "employee", {"name": "Bob", "salary": 1.0, "dept": "S"}
        )
        assert fresh_oid.serial > ann.serial
