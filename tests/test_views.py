"""Temporal views (Chimera's deductive views, Section 2)."""

import pytest

from repro.errors import QueryError, QueryTypeError
from repro.query import attr
from repro.temporal.intervalsets import IntervalSet
from repro.views import TemporalView, ViewRegistry


@pytest.fixture
def payroll(empty_db):
    db = empty_db
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[("salary", "temporal(real)"), ("dept", "string")],
    )
    ann = db.create_object(
        "employee", {"name": "Ann", "salary": 1000.0, "dept": "R"}
    )
    bob = db.create_object(
        "employee", {"name": "Bob", "salary": 3000.0, "dept": "S"}
    )
    db.tick(10)
    db.update_attribute(ann, "salary", 2500.0)   # Ann rich from t=10
    db.tick(10)
    db.update_attribute(bob, "salary", 1500.0)   # Bob poor from t=20
    db.tick(10)  # now = 30
    return db, {"ann": ann, "bob": bob}


class TestExtent:
    def test_extent_varies_over_time(self, payroll):
        db, names = payroll
        rich = TemporalView(db, "employee", attr("salary") >= 2000.0)
        assert rich.extent(5) == frozenset({names["bob"]})
        assert rich.extent(15) == frozenset(
            {names["ann"], names["bob"]}
        )
        assert rich.extent(25) == frozenset({names["ann"]})

    def test_predicate_free_view_is_the_class_extent(self, payroll):
        db, names = payroll
        everyone = TemporalView(db, "employee")
        assert everyone.extent(5) == db.pi("employee", 5)

    def test_membership_times_exact(self, payroll):
        db, names = payroll
        rich = TemporalView(db, "employee", attr("salary") >= 2000.0)
        assert rich.membership_times(names["ann"]) == IntervalSet.span(
            10, 30
        )
        assert rich.membership_times(names["bob"]) == IntervalSet.span(
            0, 19
        )

    def test_ever_members(self, payroll):
        db, names = payroll
        rich = TemporalView(db, "employee", attr("salary") >= 2000.0)
        assert rich.ever_members() == frozenset(names.values())
        titans = TemporalView(db, "employee", attr("salary") >= 9000.0)
        assert titans.ever_members() == frozenset()

    def test_views_never_go_stale(self, payroll):
        db, names = payroll
        rich = TemporalView(db, "employee", attr("salary") >= 2000.0)
        assert names["bob"] not in rich.extent(db.now)
        db.update_attribute(names["bob"], "salary", 5000.0)
        assert names["bob"] in rich.extent(db.now)

    def test_ill_typed_predicate_rejected_at_definition(self, payroll):
        db, _ = payroll
        with pytest.raises(QueryTypeError):
            TemporalView(db, "employee", attr("salary") == "rich")


class TestComposition:
    def test_intersection(self, payroll):
        db, names = payroll
        rich = TemporalView(db, "employee", attr("salary") >= 2000.0)
        in_r = TemporalView(db, "employee", attr("dept") == "R")
        both = rich & in_r
        # dept is static: visible only at now; Ann is rich and in R now.
        assert both.extent(db.now) == frozenset({names["ann"]})
        assert both.membership_times(names["ann"]) == (
            IntervalSet.instant(db.now)
        )

    def test_union_and_difference(self, payroll):
        db, names = payroll
        rich = TemporalView(db, "employee", attr("salary") >= 2000.0)
        poor = TemporalView(db, "employee", attr("salary") < 2000.0)
        everyone = rich | poor
        assert everyone.membership_times(names["ann"]) == (
            db.membership_times("employee", names["ann"])
        )
        only_rich = everyone - poor
        assert only_rich.membership_times(names["ann"]) == (
            rich.membership_times(names["ann"])
        )

    def test_cross_database_composition_rejected(self, payroll):
        from repro.database.database import TemporalDatabase

        db, _ = payroll
        other = TemporalDatabase()
        other.define_class("employee", attributes=[("salary", "real")])
        a = TemporalView(db, "employee")
        b = TemporalView(other, "employee")
        with pytest.raises(QueryError):
            a & b


class TestRegistry:
    def test_define_get_drop(self, payroll):
        db, names = payroll
        registry = ViewRegistry(db)
        rich = registry.define(
            "rich", "employee", attr("salary") >= 2000.0
        )
        assert registry.get("rich") is rich
        assert "rich" in registry and len(registry) == 1
        registry.drop("rich")
        assert "rich" not in registry
        with pytest.raises(QueryError):
            registry.get("rich")

    def test_duplicate_and_collision_rejected(self, payroll):
        db, _ = payroll
        registry = ViewRegistry(db)
        registry.define("rich", "employee", attr("salary") >= 2000.0)
        with pytest.raises(QueryError):
            registry.define("rich", "employee")
        with pytest.raises(QueryError):
            registry.define("employee", "employee")

    def test_named_composition(self, payroll):
        db, names = payroll
        registry = ViewRegistry(db)
        rich = registry.define("rich", "employee", attr("salary") >= 2000.0)
        in_r = registry.define("in-r", "employee", attr("dept") == "R")
        both = registry.define_composed("rich-in-r", rich & in_r)
        assert registry.get("rich-in-r").extent(db.now) == frozenset(
            {names["ann"]}
        )


from hypothesis import given, settings, strategies as st


class TestViewsAgainstBruteForce:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 200))
    def test_membership_times_match_per_instant_filter(self, seed):
        """view.membership_times == { t | i in pi(base,t) and pred@t }
        computed instant by instant."""
        from repro.query.evaluator import _eval_at
        from repro.workloads import WorkloadSpec, build_database

        db = build_database(
            WorkloadSpec(n_objects=4, n_ticks=15, update_rate=0.6,
                         migration_rate=0.0, delete_rate=0.0, seed=seed)
        )
        predicate = attr("salary") >= 2000.0
        view = TemporalView(db, "employee", predicate)
        for obj in db.objects():
            times = view.membership_times(obj.oid)
            base = db.membership_times("employee", obj.oid)
            for t in range(0, db.now + 1):
                expected = (
                    t in base
                    and _eval_at(db, obj, predicate, t, db.now) is True
                )
                assert (t in times) == expected, (obj.oid, t)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 100))
    def test_extent_matches_membership_times(self, seed):
        from repro.workloads import WorkloadSpec, build_database

        db = build_database(
            WorkloadSpec(n_objects=4, n_ticks=12, seed=seed,
                         migration_rate=0.0, delete_rate=0.0)
        )
        view = TemporalView(db, "employee", attr("salary") >= 2000.0)
        for t in (0, db.now // 2, db.now):
            extent = view.extent(t)
            for obj in db.objects():
                assert (obj.oid in extent) == (
                    t in view.membership_times(obj.oid)
                )
