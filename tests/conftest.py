"""Shared fixtures: the paper's running examples as live databases."""

from __future__ import annotations

import pytest

from repro.database.database import TemporalDatabase
from repro.schema.attribute import Attribute
from repro.schema.method import MethodSignature


@pytest.fixture
def empty_db() -> TemporalDatabase:
    return TemporalDatabase()


@pytest.fixture
def project_db():
    """The schema and object of Examples 4.1 / 5.1.

    Timeline: classes defined at 10; object i1 ("IDEA") created at 20
    with subproject i4 and participants {i2, i3}; subproject changed to
    i9 at 46; participant i8 added at 81; clock parked at 90.

    Returns (db, names) with names mapping the paper's identifiers to
    the actual oids.
    """
    db = TemporalDatabase()
    db.tick(10)
    db.define_class("person", attributes=[("name", "string")])
    db.define_class("task", attributes=[("title", "string")])
    db.define_class(
        "project",
        attributes=[
            Attribute("name", "temporal(string)", immutable=True),
            ("objective", "string"),
            ("workplan", "set-of(task)"),
            ("subproject", "temporal(project)"),
            ("participants", "temporal(set-of(person))"),
        ],
        methods=[
            MethodSignature("add-participant", ("person",), "project"),
        ],
        c_attributes=[("average-participants", "integer")],
        c_attr_values={"average-participants": 20},
    )
    db.tick(10)  # now = 20
    names = {}
    names["i7"] = db.create_object("task", {"title": "implementation"})
    names["i2"] = db.create_object("person", {"name": "Ann"})
    names["i3"] = db.create_object("person", {"name": "Bob"})
    names["i4"] = db.create_object(
        "project", {"name": "SUB-OLD", "objective": "old sub"}
    )
    names["i1"] = db.create_object(
        "project",
        {
            "name": "IDEA",
            "objective": "Implementation",
            "workplan": {names["i7"]},
            "subproject": names["i4"],
            "participants": frozenset({names["i2"], names["i3"]}),
        },
    )
    db.tick(26)  # now = 46
    names["i9"] = db.create_object(
        "project", {"name": "SUB-NEW", "objective": "new sub"}
    )
    db.update_attribute(names["i1"], "subproject", names["i9"])
    db.tick(35)  # now = 81
    names["i8"] = db.create_object("person", {"name": "Cai"})
    db.update_attribute(
        names["i1"],
        "participants",
        frozenset({names["i2"], names["i3"], names["i8"]}),
    )
    db.tick(9)  # now = 90
    return db, names


@pytest.fixture
def staff_db():
    """The employee/manager migration scenario of Section 5.2.

    Timeline: classes at 0; Dan hired as employee at 10 (salary
    static in employee? no -- salary is temporal in employee here to
    exercise refinement, see below); promoted to manager at 30 (gains
    dependents + officialcar); salary raised at 40; demoted at 60;
    clock parked at 70.
    """
    db = TemporalDatabase()
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[("salary", "temporal(real)"), ("dept", "string")],
    )
    db.define_class(
        "manager",
        parents=["employee"],
        attributes=[
            ("dependents", "temporal(set-of(person))"),
            ("officialcar", "string"),
        ],
    )
    db.tick(10)
    dan = db.create_object(
        "employee", {"name": "Dan", "salary": 1000.0, "dept": "R"}
    )
    pat = db.create_object("person", {"name": "Pat"})
    db.tick(20)  # 30
    db.migrate(
        dan,
        "manager",
        {"officialcar": "M-1", "dependents": frozenset({pat})},
    )
    db.tick(10)  # 40
    db.update_attribute(dan, "salary", 2000.0)
    db.tick(20)  # 60
    db.migrate(dan, "employee")
    db.tick(10)  # 70
    return db, {"dan": dan, "pat": pat}
