"""The object tuple (Definition 5.1) and its lifespan."""

import pytest

from repro.errors import LifespanError, UnknownAttributeError
from repro.objects.object import TemporalObject
from repro.temporal.intervals import Interval
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID
from repro.values.records import RecordValue


def make_historical() -> TemporalObject:
    """The object of Example 5.1 (paper oids renamed)."""
    name = TemporalValue()
    name.assign(20, "IDEA")
    subproject = TemporalValue.from_items([((20, 45), OID(4))])
    subproject.assign(46, OID(9))
    participants = TemporalValue.from_items(
        [((20, 80), frozenset({OID(2), OID(3)}))]
    )
    participants.assign(81, frozenset({OID(2), OID(3), OID(8)}))
    return TemporalObject(
        OID(1),
        created_at=20,
        most_specific_class="project",
        attributes={
            "name": name,
            "objective": "Implementation",
            "workplan": {OID(7)},
            "subproject": subproject,
            "participants": participants,
        },
    )


class TestLifespan:
    def test_open_until_deleted(self):
        obj = make_historical()
        assert obj.lifespan == Interval.from_now(20)
        assert obj.is_alive
        assert obj.alive_at(20) and obj.alive_at(10**6)
        assert not obj.alive_at(19)

    def test_end_lifespan(self):
        obj = make_historical()
        obj.end_lifespan(90)
        assert obj.lifespan == Interval(20, 89)
        assert not obj.is_alive
        with pytest.raises(LifespanError):
            obj.end_lifespan(95)

    def test_cannot_die_at_birth(self):
        obj = make_historical()
        with pytest.raises(LifespanError):
            obj.end_lifespan(20)


class TestValueComponent:
    def test_attribute_access(self):
        obj = make_historical()
        assert obj.get_attribute("objective") == "Implementation"
        assert obj.has_attribute("name")
        with pytest.raises(UnknownAttributeError):
            obj.get_attribute("ghost")

    def test_partition(self):
        obj = make_historical()
        assert set(obj.temporal_attribute_names()) == {
            "name", "subproject", "participants",
        }
        assert set(obj.static_attribute_names()) == {
            "objective", "workplan",
        }

    def test_historical_vs_static(self):
        assert make_historical().is_historical
        static = TemporalObject(OID(5), 0, "person", {"name": "Ann"})
        assert static.is_static and not static.is_historical

    def test_value_record(self):
        record = make_historical().value_record()
        assert isinstance(record, RecordValue)
        assert set(record.names) == {
            "name", "objective", "workplan", "subproject", "participants",
        }

    def test_temporal_items_include_retained(self):
        obj = make_historical()
        retained = TemporalValue.from_items([((1, 5), 0)])
        obj.retained["old"] = retained
        names = dict(obj.temporal_items())
        assert "old" in names and "name" in names

    def test_temporal_value_lookup(self):
        obj = make_historical()
        assert obj.temporal_value("name").at(30) == "IDEA"
        obj.retained["gone"] = TemporalValue.from_items([((0, 1), 9)])
        assert obj.temporal_value("gone").at(0) == 9
        assert obj.temporal_value("objective") is None


class TestClassHistory:
    def test_most_specific_class(self):
        obj = make_historical()
        assert obj.most_specific_class(25) == "project"
        assert obj.most_specific_class(10) is None

    def test_current_class(self):
        obj = make_historical()
        assert obj.current_class(40) == "project"
        with pytest.raises(LifespanError):
            obj.current_class(5)

    def test_migration_recorded(self):
        obj = TemporalObject(OID(1), 0, "employee")
        obj.class_history.assign(10, "manager")
        obj.class_history.assign(20, "employee")
        pairs = list(obj.classes_over_time())
        assert [c for _i, c in pairs] == ["employee", "manager", "employee"]
        assert obj.most_specific_class(15) == "manager"

    def test_paper_class_history_for_static_object(self):
        """Definition 5.1: a static object's class-history is the single
        pair <[now, now], c>."""
        static = TemporalObject(OID(5), 0, "person", {"name": "Ann"})
        view = static.paper_class_history(now=42)
        assert view.pairs() == ((Interval(42, 42), "person"),)

    def test_paper_class_history_for_historical_object(self):
        obj = make_historical()
        assert obj.paper_class_history(now=50) == obj.class_history
