"""The scatter-gather executor: equivalence, lifecycle, fallback.

The contract under test is that parallelism is *invisible* except in
wall-clock: every scatter-gather result equals the serial path's
result exactly -- across every temporal scope, every partition count
(including 1 and a prime that leaves buckets empty), pool crashes,
and the batch/suspended-cache states where the executor must stand
down entirely.

The pool-forcing fixture shrinks ``MIN_PARALLEL_ITEMS`` and zeroes the
scatter overhead so the cost model chooses parallel even on the small
extents a test can afford (and on single-core CI machines).
"""

from __future__ import annotations

import random
import subprocess
import sys

import pytest

from repro import perf
from repro.database import parallel
from repro.database.database import Partitioning, TemporalDatabase
from repro.database.integrity import check_database
from repro.query import planner
from repro.query.ast import (
    Attr,
    Compare,
    CompareOp,
    Const,
    Contains,
    Not,
    Query,
    TemporalScope,
)
from repro.query.evaluator import evaluate
from repro.values.oid import OID

pytestmark = pytest.mark.parallel


def _spawns() -> int:
    return perf.counters.metric("parallel.spawns").count


def _fallbacks() -> int:
    return perf.counters.metric("parallel.fallbacks").count


@pytest.fixture
def forced(monkeypatch):
    """Make the cost model choose parallel on tiny test extents."""
    monkeypatch.setattr(parallel, "MIN_PARALLEL_ITEMS", 1)
    monkeypatch.setattr(parallel, "SCATTER_OVERHEAD", 0.0)
    monkeypatch.setattr(parallel, "SHIP_COST", 0.0)


def build_db(
    seed: int, n_objects: int = 40, n_partitions: int = 4
) -> TemporalDatabase:
    """A seeded workload over one class with hot/cold/tags churn."""
    rng = random.Random(seed)
    db = TemporalDatabase(n_partitions=n_partitions)
    db.define_class(
        "item",
        attributes=[
            ("hot", "temporal(integer)"),
            ("cold", "integer"),
            ("tags", "temporal(set-of(integer))"),
        ],
    )

    def _tags():
        return {rng.randrange(5) for _ in range(rng.randint(0, 3))}

    for _ in range(n_objects):
        db.create_object(
            "item",
            {"hot": rng.randrange(4), "cold": rng.randrange(4),
             "tags": _tags()},
        )
    for _ in range(8):
        db.tick(rng.randint(1, 3))
        for obj in list(db.live_objects()):
            if rng.random() < 0.4:
                db.update_attribute(obj.oid, "hot", rng.randrange(4))
            if rng.random() < 0.2:
                db.update_attribute(obj.oid, "tags", _tags())
        if rng.random() < 0.3:
            candidates = list(db.live_objects())
            if len(candidates) > 4:
                victim = rng.choice(candidates)
                if victim.lifespan.start < db.now:
                    db.delete_object(victim.oid)
    db.tick()
    return db


def _queries(db) -> list[Query]:
    """One query per temporal scope, over scan-forcing predicates."""
    predicates = [
        Compare(CompareOp.GE, Attr("hot"), Const(0)),
        Not(Compare(CompareOp.EQ, Attr("hot"), Const(2))),
        Contains(Attr("tags"), Const(3)),
    ]
    out = []
    for scope in TemporalScope:
        at = db.now // 2 if scope is TemporalScope.AT else None
        interval = (
            (db.now // 4, db.now // 2)
            if scope
            in (TemporalScope.SOMETIME_IN, TemporalScope.ALWAYS_IN)
            else None
        )
        for predicate in predicates:
            out.append(Query("item", predicate, scope, at, interval))
    return out


class TestPartitioning:
    def test_split_covers_population_exactly(self):
        split = Partitioning(4).split(OID(i) for i in range(37))
        assert len(split) == 4
        flat = [oid for bucket in split for oid in bucket]
        assert sorted(flat) == [OID(i) for i in range(37)]
        for index, bucket in enumerate(split):
            assert all(oid.serial % 4 == index for oid in bucket)

    def test_partition_of_matches_split(self):
        part = Partitioning(7)
        for serial in range(50):
            oid = OID(serial, "h")
            assert part.partition_of(oid) == serial % 7

    def test_single_partition_and_validation(self):
        assert Partitioning(1).split([OID(5)]) == [[OID(5)]]
        with pytest.raises(ValueError):
            Partitioning(0)

    def test_default_is_core_count(self):
        import os

        assert Partitioning().n_partitions == max(os.cpu_count() or 1, 1)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("n_partitions", [1, 4, 7])
    @pytest.mark.parametrize("seed", [0, 17])
    def test_all_scopes_match_serial(self, forced, seed, n_partitions):
        db = build_db(seed, n_partitions=n_partitions)
        try:
            for query in _queries(db):
                with parallel.disabled():
                    serial = evaluate(db, query)
                assert evaluate(db, query) == serial, query.scope
        finally:
            parallel.shutdown(db)

    def test_no_predicate_plan_stays_serial(self, forced):
        db = build_db(3)
        try:
            chosen = planner.plan(
                db, Query("item", None, TemporalScope.NOW, None, None)
            )
            assert chosen.degree == 1
        finally:
            parallel.shutdown(db)


class TestPoolLifecycle:
    def test_pool_forks_once_and_respawns_on_mutation(self, forced):
        db = build_db(5)
        query = _queries(db)[0]
        try:
            before = _spawns()
            evaluate(db, query)
            evaluate(db, query)
            evaluate(db, query)
            assert _spawns() == before + 1  # one fork, three queries
            db.tick()  # version changes: (now, gen, ops)
            evaluate(db, query)
            assert _spawns() == before + 2
            db.update_attribute(
                next(iter(db.live_objects())).oid, "hot", 1
            )
            evaluate(db, query)
            assert _spawns() == before + 3
        finally:
            parallel.shutdown(db)

    def test_dead_pool_respawns_between_queries(self, forced):
        db = build_db(6)
        query = _queries(db)[0]
        try:
            with parallel.disabled():
                expected = evaluate(db, query)
            assert evaluate(db, query) == expected  # spawns the pool
            for worker in db._parallel_pool._workers:
                worker.kill()
                worker.join()
            # A crash *between* scatters is repaired, not fallen back
            # from: the next query detects the dead pool and reforks.
            spawned, before = _spawns(), _fallbacks()
            assert evaluate(db, query) == expected
            assert _spawns() == spawned + 1
            assert _fallbacks() == before
        finally:
            parallel.shutdown(db)

    def test_mid_scatter_crash_falls_back_to_serial(
        self, forced, monkeypatch
    ):
        db = build_db(6)
        query = _queries(db)[0]
        try:
            with parallel.disabled():
                expected = evaluate(db, query)
            assert evaluate(db, query) == expected  # spawns the pool
            for worker in db._parallel_pool._workers:
                worker.kill()
                worker.join()
            # Hide the corpse from the pre-scatter liveness check so
            # the death is only discovered mid-gather -- the moment a
            # worker could really die under a live scatter.
            real_alive = parallel.WorkerPool.alive
            calls = {"n": 0}

            def flaky_alive(pool):
                calls["n"] += 1
                return True if calls["n"] <= 1 else real_alive(pool)

            monkeypatch.setattr(parallel.WorkerPool, "alive", flaky_alive)
            before = _fallbacks()
            assert evaluate(db, query) == expected
            assert _fallbacks() > before
            # flaky_alive delegates to the real check from here on.
            # The broken pool is replaced on the next query.
            spawned = _spawns()
            assert evaluate(db, query) == expected
            assert _spawns() == spawned + 1
        finally:
            parallel.shutdown(db)

    def test_worker_utilization_metrics_recorded(self, forced):
        from repro import obs

        db = build_db(7)
        busy = perf.counters.metric("parallel.busy_us").count
        wall = perf.counters.metric("parallel.wall_us").count
        hist = obs.histogram("parallel.partition").count
        try:
            evaluate(db, _queries(db)[0])
            assert perf.counters.metric("parallel.busy_us").count > busy
            assert perf.counters.metric("parallel.wall_us").count > wall
            assert obs.histogram("parallel.partition").count > hist
        finally:
            parallel.shutdown(db)


class TestBatchInteraction:
    def test_mid_batch_stands_down(self, forced):
        db = build_db(8)
        query = _queries(db)[0]
        try:
            with db.batch():
                db.create_object(
                    "item", {"hot": 1, "cold": 1, "tags": set()}
                )
                assert not parallel.usable(db)
                assert planner.plan(db, query).degree == 1
            # After the coalesced reconciliation, scatter is legal
            # again and agrees with serial on the post-batch state.
            with parallel.disabled():
                expected = evaluate(db, query)
            assert evaluate(db, query) == expected
        finally:
            parallel.shutdown(db)

    def test_suspended_caches_stand_down(self, forced):
        db = build_db(9)
        query = _queries(db)[0]
        try:
            db.caches.suspend()
            assert not parallel.usable(db)
            assert planner.plan(db, query).degree == 1
            db.caches.resume(db, [])
            assert parallel.usable(db)
        finally:
            parallel.shutdown(db)


class TestExplain:
    def test_explain_renders_degree(self, forced):
        db = build_db(10)
        query = _queries(db)[0]
        try:
            chosen = planner.explain(db, query)
            assert chosen.degree == 4
            assert "parallel degree=4" in chosen.render()
            assert chosen.to_dict()["degree"] == 4
        finally:
            parallel.shutdown(db)

    def test_serial_plan_renders_no_degree(self):
        db = build_db(10)  # thresholds NOT forced: extent is tiny
        query = _queries(db)[0]
        chosen = planner.explain(db, query)
        assert chosen.degree == 1
        assert "parallel degree" not in chosen.render()


class TestAblation:
    def test_disabled_context_manager(self, forced):
        db = build_db(11)
        query = _queries(db)[0]
        before = _spawns()
        with parallel.disabled():
            assert not parallel.usable(db)
            assert planner.plan(db, query).degree == 1
            evaluate(db, query)
        assert _spawns() == before  # no pool ever forked

    def test_set_enabled_round_trip(self):
        assert parallel.set_enabled(False) is True
        assert parallel.is_enabled is False
        assert parallel.set_enabled(True) is False
        assert parallel.is_enabled is True

    def test_env_var_ablation(self):
        code = (
            "from repro.database import parallel\n"
            "assert not parallel.is_enabled\n"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={"REPRO_NO_PARALLEL": "1", "PYTHONPATH": "src"},
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )


class TestIntegrityFanout:
    def _ref_db(self, n_partitions: int = 4) -> TemporalDatabase:
        db = TemporalDatabase(n_partitions=n_partitions)
        db.define_class(
            "node",
            attributes=[("peer", "node"), ("rank", "integer")],
        )
        db.tick()
        previous = None
        for rank in range(80):
            payload = {"rank": rank}
            if previous is not None:
                # serial k points at serial k-1: every single
                # reference crosses a partition boundary (k mod 4 !=
                # (k-1) mod 4), the exact shape a naive per-slice
                # "known oids" universe would false-flag.
                payload["peer"] = previous
            previous = db.create_object("node", payload)
        db.tick()
        return db

    def test_cross_partition_references_are_clean(self, forced):
        db = self._ref_db()
        try:
            report = check_database(db, use_parallel=True)
            assert report.ok, report.all_violations()
        finally:
            parallel.shutdown(db)

    def test_parallel_reports_same_violations_as_serial(self, forced):
        db = self._ref_db()
        try:
            # Corrupt one object directly (bypassing the update API);
            # both paths must flag the dangling reference identically.
            victim = db.get_object(OID(5, "node"))
            victim.value["peer"] = OID(999, "node")
            serial = check_database(db, use_parallel=False)
            parallel.shutdown(db)  # direct poke: force a fresh fork
            fanned = check_database(db, use_parallel=True)
            assert not serial.ok
            assert sorted(serial.all_violations()) == sorted(
                fanned.all_violations()
            )
        finally:
            parallel.shutdown(db)

    def test_serial_and_parallel_agree_on_workload(self, forced):
        db = build_db(12)
        try:
            serial = check_database(db, use_parallel=False)
            fanned = check_database(db, use_parallel=True)
            assert serial.ok and fanned.ok
            assert sorted(serial.all_violations()) == sorted(
                fanned.all_violations()
            )
        finally:
            parallel.shutdown(db)
