"""Tables 1 and 2: the encoded claims and the code-derived row."""

from repro.survey.models import (
    MODELS,
    TABLE1_LEGEND,
    TABLE2_LEGEND,
    t_chimera_row_from_code,
)
from repro.survey.tables import (
    render_table,
    render_table1,
    render_table2,
    table1_rows,
    table2_rows,
)


class TestRegistry:
    def test_eight_models(self):
        assert len(MODELS) == 8
        assert MODELS[-1].citation == "Our model"

    def test_citations_in_paper_order(self):
        assert [m.citation for m in MODELS] == [
            "[21]", "[6]", "[11]", "[13]", "[19]", "[15]", "[7]",
            "Our model",
        ]

    def test_table1_claims(self):
        """Spot-check Table 1 cells against the printed table."""
        by = {m.citation: m for m in MODELS}
        assert by["[21]"].time_structure == "user-defined"
        assert by["[21]"].time_dimension == "arbitrary^1"
        assert by["[11]"].oo_data_model == "TIGUKAT"
        assert by["[19]"].oo_data_model == "OSAM*"
        assert all(
            m.values_and_objects == "objects"
            for m in MODELS
            if m.citation != "Our model"
        )
        assert by["Our model"].values_and_objects == "both"
        assert by["Our model"].class_features == "YES"

    def test_table2_claims(self):
        by = {m.citation: m for m in MODELS}
        assert by["[13]"].what_is_timestamped == "objects"
        assert by["[15]"].temporal_attribute_values == "sets of triples^3"
        assert by["[15]"].kinds_of_attributes == "temporal"
        assert by["Our model"].kinds_of_attributes == (
            "temporal + immutable + non-temporal"
        )
        assert by["Our model"].histories_of_object_types == "YES"
        # Only our model supports non-temporal attributes.
        assert sum(
            "non-temporal" in m.kinds_of_attributes for m in MODELS
        ) == 1

    def test_histories_of_object_types_column(self):
        by = {m.citation: m for m in MODELS}
        yes = {c for c, m in by.items() if m.histories_of_object_types == "YES"}
        assert yes == {"[21]", "[11]", "[7]", "Our model"}


class TestDerivedRow:
    def test_our_row_is_backed_by_the_implementation(self):
        """Every 'Our model' cell is witnessed by the code."""
        assert t_chimera_row_from_code() == MODELS[-1]


class TestRendering:
    def test_table1_rows_shape(self):
        rows = table1_rows()
        assert len(rows) == 9  # header + 8 models
        assert rows[0][1] == "oo data model"
        assert rows[-1][0] == "Our model"

    def test_table2_rows_shape(self):
        rows = table2_rows()
        assert len(rows) == 9
        assert rows[0][1] == "what is timestamped"

    def test_render_aligns_and_includes_legend(self):
        text = render_table(table1_rows(), TABLE1_LEGEND, "Table 1")
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "Legenda:" in text
        assert "transaction or as valid time" in text

    def test_full_renderings(self):
        t1 = render_table1()
        assert "OODAPLEX" in t1 and "Our model" in t1 and "Chimera" in t1
        t2 = render_table2()
        assert "sets of triples^3" in t2
        for note in TABLE2_LEGEND:
            assert note in t2
