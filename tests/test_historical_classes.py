"""Historical classes: temporal c-attributes evolving over time.

A class is *historical* if at least one of its c-attributes has a
temporal domain (Definition 4.1) -- the class-level analogue of
historical objects.  Example 4.1 notes that had ``average-participants``
recorded its changes over time, the project class would be historical.
"""

import pytest

from repro.schema.attribute import Attribute
from repro.schema.class_def import ClassKind
from repro.schema.method import MethodSignature
from repro.temporal.temporalvalue import TemporalValue


@pytest.fixture
def stats_db(empty_db):
    """A historical class whose c-attribute tracks the average salary."""

    def recompute(db, cls):
        extent = cls.history.members_at(db.now)
        salaries = [
            db.get_object(oid).value["salary"].get(db.now)
            for oid in extent
        ]
        salaries = [s for s in salaries if isinstance(s, float)]
        average = sum(salaries) / len(salaries) if salaries else 0.0
        cls.history.set_c_attr("avg-salary", average, db.now)
        return average

    db = empty_db
    db.define_class(
        "employee",
        attributes=[("salary", "temporal(real)")],
        c_attributes=[Attribute("avg-salary", "temporal(real)")],
        c_methods=[
            MethodSignature("recompute", (), "real", body=recompute)
        ],
    )
    return db


class TestHistoricalClass:
    def test_kind(self, stats_db):
        assert stats_db.get_class("employee").kind is ClassKind.HISTORICAL
        assert stats_db.get_class("employee").is_historical

    def test_c_attribute_starts_as_temporal_value(self, stats_db):
        history = stats_db.get_class("employee").history
        assert isinstance(history.get_c_attr("avg-salary"), TemporalValue)

    def test_c_attribute_history_accumulates(self, stats_db):
        db = stats_db
        a = db.create_object("employee", {"salary": 1000.0})
        db.call_c_method("employee", "recompute")
        t0 = db.now
        db.tick(10)
        db.create_object("employee", {"salary": 3000.0})
        db.call_c_method("employee", "recompute")
        history = db.get_class("employee").history.get_c_attr("avg-salary")
        assert history.at(t0) == 1000.0
        assert history.at(db.now) == 2000.0
        # The class-level history is itself a temporal value: the past
        # average remains queryable.
        assert history.at(t0 + 5) == 1000.0

    def test_history_record_inhabits_metaclass_type(self, stats_db):
        """The class history (including the temporal c-attribute) is a
        legal value of the metaclass's structural type."""
        from repro.types.extension import in_extension

        db = stats_db
        db.create_object("employee", {"salary": 1000.0})
        db.call_c_method("employee", "recompute")
        db.tick(5)
        metaclass = db.get_metaclass("m-employee")
        record = db.get_class("employee").history.as_record()
        assert in_extension(
            record, metaclass.structural_type(), db.now, db, now=db.now
        )

    def test_static_class_counterpart(self, empty_db):
        empty_db.define_class(
            "plain",
            attributes=[("h", "temporal(integer)")],
            c_attributes=[("count", "integer")],
            c_attr_values={"count": 0},
        )
        cls = empty_db.get_class("plain")
        assert cls.kind is ClassKind.STATIC
        # ...even though its INSTANCES are historical objects.
        assert cls.instances_are_historical()
