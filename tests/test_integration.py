"""End-to-end integration: the whole model working together.

A single long-running scenario exercising every subsystem at once --
schema with multiple hierarchies, inheritance with refinement,
migrations, deletions, the query language, constraints, triggers,
transactions, persistence -- with invariant checks after every phase.
"""

import pytest

from repro import TemporalDatabase, Transaction, check_database
from repro.constraints import ConstraintSet, NonDecreasing
from repro.database.events import EventKind
from repro.errors import ConstraintError
from repro.database.persistence import database_from_json, database_to_json
from repro.model_functions import h_state, m_lifespan, pi, snapshot
from repro.objects.consistency import is_consistent
from repro.query import attr, parse_query, evaluate, select
from repro.schema.attribute import Attribute
from repro.triggers import Trigger, TriggerManager, on_update
from repro.triggers.triggers import WriteSpec
from repro.values.structure import values_equal


def assert_clean(db):
    report = check_database(db)
    assert report.ok, report.all_violations()


def test_company_lifecycle():
    db = TemporalDatabase()

    # Phase 1: schema. Two hierarchies (staff and projects).
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[
            ("salary", "temporal(real)"),
            ("dept", "string"),
            ("grade", "temporal(integer)"),
        ],
    )
    db.define_class(
        "manager",
        parents=["employee"],
        attributes=[
            ("dependents", "temporal(set-of(person))"),
            ("officialcar", "string"),
        ],
    )
    db.define_class(
        "project",
        attributes=[
            Attribute("name", "temporal(string)", immutable=True),
            ("objective", "string"),
            ("lead", "temporal(employee)"),
            ("team", "temporal(set-of(employee))"),
        ],
    )
    assert_clean(db)

    # Phase 2: hires and a project.
    db.tick(10)
    staff = [
        db.create_object(
            "employee",
            {"name": f"E{i}", "salary": 1000.0 + 100 * i, "dept": "R",
             "grade": 1},
        )
        for i in range(6)
    ]
    apollo = db.create_object(
        "project",
        {
            "name": "Apollo",
            "objective": "ship",
            "lead": staff[0],
            "team": frozenset(staff[:3]),
        },
    )
    assert_clean(db)

    # Phase 3: constraints + triggers guard the payroll.
    rules = ConstraintSet().add(NonDecreasing("employee", "salary"))
    rules.enforce(db)
    promotions = []
    triggers = TriggerManager(db)
    triggers.register(
        Trigger(
            "auto-grade",
            on_update("employee", "salary"),
            predicate=attr("salary") >= 2000.0,
            action=lambda d, e: d.update_attribute(e.oid, "grade", 2),
            writes=(WriteSpec(EventKind.UPDATE, "employee", "grade"),),
        )
    )
    triggers.register(
        Trigger(
            "log-grades",
            on_update("employee", "grade"),
            action=lambda d, e: promotions.append(e.oid),
        )
    )
    assert triggers.termination_report()["terminates"]

    db.tick(10)  # 20
    db.update_attribute(staff[1], "salary", 2500.0)  # fires the cascade
    assert promotions == [staff[1]]
    with pytest.raises(ConstraintError):
        with Transaction(db):
            db.update_attribute(staff[1], "salary", 100.0)
    assert db.get_object(staff[1]).value["salary"].at(db.now) == 2500.0
    assert_clean(db)

    # Phase 4: promotion to manager, project lead change.
    db.tick(10)  # 30
    db.migrate(
        staff[1],
        "manager",
        {"officialcar": "M-1", "dependents": frozenset()},
    )
    db.update_attribute(apollo, "lead", staff[1])
    assert staff[1] in pi(db, "manager", db.now)
    assert_clean(db)

    # Phase 5: time-travel queries across the whole story.
    db.tick(10)  # 40
    q = evaluate(db, parse_query(
        "select employee where salary >= 2000.0 sometime"
    ))
    assert staff[1] in q
    rich_at_15 = evaluate(db, parse_query(
        "select employee where salary >= 2000.0 at 15"
    ))
    assert rich_at_15 == []
    assert values_equal(
        h_state(db, staff[1], 15),
        h_state(db, staff[1], 12),
    )
    assert m_lifespan(db, staff[1], "manager").start() == 30

    # Phase 6: demotion, deletion, and the retained history.
    db.tick(10)  # 50
    rules.unenforce(db)
    triggers.detach()
    db.migrate(staff[1], "employee")
    assert "dependents" in db.get_object(staff[1]).retained
    leaver = staff[5]
    db.update_attribute(
        apollo, "team", frozenset(staff[:3])
    )  # team never contained staff[5]
    db.tick()
    db.delete_object(leaver)
    assert not db.get_object(leaver).alive_at(db.now, db.now)
    assert_clean(db)

    # Phase 7: every object is Def-5.5 consistent; persistence
    # round-trips; the clone answers identically.
    for oid in staff[:5] + [apollo]:
        assert is_consistent(db.get_object(oid), db, db, db.now)
    clone = database_from_json(database_to_json(db))
    assert_clean(clone)
    assert values_equal(
        snapshot(clone, apollo, clone.now), snapshot(db, apollo, db.now)
    )
    assert pi(clone, "employee", 25) == pi(db, "employee", 25)
    assert (
        select("employee").where(attr("grade") == 2).run(clone)
        == select("employee").where(attr("grade") == 2).run(db)
    )
