"""The engine: schema and object operations."""

import pytest

from repro.errors import (
    DuplicateClassError,
    LifespanError,
    MigrationError,
    ReferentialIntegrityError,
    SchemaError,
    TypeCheckError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.database.database import TemporalDatabase
from repro.schema.attribute import Attribute
from repro.schema.method import MethodSignature
from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import NULL
from repro.values.oid import OID


class TestSchemaOps:
    def test_define_class(self, empty_db):
        cls = empty_db.define_class("p", attributes=[("x", "integer")])
        assert empty_db.get_class("p") is cls
        assert empty_db.known_class("p")
        assert "p" in empty_db.class_names()

    def test_duplicate_class(self, empty_db):
        empty_db.define_class("p")
        with pytest.raises(DuplicateClassError):
            empty_db.define_class("p")

    def test_unknown_parent(self, empty_db):
        with pytest.raises(UnknownClassError):
            empty_db.define_class("q", parents=["ghost"])

    def test_unknown_class_in_attribute_domain(self, empty_db):
        with pytest.raises(UnknownClassError):
            empty_db.define_class("q", attributes=[("r", "ghost")])
        # ...and the failed definition left no trace in the ISA DAG.
        empty_db.define_class("q", attributes=[("x", "integer")])

    def test_self_reference_allowed(self, empty_db):
        # project's subproject: temporal(project) (Example 4.1).
        empty_db.define_class(
            "project", attributes=[("sub", "temporal(project)")]
        )

    def test_inherited_attributes_merged(self, empty_db):
        empty_db.define_class("a", attributes=[("x", "integer")])
        cls = empty_db.define_class(
            "b", parents=["a"], attributes=[("y", "string")]
        )
        assert set(cls.attributes) == {"x", "y"}

    def test_bad_refinement_rejected_and_rolled_back(self, empty_db):
        empty_db.define_class("a", attributes=[("x", "integer")])
        with pytest.raises(Exception):
            empty_db.define_class(
                "b", parents=["a"], attributes=[("x", "string")]
            )
        assert "b" not in empty_db.isa
        # Can retry with a correct definition.
        empty_db.define_class(
            "b", parents=["a"], attributes=[("x", "temporal(integer)")]
        )

    def test_metaclass_created(self, empty_db):
        empty_db.define_class("p", c_attributes=[("n", "integer")])
        mc = empty_db.get_metaclass("m-p")
        assert mc.instance_name == "p"
        assert "n" in mc.attributes

    def test_undeclared_c_attr_value_rejected(self, empty_db):
        with pytest.raises(SchemaError):
            empty_db.define_class("p", c_attr_values={"ghost": 1})
        assert "p" not in empty_db.isa

    def test_drop_class(self, empty_db):
        empty_db.define_class("p")
        empty_db.tick(5)
        empty_db.drop_class("p")
        assert not empty_db.get_class("p").is_alive
        with pytest.raises(LifespanError):
            empty_db.create_object("p")

    def test_drop_with_live_subclass_rejected(self, empty_db):
        empty_db.define_class("a")
        empty_db.define_class("b", parents=["a"])
        empty_db.tick()
        with pytest.raises(SchemaError):
            empty_db.drop_class("a")

    def test_drop_with_members_rejected(self, empty_db):
        empty_db.define_class("p", attributes=[("x", "integer")])
        oid = empty_db.create_object("p", {"x": 1})
        empty_db.tick()
        with pytest.raises(SchemaError):
            empty_db.drop_class("p")
        empty_db.delete_object(oid)
        empty_db.drop_class("p")


class TestCreateObject:
    def test_basic(self, empty_db):
        empty_db.define_class(
            "p", attributes=[("x", "integer"), ("h", "temporal(string)")]
        )
        oid = empty_db.create_object("p", {"x": 1, "h": "a"})
        obj = empty_db.get_object(oid)
        assert obj.value["x"] == 1
        assert isinstance(obj.value["h"], TemporalValue)
        assert obj.value["h"].at(empty_db.now) == "a"

    def test_omitted_attributes_are_null(self, empty_db):
        empty_db.define_class(
            "p", attributes=[("x", "integer"), ("h", "temporal(string)")]
        )
        oid = empty_db.create_object("p")
        obj = empty_db.get_object(oid)
        assert obj.value["x"] is NULL
        assert obj.value["h"].at(empty_db.now) is NULL

    def test_unknown_attribute_rejected(self, empty_db):
        empty_db.define_class("p", attributes=[("x", "integer")])
        with pytest.raises(SchemaError):
            empty_db.create_object("p", {"ghost": 1})

    def test_type_checked(self, empty_db):
        empty_db.define_class("p", attributes=[("x", "integer")])
        with pytest.raises(TypeCheckError):
            empty_db.create_object("p", {"x": "not an int"})

    def test_temporal_attr_rejects_prebuilt_history(self, empty_db):
        empty_db.define_class("p", attributes=[("h", "temporal(integer)")])
        with pytest.raises(TypeCheckError):
            empty_db.create_object(
                "p", {"h": TemporalValue.from_items([((0, 5), 1)])}
            )

    def test_static_attr_rejects_temporal_value(self, empty_db):
        empty_db.define_class("p", attributes=[("x", "integer")])
        with pytest.raises(TypeCheckError):
            empty_db.create_object(
                "p", {"x": TemporalValue.from_items([((0, 5), 1)])}
            )

    def test_reference_must_exist(self, empty_db):
        # A dangling oid is already a type error: it is in no extent
        # [[p]]_now (the referential-integrity checker additionally
        # guards deletions and loaded data).
        empty_db.define_class("p", attributes=[("r", "temporal(p)")])
        with pytest.raises((TypeCheckError, ReferentialIntegrityError)):
            empty_db.create_object("p", {"r": OID(99, "p")})

    def test_extents_updated_up_the_hierarchy(self, empty_db):
        empty_db.define_class("a")
        empty_db.define_class("b", parents=["a"])
        oid = empty_db.create_object("b")
        now = empty_db.now
        assert oid in empty_db.pi("a", now)
        assert oid in empty_db.pi("b", now)
        assert oid in empty_db.get_class("b").history.instances_at(now)
        assert oid not in empty_db.get_class("a").history.instances_at(now)

    def test_oid_branding(self, empty_db):
        empty_db.define_class("a")
        empty_db.define_class("b", parents=["a"])
        empty_db.define_class("z")
        b = empty_db.create_object("b")
        z = empty_db.create_object("z")
        assert b.hierarchy == "a"
        assert z.hierarchy == "z"

    def test_unknown_class(self, empty_db):
        with pytest.raises(UnknownClassError):
            empty_db.create_object("ghost")


class TestUpdateAttribute:
    def setup_db(self, db):
        db.define_class(
            "p",
            attributes=[
                ("x", "integer"),
                ("h", "temporal(integer)"),
                Attribute("fixed", "temporal(string)", immutable=True),
            ],
        )
        return db.create_object("p", {"x": 1, "h": 10, "fixed": "F"})

    def test_static_update_replaces(self, empty_db):
        oid = self.setup_db(empty_db)
        empty_db.tick()
        empty_db.update_attribute(oid, "x", 2)
        assert empty_db.get_object(oid).value["x"] == 2

    def test_temporal_update_extends_history(self, empty_db):
        oid = self.setup_db(empty_db)
        created = empty_db.now
        empty_db.tick(5)
        empty_db.update_attribute(oid, "h", 20)
        history = empty_db.get_object(oid).value["h"]
        assert history.at(created) == 10
        assert history.at(empty_db.now) == 20

    def test_immutable_attribute_refuses_change(self, empty_db):
        oid = self.setup_db(empty_db)
        empty_db.tick()
        with pytest.raises(SchemaError):
            empty_db.update_attribute(oid, "fixed", "G")
        # Re-assigning the same value is permitted (constant function).
        empty_db.update_attribute(oid, "fixed", "F")

    def test_type_checked(self, empty_db):
        oid = self.setup_db(empty_db)
        empty_db.tick()
        with pytest.raises(TypeCheckError):
            empty_db.update_attribute(oid, "h", "not an int")

    def test_null_always_allowed(self, empty_db):
        oid = self.setup_db(empty_db)
        empty_db.tick()
        empty_db.update_attribute(oid, "h", NULL)
        assert empty_db.get_object(oid).value["h"].at(empty_db.now) is NULL

    def test_unknown_attribute(self, empty_db):
        oid = self.setup_db(empty_db)
        with pytest.raises(SchemaError):
            empty_db.update_attribute(oid, "ghost", 1)

    def test_dead_object_rejected(self, empty_db):
        oid = self.setup_db(empty_db)
        empty_db.tick()
        empty_db.delete_object(oid)
        with pytest.raises(LifespanError):
            empty_db.update_attribute(oid, "x", 2)


class TestDeleteObject:
    def test_lifespan_ends_before_deletion_tick(self, empty_db):
        empty_db.define_class("p")
        oid = empty_db.create_object("p")
        created = empty_db.now
        empty_db.tick(5)
        empty_db.delete_object(oid)
        obj = empty_db.get_object(oid)
        assert obj.alive_at(created, empty_db.now)
        assert obj.alive_at(empty_db.now - 1, empty_db.now)
        assert not obj.alive_at(empty_db.now, empty_db.now)
        assert oid not in empty_db.pi("p", empty_db.now)
        assert oid in empty_db.pi("p", empty_db.now - 1)

    def test_cannot_delete_in_creation_tick(self, empty_db):
        empty_db.define_class("p")
        oid = empty_db.create_object("p")
        with pytest.raises(LifespanError):
            empty_db.delete_object(oid)

    def test_referenced_object_protected(self, empty_db):
        empty_db.define_class("p", attributes=[("r", "temporal(p)")])
        a = empty_db.create_object("p")
        empty_db.tick()
        b = empty_db.create_object("p", {"r": a})
        empty_db.tick()
        with pytest.raises(ReferentialIntegrityError):
            empty_db.delete_object(a)
        empty_db.delete_object(a, force=True)

    def test_histories_closed(self, empty_db):
        empty_db.define_class("p", attributes=[("h", "temporal(integer)")])
        oid = empty_db.create_object("p", {"h": 1})
        empty_db.tick(5)
        empty_db.delete_object(oid)
        history = empty_db.get_object(oid).value["h"]
        assert not history.has_open_pair()
        assert history.last_instant() == empty_db.now - 1

    def test_unknown_oid(self, empty_db):
        with pytest.raises(UnknownObjectError):
            empty_db.get_object(OID(7))
        with pytest.raises(UnknownObjectError):
            empty_db.delete_object(OID(7))


class TestMethods:
    def test_call_method(self, empty_db):
        def raise_by(db, oid, receiver, amount):
            current = receiver["balance"]
            db.update_attribute(oid, "balance", current + amount)
            return current + amount

        empty_db.define_class(
            "account",
            attributes=[("balance", "temporal(real)")],
            methods=[
                MethodSignature(
                    "raise_by", ("real",), "real", body=raise_by
                )
            ],
        )
        oid = empty_db.create_object("account", {"balance": 10.0})
        empty_db.tick()
        result = empty_db.call_method(oid, "raise_by", 5.0)
        assert result == 15.0
        assert empty_db.get_object(oid).value["balance"].at(
            empty_db.now
        ) == 15.0

    def test_argument_types_checked(self, empty_db):
        empty_db.define_class(
            "account",
            attributes=[("balance", "temporal(real)")],
            methods=[
                MethodSignature(
                    "noop", ("real",), "real", body=lambda *a: 0.0
                )
            ],
        )
        oid = empty_db.create_object("account", {"balance": 1.0})
        with pytest.raises(TypeCheckError):
            empty_db.call_method(oid, "noop", "x")
        with pytest.raises(TypeCheckError):
            empty_db.call_method(oid, "noop")

    def test_result_type_checked(self, empty_db):
        empty_db.define_class(
            "account",
            attributes=[("balance", "temporal(real)")],
            methods=[
                MethodSignature(
                    "broken", (), "real", body=lambda *a: "oops"
                )
            ],
        )
        oid = empty_db.create_object("account", {"balance": 1.0})
        with pytest.raises(TypeCheckError):
            empty_db.call_method(oid, "broken")

    def test_time_dependent_receiver(self, empty_db):
        """The time-dependent behaviour extension: the receiver is a
        snapshot at the requested instant."""
        seen = []

        def probe(db, oid, receiver):
            seen.append(receiver.get("h"))
            return 0

        empty_db.define_class(
            "p",
            attributes=[("h", "temporal(integer)")],
            methods=[MethodSignature("probe", (), "integer", body=probe)],
        )
        oid = empty_db.create_object("p", {"h": 1})
        first = empty_db.now
        empty_db.tick(5)
        empty_db.update_attribute(oid, "h", 2)
        empty_db.call_method(oid, "probe")
        empty_db.call_method(oid, "probe", at=first)
        assert seen == [2, 1]

    def test_missing_method(self, empty_db):
        empty_db.define_class("p")
        oid = empty_db.create_object("p")
        with pytest.raises(SchemaError):
            empty_db.call_method(oid, "ghost")


class TestTypeContextProtocol:
    def test_membership_queries(self, staff_db):
        db, names = staff_db
        dan = names["dan"]
        times = db.membership_times("manager", dan)
        assert 30 in times and 59 in times and 60 not in times
        assert db.ever_member("manager", dan)
        assert not db.ever_member("manager", names["pat"])

    def test_classes_of(self, staff_db):
        db, names = staff_db
        assert set(db.classes_of(names["dan"])) == {"person", "employee"}
        assert db.classes_of(OID(999)) == ()

    def test_current_time(self, staff_db):
        db, _ = staff_db
        assert db.current_time == db.now == 70
