"""Atomic update batches with rollback."""

import pytest

from repro.database.transactions import Transaction
from repro.errors import IntegrityError, TransactionError, TypeCheckError


class TestCommit:
    def test_successful_batch(self, staff_db):
        db, names = staff_db
        db.tick()
        with Transaction(db):
            db.update_attribute(names["dan"], "salary", 3000.0)
            db.update_attribute(names["dan"], "dept", "S")
        dan = db.get_object(names["dan"])
        assert dan.value["salary"].at(db.now) == 3000.0
        assert dan.value["dept"] == "S"

    def test_commit_clears_backup(self, staff_db):
        db, _ = staff_db
        txn = Transaction(db).begin()
        assert txn.active
        txn.commit()
        assert not txn.active
        with pytest.raises(TransactionError):
            txn.commit()


class TestRollback:
    def test_exception_rolls_back_everything(self, staff_db):
        db, names = staff_db
        db.tick()
        before = db.get_object(names["dan"]).value["salary"].at(db.now)
        with pytest.raises(TypeCheckError):
            with Transaction(db):
                db.update_attribute(names["dan"], "salary", 9999.0)
                db.update_attribute(names["dan"], "salary", "bad")
        after = db.get_object(names["dan"]).value["salary"].at(db.now)
        assert after == before

    def test_rollback_restores_schema(self, staff_db):
        db, _ = staff_db
        with pytest.raises(RuntimeError):
            with Transaction(db):
                db.define_class("temp", attributes=[("x", "integer")])
                raise RuntimeError("abort")
        assert not db.known_class("temp")
        assert "temp" not in db.isa

    def test_rollback_restores_objects_and_clock(self, staff_db):
        db, names = staff_db
        now_before = db.now
        count_before = len(db)
        with pytest.raises(RuntimeError):
            with Transaction(db):
                db.tick(10)
                db.create_object("person", {"name": "Ghost"})
                raise RuntimeError("abort")
        assert db.now == now_before
        assert len(db) == count_before

    def test_rollback_without_begin(self, staff_db):
        db, _ = staff_db
        with pytest.raises(TransactionError):
            Transaction(db).rollback()

    def test_double_begin_rejected(self, staff_db):
        db, _ = staff_db
        txn = Transaction(db).begin()
        with pytest.raises(TransactionError):
            txn.begin()
        txn.rollback()

    def test_engine_still_consistent_after_rollback(self, staff_db):
        from repro.database.integrity import check_database

        db, names = staff_db
        with pytest.raises(RuntimeError):
            with Transaction(db):
                db.tick()
                db.migrate(names["dan"], "manager", {"officialcar": "M"})
                raise RuntimeError("abort")
        report = check_database(db)
        assert report.ok, report.all_violations()
        # And the engine remains usable.
        db.tick()
        db.update_attribute(names["dan"], "salary", 1234.0)


class TestVerifyingTransaction:
    def test_verify_aborts_on_integrity_violation(self, staff_db):
        db, names = staff_db
        db.tick()
        with pytest.raises(IntegrityError):
            with Transaction(db, verify=True):
                # Bypass the engine API to corrupt state.
                db.get_object(names["dan"]).value["dept"] = 42
        # The corruption was rolled back.
        assert db.get_object(names["dan"]).value["dept"] == "R"

    def test_verify_passes_clean_batch(self, staff_db):
        db, names = staff_db
        db.tick()
        with Transaction(db, verify=True):
            db.update_attribute(names["dan"], "salary", 1500.0)
        assert db.get_object(names["dan"]).value["salary"].at(
            db.now
        ) == 1500.0
