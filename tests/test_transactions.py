"""Atomic update batches with rollback."""

import pytest

from repro.database.transactions import Transaction
from repro.errors import IntegrityError, TransactionError, TypeCheckError


class TestCommit:
    def test_successful_batch(self, staff_db):
        db, names = staff_db
        db.tick()
        with Transaction(db):
            db.update_attribute(names["dan"], "salary", 3000.0)
            db.update_attribute(names["dan"], "dept", "S")
        dan = db.get_object(names["dan"])
        assert dan.value["salary"].at(db.now) == 3000.0
        assert dan.value["dept"] == "S"

    def test_commit_clears_backup(self, staff_db):
        db, _ = staff_db
        txn = Transaction(db).begin()
        assert txn.active
        txn.commit()
        assert not txn.active
        with pytest.raises(TransactionError):
            txn.commit()


class TestRollback:
    def test_exception_rolls_back_everything(self, staff_db):
        db, names = staff_db
        db.tick()
        before = db.get_object(names["dan"]).value["salary"].at(db.now)
        with pytest.raises(TypeCheckError):
            with Transaction(db):
                db.update_attribute(names["dan"], "salary", 9999.0)
                db.update_attribute(names["dan"], "salary", "bad")
        after = db.get_object(names["dan"]).value["salary"].at(db.now)
        assert after == before

    def test_rollback_restores_schema(self, staff_db):
        db, _ = staff_db
        with pytest.raises(RuntimeError):
            with Transaction(db):
                db.define_class("temp", attributes=[("x", "integer")])
                raise RuntimeError("abort")
        assert not db.known_class("temp")
        assert "temp" not in db.isa

    def test_rollback_restores_objects_and_clock(self, staff_db):
        db, names = staff_db
        now_before = db.now
        count_before = len(db)
        with pytest.raises(RuntimeError):
            with Transaction(db):
                db.tick(10)
                db.create_object("person", {"name": "Ghost"})
                raise RuntimeError("abort")
        assert db.now == now_before
        assert len(db) == count_before

    def test_rollback_without_begin(self, staff_db):
        db, _ = staff_db
        with pytest.raises(TransactionError):
            Transaction(db).rollback()

    def test_double_begin_rejected(self, staff_db):
        db, _ = staff_db
        txn = Transaction(db).begin()
        with pytest.raises(TransactionError):
            txn.begin()
        txn.rollback()

    def test_engine_still_consistent_after_rollback(self, staff_db):
        from repro.database.integrity import check_database

        db, names = staff_db
        with pytest.raises(RuntimeError):
            with Transaction(db):
                db.tick()
                db.migrate(names["dan"], "manager", {"officialcar": "M"})
                raise RuntimeError("abort")
        report = check_database(db)
        assert report.ok, report.all_violations()
        # And the engine remains usable.
        db.tick()
        db.update_attribute(names["dan"], "salary", 1234.0)


class TestVerifyingTransaction:
    def test_verify_aborts_on_integrity_violation(self, staff_db):
        db, names = staff_db
        db.tick()
        with pytest.raises(IntegrityError):
            with Transaction(db, verify=True):
                # Bypass the engine API to corrupt state.
                db.get_object(names["dan"]).value["dept"] = 42
        # The corruption was rolled back.
        assert db.get_object(names["dan"]).value["dept"] == "R"

    def test_verify_passes_clean_batch(self, staff_db):
        db, names = staff_db
        db.tick()
        with Transaction(db, verify=True):
            db.update_attribute(names["dan"], "salary", 1500.0)
        assert db.get_object(names["dan"]).value["salary"].at(
            db.now
        ) == 1500.0


class TestRollbackMemoConsistency:
    """Regression: rollback restores a snapshot of the ISA DAG; memoized
    ``is_subtype``/``lub`` answers computed against the in-transaction
    DAG must not survive the rewind (the memo is keyed by ISA object
    identity + generation, and rollback installs a fresh object)."""

    def test_subtype_memo_not_stale_after_rollback(self, staff_db):
        from repro.types.grammar import ObjectType
        from repro.types.subtyping import is_subtype

        db, _ = staff_db
        assert not is_subtype(
            ObjectType("person"), ObjectType("employee"), db.isa
        )
        txn = Transaction(db).begin()
        db.tick()
        db.define_class("intern", parents=["employee"])
        # Warm the memo with answers only true inside the transaction.
        assert is_subtype(
            ObjectType("intern"), ObjectType("person"), db.isa
        )
        txn.rollback()
        assert "intern" not in db.isa.classes()
        assert not is_subtype(
            ObjectType("intern"), ObjectType("person"), db.isa
        )
        # Pre-transaction relations still hold on the restored DAG.
        assert is_subtype(
            ObjectType("manager"), ObjectType("person"), db.isa
        )

    def test_lub_memo_not_stale_after_rollback(self, staff_db):
        from repro.types.grammar import ObjectType
        from repro.types.subtyping import try_lub

        db, _ = staff_db
        txn = Transaction(db).begin()
        db.tick()
        db.define_class("contractor", parents=["person"])
        inside = try_lub(
            [ObjectType("contractor"), ObjectType("employee")], db.isa
        )
        assert inside == ObjectType("person")
        txn.rollback()
        assert (
            try_lub(
                [ObjectType("contractor"), ObjectType("employee")],
                db.isa,
            )
            is None
        )

    def test_extent_caches_not_stale_after_rollback(self, staff_db):
        db, names = staff_db
        before = db.pi("employee", db.now)
        txn = Transaction(db).begin()
        db.tick()
        hired = db.create_object(
            "employee", {"name": "Eve", "salary": 1.0, "dept": "S"}
        )
        assert hired in db.pi("employee", db.now)  # cache warmed
        txn.rollback()
        assert db.pi("employee", db.now) == before
