"""The subtype order <=_T and lub (Definition 6.1)."""

import pytest
from hypothesis import given

from repro.errors import NoLubError
from repro.types.grammar import (
    BOOL,
    BOTTOM,
    INTEGER,
    REAL,
    STRING,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
)
from repro.types.subtyping import (
    EMPTY_ISA,
    is_subtype,
    lub,
    try_lub,
)

from tests.strategies import WORLD_ISA, t_chimera_types

person = ObjectType("person")
employee = ObjectType("employee")
manager = ObjectType("manager")
project = ObjectType("project")


class TestBaseCases:
    def test_reflexive(self):
        assert is_subtype(INTEGER, INTEGER)
        assert is_subtype(SetOf(person), SetOf(person), WORLD_ISA)

    def test_distinct_basics_unrelated(self):
        assert not is_subtype(INTEGER, REAL)
        assert not is_subtype(REAL, INTEGER)
        assert not is_subtype(BOOL, STRING)

    def test_object_types_follow_isa(self):
        assert is_subtype(employee, person, WORLD_ISA)
        assert is_subtype(manager, person, WORLD_ISA)
        assert not is_subtype(person, employee, WORLD_ISA)
        assert not is_subtype(employee, project, WORLD_ISA)

    def test_object_types_without_isa_unrelated(self):
        assert not is_subtype(employee, person, EMPTY_ISA)

    def test_bottom_below_everything(self):
        assert is_subtype(BOTTOM, INTEGER)
        assert is_subtype(BOTTOM, SetOf(person), WORLD_ISA)


class TestStructuralRules:
    def test_set_covariant(self):
        assert is_subtype(SetOf(employee), SetOf(person), WORLD_ISA)
        assert not is_subtype(SetOf(person), SetOf(employee), WORLD_ISA)

    def test_list_covariant(self):
        assert is_subtype(ListOf(employee), ListOf(person), WORLD_ISA)

    def test_record_covariant_same_names(self):
        sub = RecordOf(a=employee, b=INTEGER)
        sup = RecordOf(a=person, b=INTEGER)
        assert is_subtype(sub, sup, WORLD_ISA)
        assert not is_subtype(sup, sub, WORLD_ISA)

    def test_record_different_names_unrelated(self):
        # Definition 6.1 requires the same attribute set (no width
        # subtyping).
        assert not is_subtype(
            RecordOf(a=employee, b=INTEGER),
            RecordOf(a=person),
            WORLD_ISA,
        )

    def test_temporal_covariant(self):
        assert is_subtype(
            TemporalType(employee), TemporalType(person), WORLD_ISA
        )

    def test_temporal_unrelated_to_static(self):
        # temporal(T) <= T is NOT subtyping; it is Rule 6.1 refinement
        # plus coercion (Section 6.1).
        assert not is_subtype(TemporalType(INTEGER), INTEGER)
        assert not is_subtype(INTEGER, TemporalType(INTEGER))

    def test_mixed_constructors_unrelated(self):
        assert not is_subtype(SetOf(INTEGER), ListOf(INTEGER))
        assert not is_subtype(SetOf(INTEGER), INTEGER)

    def test_deep_nesting(self):
        sub = SetOf(RecordOf(x=ListOf(manager)))
        sup = SetOf(RecordOf(x=ListOf(person)))
        assert is_subtype(sub, sup, WORLD_ISA)


class TestPosetLaws:
    @given(t_chimera_types())
    def test_reflexivity(self, t):
        assert is_subtype(t, t, WORLD_ISA)

    @given(t_chimera_types(), t_chimera_types())
    def test_antisymmetry(self, a, b):
        if is_subtype(a, b, WORLD_ISA) and is_subtype(b, a, WORLD_ISA):
            assert a == b

    @given(t_chimera_types(), t_chimera_types(), t_chimera_types())
    def test_transitivity(self, a, b, c):
        if is_subtype(a, b, WORLD_ISA) and is_subtype(b, c, WORLD_ISA):
            assert is_subtype(a, c, WORLD_ISA)


class TestLub:
    def test_same_type(self):
        assert lub([INTEGER, INTEGER]) == INTEGER

    def test_classes(self):
        assert lub([employee, manager], WORLD_ISA) == employee
        assert lub([employee, person], WORLD_ISA) == person

    def test_unrelated_classes_no_lub(self):
        with pytest.raises(NoLubError):
            lub([person, project], WORLD_ISA)
        assert try_lub([person, project], WORLD_ISA) is None

    def test_unrelated_basics_no_lub(self):
        with pytest.raises(NoLubError):
            lub([INTEGER, STRING])

    def test_structural(self):
        assert lub([SetOf(manager), SetOf(employee)], WORLD_ISA) == SetOf(
            employee
        )
        assert lub(
            [RecordOf(a=manager), RecordOf(a=person)], WORLD_ISA
        ) == RecordOf(a=person)

    def test_temporal(self):
        assert lub(
            [TemporalType(manager), TemporalType(person)], WORLD_ISA
        ) == TemporalType(person)

    def test_bottom_is_unit(self):
        assert lub([BOTTOM, INTEGER]) == INTEGER
        assert lub([SetOf(BOTTOM), SetOf(person)], WORLD_ISA) == SetOf(person)

    def test_empty_set_of_types_rejected(self):
        with pytest.raises(NoLubError):
            lub([])

    def test_singleton(self):
        assert lub([SetOf(INTEGER)]) == SetOf(INTEGER)

    @given(t_chimera_types())
    def test_lub_with_self(self, t):
        assert lub([t, t], WORLD_ISA) == t

    @given(t_chimera_types(), t_chimera_types())
    def test_lub_is_upper_bound(self, a, b):
        result = try_lub([a, b], WORLD_ISA)
        if result is not None:
            assert is_subtype(a, result, WORLD_ISA)
            assert is_subtype(b, result, WORLD_ISA)

    @given(t_chimera_types(), t_chimera_types())
    def test_lub_commutative(self, a, b):
        assert try_lub([a, b], WORLD_ISA) == try_lub([b, a], WORLD_ISA)

    @given(t_chimera_types(), t_chimera_types())
    def test_subtype_implies_lub_is_super(self, a, b):
        if is_subtype(a, b, WORLD_ISA):
            assert try_lub([a, b], WORLD_ISA) == b
