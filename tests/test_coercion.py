"""Substitutability through coercion (Section 6.1)."""

import pytest

from repro.errors import MigrationError, UnknownAttributeError
from repro.inheritance.coercion import as_member_of, coerce_attribute_value
from repro.temporal.temporalvalue import TemporalValue
from repro.types.grammar import INTEGER, REAL, TemporalType
from repro.values.null import NULL
from repro.values.records import RecordValue
from repro.values.structure import values_equal


class TestCoerceAttributeValue:
    def test_temporal_to_static_snapshot(self):
        """The coercion is o.v.a(now) -- the current value."""
        history = TemporalValue.from_items([((0, 5), 1), ((6, 20), 2)])
        assert coerce_attribute_value(history, INTEGER, now=10) == 2
        assert coerce_attribute_value(history, INTEGER, now=3) == 1

    def test_undefined_now_coerces_to_null(self):
        history = TemporalValue.from_items([((0, 5), 1)])
        assert coerce_attribute_value(history, INTEGER, now=10) is NULL

    def test_temporal_to_temporal_passthrough(self):
        history = TemporalValue.from_items([((0, 5), 1)])
        out = coerce_attribute_value(history, TemporalType(INTEGER), now=3)
        assert out is history

    def test_static_passthrough(self):
        assert coerce_attribute_value(7, INTEGER, now=3) == 7


class TestViewAs:
    def test_refined_attribute_coerced(self, empty_db):
        """A subclass refines a static attribute into a temporal one;
        viewing an instance at the superclass coerces with snapshot."""
        db = empty_db
        db.define_class("account", attributes=[("balance", "real")])
        db.define_class(
            "audited",
            parents=["account"],
            attributes=[("balance", "temporal(real)")],
        )
        oid = db.create_object("audited", {"balance": 10.0})
        db.tick(5)
        db.update_attribute(oid, "balance", 20.0)
        view = db.view_as(oid, "account")
        assert values_equal(view, RecordValue(balance=20.0))
        # The history is intact on the object itself.
        assert db.get_object(oid).value["balance"].at(0) == 10.0

    def test_view_projects_away_sub_attributes(self, staff_db):
        db, names = staff_db
        db.migrate(names["dan"], "manager", {"officialcar": "M-2"})
        view = db.view_as(names["dan"], "employee")
        assert set(view.names) == {"name", "salary", "dept"}
        # salary is temporal in employee too: passed through.
        assert view["salary"].at(40) == 2000.0

    def test_view_as_person(self, staff_db):
        db, names = staff_db
        view = db.view_as(names["dan"], "person")
        assert set(view.names) == {"name"}

    def test_not_a_member_rejected(self, staff_db):
        db, names = staff_db
        with pytest.raises(MigrationError):
            db.view_as(names["pat"], "employee")

    def test_missing_attribute_rejected(self, staff_db):
        db, names = staff_db
        dan = db.get_object(names["dan"])
        del dan.value["name"]
        with pytest.raises(UnknownAttributeError):
            as_member_of(dan, db.get_class("person"), db.now)
