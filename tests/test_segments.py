"""The cold-segment tier: spill, paged reads, compaction, page cache.

Every test drives the real checkpoint path (``db.checkpoint()``) on a
:class:`SimulatedFS` with the spill thresholds lowered, then checks the
segment-backed values against a plain in-memory oracle built from the
identical workload with the tier ablated.
"""

import copy
import json
import struct

import pytest

from repro.database import pagecache, segments
from repro.database.database import TemporalDatabase
from repro.database.pagecache import PAGE_CACHE
from repro.database.recovery import JOURNAL_NAME, recover
from repro.database.segments import (
    SEGMENT_MAGIC,
    SegmentedTemporalValue,
    SegmentStore,
    _frame,
    _unframe,
    segment_name,
)
from repro.database.transactions import Transaction
from repro.database.wal import Journal
from repro.errors import SegmentError
from repro.faults.fs import SimulatedFS
from repro.temporal.temporalvalue import TemporalValue

DB_DIR = "/db"


@pytest.fixture(autouse=True)
def small_pages(monkeypatch):
    """Low thresholds so short test workloads spill, plus a clean cache."""
    monkeypatch.setattr(segments, "SPILL_MIN_PAIRS", 4)
    monkeypatch.setattr(segments, "HOT_TAIL_PAIRS", 2)
    monkeypatch.setattr(segments, "PAGE_PAIRS", 3)
    PAGE_CACHE.clear()
    PAGE_CACHE.set_budget(pagecache.DEFAULT_BUDGET)
    yield
    PAGE_CACHE.clear()
    PAGE_CACHE.set_budget(pagecache.DEFAULT_BUDGET)


def fresh(fs=None, directory=DB_DIR):
    fs = fs or SimulatedFS()
    journal = Journal(f"{directory}/{JOURNAL_NAME}", fs=fs, sync="always")
    return TemporalDatabase(journal=journal), fs


def build(db, updates=20):
    db.define_class(
        "person",
        attributes=[("name", "string"), ("salary", "temporal(int)")],
    )
    oid = db.create_object("person", {"name": "Ann", "salary": 0})
    for i in range(1, updates):
        db.tick(1)
        db.update_attribute(oid, "salary", i)
    return oid


def seg_files(fs, directory=DB_DIR):
    return [n for n in segments.list_segments(fs, directory) if n.endswith(".seg")]


class TestFraming:
    def test_roundtrip(self):
        body = b'{"k": [1, 2, 3]}'
        assert _unframe(_frame(body), "t") == body

    def test_rejects_corruption(self):
        framed = bytearray(_frame(b"payload"))
        framed[-2] ^= 0x40
        with pytest.raises(SegmentError, match="CRC"):
            _unframe(bytes(framed), "t")

    def test_rejects_truncation_and_trailing_garbage(self):
        framed = _frame(b"payload")
        with pytest.raises(SegmentError):
            _unframe(framed[:-3], "t")
        with pytest.raises(SegmentError):
            _unframe(framed + b"xx", "t")
        with pytest.raises(SegmentError, match="header"):
            _unframe(b"\x01", "t")


class TestSpill:
    def test_checkpoint_spills_and_reads_match_oracle(self):
        db, fs = fresh()
        oid = build(db)
        with segments.disabled():
            odb, _ = fresh()
            ooid = build(odb)
        oracle = odb._objects[ooid].value["salary"]
        db.checkpoint()
        value = db._objects[oid].value["salary"]
        assert isinstance(value, SegmentedTemporalValue)
        assert value._runs and len(value._runs) >= 2  # multiple pages
        assert db.segment_values == 1
        assert value == oracle and oracle == value
        assert value.pairs() == oracle.pairs()
        assert list(value.values()) == list(oracle.values())
        assert len(value) == len(oracle)
        for t in range(0, oracle.last_instant(db.now) + 1):
            assert value.get(t, None) == oracle.get(t, None), t
            assert value.defined_at(t) == oracle.defined_at(t), t

    def test_short_history_stays_resident(self, monkeypatch):
        monkeypatch.setattr(segments, "SPILL_MIN_PAIRS", 64)
        db, fs = fresh()
        oid = build(db, updates=5)
        db.checkpoint()
        value = db._objects[oid].value["salary"]
        assert not isinstance(value, SegmentedTemporalValue)
        assert not seg_files(fs)
        assert db.segment_values == 0

    def test_open_pair_and_writes_stay_hot(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        value = db._objects[oid].value["salary"]
        runs_before = value._runs
        misses_before = PAGE_CACHE.stats()["misses"]
        db.tick(1)
        db.update_attribute(oid, "salary", 777)
        value = db._objects[oid].value["salary"]
        assert value.at(db.now) == 777
        # Updating the open tail never faults a cold page in.
        assert value._runs == runs_before
        assert PAGE_CACHE.stats()["misses"] == misses_before

    def test_static_attributes_never_spill(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        name = db._objects[oid].value["name"]
        assert not isinstance(name, SegmentedTemporalValue)


class TestCompaction:
    def test_each_generation_replaces_the_previous(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        first = seg_files(fs)
        assert len(first) == 1
        for i in range(20, 40):
            db.tick(1)
            db.update_attribute(oid, "salary", i)
        db.checkpoint()
        second = seg_files(fs)
        assert len(second) == 1 and second != first
        with segments.disabled():
            odb, _ = fresh()
            ooid = build(odb, updates=40)
        oracle = odb._objects[ooid].value["salary"]
        assert db._objects[oid].value["salary"] == oracle

    def test_checkpoint_without_spills_leaves_no_file(self):
        db, fs = fresh()
        db.define_class("person", attributes=[("name", "string")])
        db.create_object("person", {"name": "Ann"})
        db.checkpoint()
        assert not seg_files(fs)


class TestRecovery:
    def test_recovery_restores_segment_backed_values(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        recovered, report = recover(DB_DIR, fs=fs)
        assert report.ok
        value = recovered._objects[oid].value["salary"]
        assert isinstance(value, SegmentedTemporalValue)
        assert value == db._objects[oid].value["salary"]
        assert recovered.segment_values == 1

    def test_corrupt_segment_demotes_checkpoint(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        name = seg_files(fs)[0]
        raw = bytearray(fs.read(f"{DB_DIR}/{name}"))
        raw[len(SEGMENT_MAGIC) + 12] ^= 0x10  # inside the first page body
        fs.write(f"{DB_DIR}/{name}", bytes(raw))
        fs.fsync(f"{DB_DIR}/{name}")
        recovered, report = recover(DB_DIR, fs=fs)
        assert report.corrupt_checkpoints

    def test_corrupt_segment_falls_back_to_older_generation(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        # Preserve generation A before the next checkpoint deletes it.
        gen_a = {
            n: fs.read(f"{DB_DIR}/{n}")
            for n in fs.listdir(DB_DIR)
            if n.startswith(("checkpoint-", "segments-"))
        }
        with segments.disabled():
            odb, _ = fresh()
            ooid = build(odb)
        oracle_a = odb._objects[ooid].value["salary"]
        for i in range(20, 40):
            db.tick(1)
            db.update_attribute(oid, "salary", i)
        db.checkpoint()
        # Resurrect generation A, corrupt generation B's segment.
        for n, data in gen_a.items():
            fs.write(f"{DB_DIR}/{n}", data)
            fs.fsync(f"{DB_DIR}/{n}")
        name_b = segment_name(
            max(
                int(n[len("segments-"):-len(".seg")])
                for n in seg_files(fs)
            )
        )
        raw = bytearray(fs.read(f"{DB_DIR}/{name_b}"))
        raw[-4] ^= 0x01  # corrupt the footer-offset trailer
        fs.write(f"{DB_DIR}/{name_b}", bytes(raw))
        fs.fsync(f"{DB_DIR}/{name_b}")
        recovered, report = recover(DB_DIR, fs=fs)
        assert report.corrupt_checkpoints
        assert recovered is not None
        assert recovered._objects[oid].value["salary"] == oracle_a

    def test_verify_walks_every_page(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        name = seg_files(fs)[0]
        store = SegmentStore(fs, DB_DIR)
        store.verify(name)  # healthy file passes
        raw = bytearray(fs.read(f"{DB_DIR}/{name}"))
        raw[len(SEGMENT_MAGIC) + 20] ^= 0x02
        fs.write(f"{DB_DIR}/{name}", bytes(raw))
        with pytest.raises(SegmentError):
            SegmentStore(fs, DB_DIR).verify(name)

    def test_verify_rejects_bad_magic_and_missing_file(self):
        fs = SimulatedFS()
        store = SegmentStore(fs, DB_DIR)
        with pytest.raises(SegmentError, match="missing"):
            store.verify(segment_name(1))
        fs.write(f"{DB_DIR}/{segment_name(1)}", b"NOTMAGIC" + b"\0" * 32)
        with pytest.raises(SegmentError, match="magic"):
            SegmentStore(fs, DB_DIR).verify(segment_name(1))


class TestAblation:
    def test_disabled_tier_inlines_everything(self):
        with segments.disabled():
            db, fs = fresh()
            oid = build(db)
            db.checkpoint()
            assert not seg_files(fs)
            value = db._objects[oid].value["salary"]
            assert not isinstance(value, SegmentedTemporalValue)
            recovered, report = recover(DB_DIR, fs=fs)
            assert report.ok
            assert recovered._objects[oid].value["salary"] == value

    def test_set_enabled_returns_previous(self):
        previous = segments.set_enabled(False)
        try:
            assert previous is True
            assert segments.is_enabled is False
        finally:
            segments.set_enabled(previous)


class TestPageCache:
    def test_sub_page_budget_pins_exactly_one_page(self):
        db, fs = fresh(directory=DB_DIR)
        oid = build(db, updates=30)
        db.checkpoint()
        pagecache.set_budget(1)
        value = db._objects[oid].value["salary"]
        assert len(value._runs) >= 3
        assert value.pairs()  # streams every cold page
        stats = pagecache.stats()
        assert stats["pages"] == 1
        assert stats["evictions"] >= len(value._runs) - 1
        assert stats["resident_bytes"] > 1  # the pinned page survives

    def test_repeat_reads_hit_the_cache(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        value = db._objects[oid].value["salary"]
        value.at(0)
        before = pagecache.stats()
        value.at(0)
        value.at(1)
        after = pagecache.stats()
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_budget_bounds_resident_bytes(self):
        db, fs = fresh()
        oid = build(db, updates=60)
        db.checkpoint()
        value = db._objects[oid].value["salary"]
        page_bytes = max(run.length for run in value._runs)
        pagecache.set_budget(page_bytes * 2)
        assert value.pairs()
        assert pagecache.stats()["resident_bytes"] <= page_bytes * 2


class TestHydration:
    def test_retroactive_correction_hydrates(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        db.correct_attribute(oid, "salary", 0, 0, 999)
        value = db._objects[oid].value["salary"]
        assert not value._runs  # hydrated back to a plain pair list
        assert value.at(0) == 999

    def test_hydration_preserves_history(self):
        db, fs = fresh()
        oid = build(db)
        with segments.disabled():
            odb, _ = fresh()
            ooid = build(odb)
        oracle = odb._objects[ooid].value["salary"]
        db.checkpoint()
        value = db._objects[oid].value["salary"]
        before = value.pairs()
        _ = value._pairs  # force the hydration fallback directly
        assert not value._runs
        assert value.pairs() == before
        assert value == oracle

    def test_next_checkpoint_respills_hydrated_value(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        db.correct_attribute(oid, "salary", 0, 0, 999)
        db.checkpoint()
        value = db._objects[oid].value["salary"]
        assert isinstance(value, SegmentedTemporalValue) and value._runs
        assert value.at(0) == 999


class TestTransactions:
    def test_rollback_leaves_segmented_value_intact(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        before = db._objects[oid].value["salary"].pairs()
        txn = Transaction(db).begin()
        db.tick(1)
        db.update_attribute(oid, "salary", 424242)
        txn.rollback()
        value = db._objects[oid].value["salary"]
        assert value.pairs() == before

    def test_deepcopy_shares_cold_state(self):
        db, fs = fresh()
        oid = build(db)
        db.checkpoint()
        value = db._objects[oid].value["salary"]
        clone = copy.deepcopy(value)
        assert clone == value
        assert clone._reader is value._reader
        assert clone._runs is value._runs
        assert clone._tail() is not value._tail()


class TestPlannerPenalty:
    def test_cold_penalty_scales_with_cold_fraction(self):
        from repro.query.planner import COLD_READ_PENALTY, _cold_penalty

        db, fs = fresh()
        oid = build(db)
        assert _cold_penalty(db) == 0.0
        db.checkpoint()
        penalty = _cold_penalty(db)
        assert 0.0 < penalty <= COLD_READ_PENALTY
