"""Database events and the describe tooling."""

import pytest

from repro.database.events import Event, EventKind
from repro.schema.method import MethodSignature
from repro.tools import describe_class, describe_database, describe_object
from repro.errors import SchemaError, TypeCheckError


class TestEvents:
    def test_create_event(self, empty_db):
        db = empty_db
        db.define_class("p", attributes=[("x", "integer")])
        seen = []
        db.subscribe(lambda d, e: seen.append(e))
        oid = db.create_object("p", {"x": 1})
        assert len(seen) == 1
        event = seen[0]
        assert event.kind is EventKind.CREATE
        assert event.oid == oid and event.class_name == "p"
        assert event.at == db.now

    def test_update_event_carries_old_and_new(self, empty_db):
        db = empty_db
        db.define_class(
            "p", attributes=[("x", "integer"), ("h", "temporal(integer)")]
        )
        oid = db.create_object("p", {"x": 1, "h": 10})
        seen = []
        db.subscribe(lambda d, e: seen.append(e))
        db.tick()
        db.update_attribute(oid, "x", 2)
        db.update_attribute(oid, "h", 20)
        assert [(e.attribute, e.old_value, e.new_value) for e in seen] == [
            ("x", 1, 2),
            ("h", 10, 20),
        ]

    def test_migrate_and_delete_events(self, staff_db):
        db, names = staff_db
        seen = []
        db.subscribe(lambda d, e: seen.append(e))
        db.tick()
        db.migrate(names["dan"], "manager", {"officialcar": "M"})
        db.tick()
        db.delete_object(names["pat"])
        kinds = [e.kind for e in seen]
        assert kinds == [EventKind.MIGRATE, EventKind.DELETE]
        assert seen[0].from_class == "employee"
        assert seen[0].class_name == "manager"

    def test_unsubscribe(self, empty_db):
        db = empty_db
        db.define_class("p")
        seen = []
        callback = lambda d, e: seen.append(e)  # noqa: E731
        db.subscribe(callback)
        db.create_object("p")
        db.unsubscribe(callback)
        db.create_object("p")
        assert len(seen) == 1

    def test_event_repr(self):
        from repro.values.oid import OID

        event = Event(
            EventKind.UPDATE, 5, OID(1), "p",
            attribute="x", old_value=1, new_value=2,
        )
        assert "x: 1 -> 2" in repr(event)


class TestSubscriberIsolation:
    """A raising observer must not prevent the others from running."""

    def make(self, db):
        db.define_class("p", attributes=[("x", "integer")])
        return db

    def test_all_observers_run_despite_failure(self, empty_db):
        db = self.make(empty_db)
        seen = []
        db.subscribe(lambda d, e: (_ for _ in ()).throw(RuntimeError("a")))
        db.subscribe(lambda d, e: seen.append(e))
        with pytest.raises(RuntimeError, match="a"):
            db.create_object("p", {"x": 1})
        assert len(seen) == 1  # the second observer still ran

    def test_single_failure_reraised_as_itself(self, empty_db):
        db = self.make(empty_db)

        def bad(d, e):
            raise ValueError("specific")

        db.subscribe(bad)
        with pytest.raises(ValueError, match="specific"):
            db.create_object("p", {"x": 1})

    def test_multiple_failures_aggregated(self, empty_db):
        from repro.errors import SubscriberError

        db = self.make(empty_db)

        def bad1(d, e):
            raise RuntimeError("one")

        def bad2(d, e):
            raise KeyError("two")

        db.subscribe(bad1)
        db.subscribe(bad2)
        with pytest.raises(SubscriberError) as info:
            db.create_object("p", {"x": 1})
        failures = info.value.failures
        assert [type(exc) for _cb, exc in failures] == [
            RuntimeError, KeyError,
        ]
        assert info.value.event.kind is EventKind.CREATE

    def test_continue_policy_logs_and_survives(self, empty_db, caplog):
        db = self.make(empty_db)
        db.on_subscriber_error = "continue"
        seen = []
        db.subscribe(lambda d, e: (_ for _ in ()).throw(RuntimeError("x")))
        db.subscribe(lambda d, e: seen.append(e))
        with caplog.at_level("ERROR", logger="repro.events"):
            oid = db.create_object("p", {"x": 1})
        assert oid in db
        assert len(seen) == 1
        assert any("subscriber" in r.message for r in caplog.records)

    def test_operation_is_durable_despite_observer_failure(self, empty_db):
        """The mutation happened; an observer exception must not make
        the state vanish (after-the-fact enforcement belongs to
        transactions, not to event dispatch)."""
        db = self.make(empty_db)
        db.subscribe(lambda d, e: (_ for _ in ()).throw(RuntimeError()))
        with pytest.raises(RuntimeError):
            db.create_object("p", {"x": 7})
        (obj,) = db.objects()
        assert obj.value["x"] == 7


class TestCMethods:
    def make(self, empty_db):
        def recompute(db, cls):
            extent = cls.history.members_at(db.now)
            cls.history.set_c_attr("count", len(extent), db.now)
            return len(extent)

        db = empty_db
        db.define_class(
            "p",
            attributes=[("x", "integer")],
            c_attributes=[("count", "integer")],
            c_attr_values={"count": 0},
            c_methods=[
                MethodSignature(
                    "recount", (), "integer", body=recompute
                )
            ],
        )
        return db

    def test_c_method_updates_c_attribute(self, empty_db):
        db = self.make(empty_db)
        db.create_object("p", {"x": 1})
        db.create_object("p", {"x": 2})
        assert db.call_c_method("p", "recount") == 2
        assert db.get_class("p").history.get_c_attr("count") == 2

    def test_missing_c_method(self, empty_db):
        db = self.make(empty_db)
        with pytest.raises(SchemaError):
            db.call_c_method("p", "ghost")

    def test_c_method_arity_checked(self, empty_db):
        db = self.make(empty_db)
        with pytest.raises(TypeCheckError):
            db.call_c_method("p", "recount", 1)


class TestDescribe:
    def test_describe_class(self, project_db):
        db, _ = project_db
        text = describe_class(db, "project")
        assert "c        = project" in text
        assert "type     = static" in text
        assert "mc       = m-project" in text
        assert "(name, temporal(string))" in text
        assert "h_type   = record-of(name: string" in text

    def test_describe_object(self, project_db):
        db, names = project_db
        text = describe_object(db, names["i1"])
        assert "lifespan      = [20,now]" in text
        assert "class-history = {<[20,now], 'project'>}" in text
        assert "'IDEA'" in text

    def test_describe_object_with_retained(self, staff_db):
        db, names = staff_db
        text = describe_object(db, names["dan"])
        assert "retained      = (dependents:" in text

    def test_describe_database(self, staff_db):
        db, _ = staff_db
        text = describe_database(db)
        assert "now = 70" in text
        assert "class manager isa employee" in text
        assert "objects: 2 total, 2 alive" in text
