"""Crash-recovery properties under deterministic fault injection.

Each trial runs a randomized workload against a journaled database on
a simulated disk, kills it at a named crash point, recovers from the
durable bytes, and checks the result against the durable-prefix oracle
(weak value equality per Definition 5.10 plus the full integrity
suite).  ``FAULT_TRIALS`` scales the seed matrix (CI runs 200).
"""

import os

import pytest

from repro.database import segments
from repro.database.pagecache import PAGE_CACHE
from repro.faults import CRASH_POINTS, CrashPlan, run_trial, segment_plans

TRIALS = int(os.environ.get("FAULT_TRIALS", "40"))


def _explain(result) -> str:
    return (
        f"seed={result.seed} plan={result.plan.point}"
        f"@{result.plan.occurrence} crashed={result.crashed}: "
        + "; ".join(result.problems)
    )


class TestSeedMatrix:
    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_recovered_database_matches_durable_prefix(self, seed):
        result = run_trial(seed)
        assert result.ok, _explain(result)
        if result.nothing_durable:
            # Legitimate only when the crash predates the first durable
            # byte -- the harness verified the disk really is empty.
            assert result.report.ok is False


class TestEveryCrashPoint:
    @pytest.mark.parametrize(
        "op,mode",
        [(op, mode) for op, modes in CRASH_POINTS.items() for mode in modes],
    )
    def test_each_catalogued_point_is_survivable(self, op, mode):
        # Early occurrences hit the dense append/fsync stream; sparser
        # ops (replace/remove fire only at checkpoints) may simply not
        # trigger, which still exercises the clean-shutdown path.
        for occurrence in (1, 2, 5):
            result = run_trial(
                seed=1000 + occurrence,
                plan=CrashPlan(op, mode, occurrence),
            )
            assert result.ok, _explain(result)


class TestBatchedWorkloads:
    """Torn group-commit writes must drop whole batches, never a prefix."""

    def test_seed_matrix_exercises_batches(self):
        # The randomized workload must actually take the db.batch()
        # branch often enough for the seed matrix to mean anything.
        ran = sum(len(run_trial(seed).batches) for seed in range(TRIALS))
        assert ran >= TRIALS // 2

    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_no_partial_batch_after_recovery(self, seed):
        # run_trial itself asserts the replay boundary never falls
        # inside a batch's LSN range (Def. 5.6 referential integrity
        # after recovery); surface those problems per seed here.
        result = run_trial(seed)
        partial = [p for p in result.problems if "partial batch" in p]
        assert not partial, _explain(result)
        assert result.ok, _explain(result)

    def test_crash_at_group_commit_flush(self):
        # Aim the fault at the append/fsync stream: with batched
        # segments in the workload, later occurrences land on
        # group-commit flushes (the only FS writes a batch performs).
        crashed_after_batches = 0
        for op in ("append", "fsync"):
            for mode in ("torn", "before", "after"):
                if mode == "torn" and op == "fsync":
                    continue
                for occurrence in (5, 12, 25, 40):
                    for seed in range(8):
                        result = run_trial(
                            seed=seed,
                            plan=CrashPlan(op, mode, occurrence),
                        )
                        assert result.ok, _explain(result)
                        if result.crashed and result.batches:
                            crashed_after_batches += 1
        # The grid must actually hit the interesting shape: a crash in
        # a trial whose workload ran at least one batch.
        assert crashed_after_batches >= 5


class TestSegmentCrashes:
    """Crashes aimed at the cold-segment spill protocol.

    With the spill thresholds lowered, mid-run checkpoints in the
    randomized workload spill real cold pages; the path-targeted plans
    then tear, bit-flip, or kill around the ``.seg`` writes, the
    rename, the old-generation cleanup, and the window between a
    durable spill and the journal truncate.  Recovery must still hand
    back the durable-prefix oracle (Definition 5.10 equivalence).
    """

    @pytest.fixture(autouse=True)
    def aggressive_spill(self, monkeypatch):
        monkeypatch.setattr(segments, "SPILL_MIN_PAIRS", 3)
        monkeypatch.setattr(segments, "HOT_TAIL_PAIRS", 1)
        monkeypatch.setattr(segments, "PAGE_PAIRS", 2)
        PAGE_CACHE.clear()
        yield
        PAGE_CACHE.clear()

    #: seeds x plans: at the default 40 trials this is 8 x 27 = 216
    #: experiments; CI's FAULT_TRIALS=200 widens it to 40 x 27.
    SEEDS = range(max(8, TRIALS // 5))

    @pytest.mark.parametrize(
        "plan",
        segment_plans(),
        ids=lambda plan: f"{plan.point}@{plan.occurrence}",
    )
    @pytest.mark.parametrize("seed", SEEDS)
    def test_each_segment_crash_point_is_survivable(self, seed, plan):
        result = run_trial(seed, plan=plan)
        assert result.ok, _explain(result)

    def test_matrix_exercises_spills_and_fires(self):
        # The matrix is only meaningful if checkpoints actually spill
        # and the targeted plans actually kill trials mid-spill.
        crashed = with_checkpoints = 0
        for seed in range(8):
            for plan in segment_plans(max_occurrence=1):
                result = run_trial(seed, plan=plan)
                assert result.ok, _explain(result)
                crashed += result.crashed
                with_checkpoints += bool(result.checkpoints)
        assert crashed >= 10
        assert with_checkpoints >= 12


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        first = run_trial(7)
        second = run_trial(7)
        assert first.plan == second.plan
        assert first.crashed == second.crashed
        assert [op for _lsn, op in first.ops] == [
            op for _lsn, op in second.ops
        ]

    def test_trials_do_crash(self):
        # The matrix is only meaningful if a healthy share of the plans
        # actually fire mid-workload.
        crashed = sum(run_trial(seed).crashed for seed in range(30))
        assert crashed >= 5
