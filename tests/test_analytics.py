"""Derived temporal analytics (repro.tools.analytics)."""

import pytest

from repro.tools.analytics import (
    attribute_average_history,
    attribute_sum_history,
    instance_population_history,
    population_history,
    value_duration,
)
from repro.values.null import NULL


@pytest.fixture
def team(empty_db):
    db = empty_db
    db.define_class(
        "employee", attributes=[("salary", "temporal(real)")]
    )
    a = db.create_object("employee", {"salary": 1000.0})
    db.tick(10)
    b = db.create_object("employee", {"salary": 3000.0})
    db.tick(10)
    db.update_attribute(a, "salary", 2000.0)
    db.tick(10)  # now = 30
    return db, a, b


class TestPopulation:
    def test_population_history(self, team):
        db, a, b = team
        population = population_history(db, "employee")
        assert population.at(5) == 1
        assert population.at(15) == 2
        assert population.at(db.now) == 2

    def test_follows_deletions(self, team):
        db, a, b = team
        db.delete_object(b)
        population = population_history(db, "employee")
        assert population.at(db.now - 1) == 2
        assert population.at(db.now) == 1

    def test_instances_vs_members(self, empty_db):
        db = empty_db
        db.define_class("person", attributes=[("name", "string")])
        db.define_class("employee", parents=["person"])
        db.create_object("employee")
        db.tick()
        assert population_history(db, "person").at(0) == 1
        assert instance_population_history(db, "person").is_empty() or (
            instance_population_history(db, "person").get(0, 0) == 0
        )


class TestAggregates:
    def test_sum_history(self, team):
        db, a, b = team
        total = attribute_sum_history(db, "employee", "salary")
        assert total.at(5) == 1000.0
        assert total.at(15) == 4000.0
        assert total.at(25) == 5000.0

    def test_average_history(self, team):
        db, a, b = team
        average = attribute_average_history(db, "employee", "salary")
        assert average.at(5) == 1000.0
        assert average.at(15) == 2000.0
        assert average.at(25) == 2500.0

    def test_null_contributions_ignored_in_sum(self, team):
        db, a, b = team
        db.update_attribute(a, "salary", NULL)
        db.tick()
        total = attribute_sum_history(db, "employee", "salary")
        assert total.at(db.now) == 3000.0

    def test_migrated_away_stretches_excluded(self, empty_db):
        db = empty_db
        db.define_class("person", attributes=[("name", "string")])
        db.define_class(
            "employee",
            parents=["person"],
            attributes=[("salary", "temporal(real)")],
        )
        oid = db.create_object("employee", {"salary": 1000.0})
        db.tick(10)
        db.migrate(oid, "person")  # leaves employee at t=10
        db.tick(5)
        total = attribute_sum_history(db, "employee", "salary")
        assert total.at(5) == 1000.0
        assert not total.defined_at(12)


class TestValueDuration:
    def test_durations(self, team):
        db, a, b = team
        durations = value_duration(db, a, "salary")
        # 1000.0 held [0,19] = 20 instants; 2000.0 [20,30] = 11.
        assert durations[1000.0] == 20
        assert durations[2000.0] == 11

    def test_null_bucket(self, team):
        db, a, b = team
        db.update_attribute(a, "salary", NULL)
        db.tick(4)
        durations = value_duration(db, a, "salary")
        assert durations[None] == 5

    def test_static_attribute_empty(self, empty_db):
        db = empty_db
        db.define_class("box", attributes=[("label", "string")])
        oid = db.create_object("box", {"label": "x"})
        assert value_duration(db, oid, "label") == {}


from hypothesis import given, settings, strategies as st


class TestAnalyticsAgainstBruteForce:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 300))
    def test_sum_and_population_match_per_instant(self, seed):
        from repro.temporal.temporalvalue import TemporalValue
        from repro.values.null import is_null
        from repro.workloads import WorkloadSpec, build_database

        db = build_database(
            WorkloadSpec(n_objects=4, n_ticks=12, update_rate=0.6,
                         migration_rate=0.2, delete_rate=0.1, seed=seed)
        )
        total = attribute_sum_history(db, "employee", "salary")
        population = population_history(db, "employee")
        cls = db.get_class("employee")
        for t in range(0, db.now + 1):
            members = cls.history.members_at(t)
            assert population.get(t, 0) == len(members)
            expected = 0.0
            defined = False
            for oid in members:
                history = db.get_object(oid).temporal_value("salary")
                if history is None or not history.defined_at(t):
                    continue
                defined = True
                value = history.at(t)
                if not is_null(value):
                    expected += value
            if defined:
                assert total.at(t) == expected, t
            else:
                assert not total.defined_at(t), t
