"""Retroactive corrections: rewriting valid-time history.

Valid time records when facts were true in reality (Section 1.1);
discovering the recorded history was wrong calls for rewriting the
affected stretch -- the operation that distinguishes valid time from
append-only transaction time.  ``correct_attribute`` rewrites one
temporal attribute over one past interval; paired with the bitemporal
log, the pre-correction belief stays queryable.
"""

import pytest

from repro.bitemporal import BitemporalDatabase
from repro.database.integrity import check_database
from repro.errors import (
    InvalidIntervalError,
    LifespanError,
    ReferentialIntegrityError,
    SchemaError,
    TypeCheckError,
)
from repro.objects.consistency import is_consistent
from repro.schema.attribute import Attribute


@pytest.fixture
def ledger(empty_db):
    db = empty_db
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[
            ("salary", "temporal(real)"),
            ("mentor", "temporal(person)"),
            Attribute("badge", "temporal(string)", immutable=True),
            ("dept", "string"),
        ],
    )
    ann = db.create_object(
        "employee",
        {"name": "Ann", "salary": 1000.0, "badge": "B-1", "dept": "R"},
    )
    db.tick(10)
    db.update_attribute(ann, "salary", 2000.0)
    db.tick(10)  # now = 20
    return db, ann


class TestBasicCorrection:
    def test_mid_history_rewrite(self, ledger):
        db, ann = ledger
        db.correct_attribute(ann, "salary", 3, 7, 1500.0)
        history = db.get_object(ann).value["salary"]
        assert history.at(2) == 1000.0
        assert history.at(3) == 1500.0 == history.at(7)
        assert history.at(8) == 1000.0
        assert history.at(db.now) == 2000.0
        assert is_consistent(db.get_object(ann), db, db, db.now)
        assert check_database(db).ok

    def test_correction_spanning_a_change(self, ledger):
        db, ann = ledger
        db.correct_attribute(ann, "salary", 8, 12, 1750.0)
        history = db.get_object(ann).value["salary"]
        assert history.at(7) == 1000.0
        assert history.at(8) == 1750.0 == history.at(12)
        assert history.at(13) == 2000.0

    def test_correction_up_to_now_becomes_current(self, ledger):
        """A correction whose window reaches now makes the corrected
        value current: the function continues with it."""
        db, ann = ledger
        correction_end = db.now
        db.correct_attribute(ann, "salary", 15, correction_end, 3000.0)
        history = db.get_object(ann).value["salary"]
        assert history.at(correction_end) == 3000.0
        db.tick(5)
        assert history.at(db.now) == 3000.0  # still current
        # ...and ordinary updates keep working afterwards.
        db.update_attribute(ann, "salary", 4000.0)
        assert history.at(db.now) == 4000.0
        assert check_database(db).ok

    def test_strictly_past_correction_leaves_current_value(self, ledger):
        db, ann = ledger
        db.correct_attribute(ann, "salary", 12, db.now - 1, 3000.0)
        history = db.get_object(ann).value["salary"]
        assert history.at(db.now - 1) == 3000.0
        assert history.at(db.now) == 2000.0  # present untouched
        db.tick(3)
        assert history.at(db.now) == 2000.0
        assert check_database(db).ok

    def test_retained_history_correctable(self, ledger):
        """After a migration drops the attribute, its retained history
        is still the correction target."""
        db, ann = ledger
        db.migrate(ann, "person")
        db.tick()
        db.correct_attribute(ann, "salary", 3, 7, 1234.0)
        assert db.get_object(ann).retained["salary"].at(5) == 1234.0
        assert check_database(db).ok


class TestCorrectionRules:
    def test_future_rejected(self, ledger):
        db, ann = ledger
        with pytest.raises(LifespanError):
            db.correct_attribute(ann, "salary", 5, db.now + 5, 0.0)

    def test_outside_lifespan_rejected(self, empty_db):
        db = empty_db
        db.define_class("e", attributes=[("v", "temporal(real)")])
        db.tick(10)
        oid = db.create_object("e", {"v": 1.0})
        db.tick(5)
        with pytest.raises(LifespanError):
            db.correct_attribute(oid, "v", 5, 12, 2.0)  # born at 10

    def test_reversed_interval_rejected(self, ledger):
        db, ann = ledger
        with pytest.raises(InvalidIntervalError):
            db.correct_attribute(ann, "salary", 7, 3, 0.0)

    def test_static_attribute_rejected(self, ledger):
        db, ann = ledger
        with pytest.raises(SchemaError):
            db.correct_attribute(ann, "dept", 3, 7, "S")

    def test_immutable_attribute_rejected(self, ledger):
        db, ann = ledger
        with pytest.raises(SchemaError):
            db.correct_attribute(ann, "badge", 3, 7, "B-2")

    def test_type_checked(self, ledger):
        db, ann = ledger
        with pytest.raises(TypeCheckError):
            db.correct_attribute(ann, "salary", 3, 7, "lots")

    def test_reference_must_span_the_interval(self, ledger):
        db, ann = ledger
        late = db.create_object("person", {"name": "Late"})  # born at 20
        # Rejected either as a type error (late is not in [[person]]_3)
        # or as referential-integrity, depending on which check fires.
        with pytest.raises((TypeCheckError, ReferentialIntegrityError)):
            db.correct_attribute(ann, "mentor", 3, 7, late)
        # But a correction inside the referent's lifespan is fine.
        db.tick(5)
        db.correct_attribute(ann, "mentor", 20, 22, late)
        assert db.get_object(ann).value["mentor"].at(21) == late
        assert check_database(db).ok


class TestWithBitemporalLog:
    def test_pre_correction_belief_survives(self):
        bdb = BitemporalDatabase()
        db = bdb.current
        db.define_class("e", attributes=[("v", "temporal(real)")])
        oid = db.create_object("e", {"v": 1.0})
        db.tick(10)
        tt0 = bdb.commit("as recorded")
        db.correct_attribute(oid, "v", 2, 6, 9.0)
        tt1 = bdb.commit("after audit correction")
        # Current belief: corrected.
        assert bdb.as_of(tt1).get_object(oid).value["v"].at(4) == 9.0
        # The belief as stored before the audit: uncorrected.
        assert bdb.as_of(tt0).get_object(oid).value["v"].at(4) == 1.0


class TestMachineRegressions:
    def test_correct_at_now_then_update(self, empty_db):
        """Regression (found by the stateful machine): a correction
        window ending at now must not leave a future-starting open
        pair that blocks the next update."""
        db = empty_db
        db.define_class("e", attributes=[("salary", "temporal(real)")])
        oid = db.create_object("e", {"salary": 1.0})
        db.tick()
        db.correct_attribute(oid, "salary", db.now, db.now, 0.0)
        db.update_attribute(oid, "salary", 5.0)  # used to raise
        assert db.get_object(oid).value["salary"].at(db.now) == 5.0
        assert check_database(db).ok


class TestCorrectionEvents:
    def test_event_emitted(self, ledger):
        from repro.database.events import EventKind

        db, ann = ledger
        seen = []
        db.subscribe(lambda d, e: seen.append(e))
        db.correct_attribute(ann, "salary", 3, 7, 1500.0)
        assert len(seen) == 1
        event = seen[0]
        assert event.kind is EventKind.CORRECT
        assert event.attribute == "salary"
        assert event.window == (3, 7)
        assert event.new_value == 1500.0

    def test_constraints_guard_corrections(self, ledger):
        from repro.constraints import ConstraintSet, NonDecreasing
        from repro.database.transactions import Transaction
        from repro.errors import ConstraintError

        db, ann = ledger
        rules = ConstraintSet().add(NonDecreasing("employee", "salary"))
        rules.enforce(db)
        with pytest.raises(ConstraintError):
            with Transaction(db):
                # A correction introducing a mid-history decrease.
                db.correct_attribute(ann, "salary", 5, 7, 1.0)
        # Rolled back.
        assert db.get_object(ann).value["salary"].at(6) == 1000.0
