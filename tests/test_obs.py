"""The observability layer: spans, histograms, slow-op log, export, CLI.

Covers the span-nesting edge cases the instrumentation must survive --
rollback of a journaled transaction, reads inside a suspended-cache
bulk batch, recovery replay -- plus the disabled path (zero spans
allocated, asserted via the ``obs.spans`` metric), the histogram
bucket/percentile math, the slow-op ring, both export formats, the
``stats``/``trace`` CLI subcommands, and the docs-drift lint
(including its negative case: an orphaned metric name must fail).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs, perf
from repro.database.database import TemporalDatabase
from repro.database.recovery import open_database, recover
from repro.database.transactions import Transaction
from repro.obs.histograms import N_BUCKETS, Histogram, bucket_upper_us
from repro.obs.spans import Span
from repro.query import evaluate, parse_query

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def clean_obs():
    """Tracing on, default threshold, empty registries; restore after."""
    previous_enabled = obs.set_enabled(True)
    previous_threshold = obs.set_slow_threshold_us(10_000)
    obs.reset()
    yield
    obs.reset()
    obs.set_slow_threshold_us(previous_threshold)
    obs.set_enabled(previous_enabled)


def build_db(directory=None):
    """A small two-class population with temporal history."""
    if directory is not None:
        db, _report = open_database(directory)
    else:
        db = TemporalDatabase()
    db.define_class("base", attributes=[("score", "temporal(integer)")])
    db.define_class("derived", parents=["base"])
    oids = [db.create_object("derived", {"score": i}) for i in range(40)]
    for step in range(10):
        db.tick()
        for oid in oids[:: max(step % 5, 1)]:
            db.update_attribute(oid, "score", step)
    return db, oids


class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram("t")
        h.record(0)
        h.record(1)
        h.record(3)
        h.record(100)
        assert h.count == 4
        assert h.total_us == 104
        assert h.max_us == 100
        # 0 -> bucket 0, 1 -> le 1, 3 -> le 3, 100 -> le 127
        assert h.counts[0] == 1
        assert h.counts[1] == 1
        assert h.counts[2] == 1
        assert h.counts[(100).bit_length()] == 1

    def test_quantiles_are_bucket_upper_bounds(self):
        h = Histogram("t")
        for us in range(1, 101):
            h.record(us)
        assert h.quantile_us(0.50) == 63
        assert h.quantile_us(0.95) == 127
        assert h.quantile_us(0.99) == 127
        assert h.quantile_us(0.50) <= h.quantile_us(0.95)

    def test_single_bucket_exact(self):
        h = Histogram("t")
        for _ in range(10):
            h.record(3)
        assert h.quantile_us(0.5) == 3
        assert h.quantile_us(0.99) == 3
        assert h.mean_us == 3.0

    def test_overflow_clamps_to_last_bucket(self):
        h = Histogram("t")
        h.record(2**40)  # ~12 days, far past the last edge
        assert h.counts[N_BUCKETS - 1] == 1
        assert h.quantile_us(0.5) == bucket_upper_us(N_BUCKETS - 1)

    def test_empty_histogram(self):
        h = Histogram("t")
        assert h.quantile_us(0.99) == 0
        assert h.mean_us == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["buckets"] == []

    def test_reset(self):
        h = Histogram("t")
        h.record(5)
        h.reset()
        assert h.count == 0
        assert h.total_us == 0
        assert h.max_us == 0


class TestSpanNesting:
    def test_parent_links_and_tree(self):
        with obs.span("query.evaluate", cls="c") as root:
            assert obs.current_span() is root
            with obs.span("planner.plan") as child:
                assert child.parent is root
                with obs.span("db.extent") as grandchild:
                    assert grandchild.parent is child
        assert obs.current_span() is None
        tree = root.to_dict()
        assert tree["kind"] == "query.evaluate"
        assert tree["labels"] == {"cls": "c"}
        assert tree["children"][0]["kind"] == "planner.plan"
        assert tree["children"][0]["children"][0]["kind"] == "db.extent"

    def test_exit_records_into_histogram(self):
        before = obs.histogram("db.snapshot").count
        with obs.span("db.snapshot"):
            pass
        assert obs.histogram("db.snapshot").count == before + 1

    def test_exception_marks_error_and_unwinds(self):
        with pytest.raises(ValueError):
            with obs.span("batch.flush") as sp:
                with obs.span("wal.append"):
                    raise ValueError("boom")
        assert sp.error == "ValueError"
        assert sp.children[0].error == "ValueError"
        assert obs.current_span() is None

    def test_annotate_merges_labels(self):
        with obs.span("db.extent", cls="c") as sp:
            sp.annotate(path="index", rows=3)
        assert sp.labels == {"cls": "c", "path": "index", "rows": 3}

    def test_sibling_spans(self):
        with obs.span("query.evaluate") as root:
            with obs.span("planner.plan"):
                pass
            with obs.span("planner.execute"):
                pass
        assert [c.kind for c in root.children] == [
            "planner.plan",
            "planner.execute",
        ]


class TestEngineSpans:
    def test_query_produces_nested_tree(self):
        obs.set_slow_threshold_us(0)
        db, _oids = build_db()
        evaluate(db, parse_query("select derived where score > 3"))
        trees = obs.slow_ops()
        roots = [t for t in trees if t["kind"] == "query.evaluate"]
        assert roots, f"no query.evaluate root in {trees}"
        kinds = {child["kind"] for child in roots[-1]["children"]}
        assert "planner.plan" in kinds
        assert "planner.execute" in kinds

    def test_snapshot_span_only_on_cache_miss(self):
        db, oids = build_db()
        db.snapshot_at(oids[0])  # cold: computes, records a span
        count = obs.histogram("db.snapshot").count
        db.snapshot_at(oids[0])  # warm: served from cache, no span
        assert obs.histogram("db.snapshot").count == count

    def test_extent_span_only_on_cache_miss(self):
        db, _oids = build_db()
        db.anchor_extent("derived", 3)
        count = obs.histogram("db.extent").count
        db.anchor_extent("derived", 3)
        assert obs.histogram("db.extent").count == count


class TestRollbackSpans:
    def test_spans_survive_transaction_rollback(self, tmp_path):
        obs.set_slow_threshold_us(0)
        db, oids = build_db(str(tmp_path))
        appends = obs.histogram("wal.append").count
        with pytest.raises(RuntimeError):
            with Transaction(db):
                db.update_attribute(oids[0], "score", 99)
                with obs.span("constraint.check", scope="test"):
                    raise RuntimeError("force rollback")
        # The span stack unwound cleanly and the truncated transaction's
        # writes were still measured.
        assert obs.current_span() is None
        assert obs.histogram("wal.append").count > appends
        captured = [
            t for t in obs.slow_ops() if t["kind"] == "constraint.check"
        ]
        assert captured and captured[-1]["error"] == "RuntimeError"
        # The engine still works (and traces) after the rollback.
        db.tick()
        db.update_attribute(oids[0], "score", 7)

    def test_rolled_back_batch_leaves_no_open_span(self, tmp_path):
        db, oids = build_db(str(tmp_path))
        with pytest.raises(RuntimeError):
            with Transaction(db):
                with db.batch():
                    db.update_attribute(oids[0], "score", 50)
                    raise RuntimeError("abort mid-batch")
        assert obs.current_span() is None


class TestBatchSpans:
    def test_mid_batch_reads_trace_the_bypass_path(self, tmp_path):
        db, oids = build_db(str(tmp_path))
        db.snapshot_at(oids[0])
        before = obs.histogram("db.snapshot").count
        with db.batch():
            db.update_attribute(oids[0], "score", 42)
            # Caches are suspended: every read recomputes, so every
            # read is measured.
            db.snapshot_at(oids[0])
            db.snapshot_at(oids[0])
        assert obs.histogram("db.snapshot").count >= before + 2

    def test_batch_flush_tree_contains_group_commit(self, tmp_path):
        obs.set_slow_threshold_us(0)
        db, oids = build_db(str(tmp_path))
        obs.clear_slow_ops()
        with db.batch():
            for oid in oids[:5]:
                db.update_attribute(oid, "score", 77)
        flushes = [t for t in obs.slow_ops() if t["kind"] == "batch.flush"]
        assert flushes
        tree = flushes[-1]
        assert tree["labels"]["ops"] == 5
        appended = [
            c for c in tree.get("children", ())
            if c["kind"] == "wal.append"
        ]
        assert appended and appended[-1]["labels"]["record"] == "batch"


class TestRecoverySpans:
    def test_replay_is_spanned(self, tmp_path):
        obs.set_slow_threshold_us(0)
        build_db(str(tmp_path))
        obs.clear_slow_ops()
        before = obs.histogram("recovery.replay").count
        db, report = recover(str(tmp_path))
        assert report.ok and db is not None
        assert obs.histogram("recovery.replay").count == before + 1
        trees = [
            t for t in obs.slow_ops() if t["kind"] == "recovery.replay"
        ]
        assert trees
        assert trees[-1]["labels"]["applied"] == report.records_applied
        assert trees[-1]["labels"]["applied"] > 0


class TestDisabledPath:
    def test_disabled_creates_zero_spans(self, tmp_path):
        db, oids = build_db(str(tmp_path))
        obs.set_enabled(False)
        spans_before = perf.counters.metric("obs.spans").count
        hists_before = {
            kind: obs.histogram(kind).count for kind in obs.KINDS
        }
        with perf.disabled():  # cache ablation forces every miss path
            db.snapshot_at(oids[0])
            db.anchor_extent("derived", 3)
            evaluate(db, parse_query("select derived where score > 3"))
        db.tick()
        db.update_attribute(oids[0], "score", 9)  # journaled append
        assert perf.counters.metric("obs.spans").count == spans_before
        assert {
            kind: obs.histogram(kind).count for kind in obs.KINDS
        } == hists_before
        assert obs.current_span() is None

    def test_disabled_results_identical(self):
        db, _oids = build_db()
        query = parse_query("select derived where score > 3")
        enabled_results = evaluate(db, query)
        with obs.disabled():
            assert evaluate(db, query) == enabled_results

    def test_repro_no_obs_env(self):
        code = (
            "from repro import obs\n"
            "assert not obs.is_enabled\n"
            "with obs.span('db.snapshot'):\n"
            "    pass\n"
            "assert obs.histogram('db.snapshot').count == 0\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**os.environ, "REPRO_NO_OBS": "1"},
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_noop_span_is_shared_and_inert(self):
        obs.set_enabled(False)
        first = obs.span("db.snapshot", oid=1)
        second = obs.span("wal.fsync")
        assert first is second  # the singleton no-op
        with first as sp:
            sp.annotate(anything=1)
        assert obs.current_span() is None


class TestSlowLog:
    def test_threshold_filters(self):
        obs.set_slow_threshold_us(10**9)
        with obs.span("db.snapshot"):
            pass
        assert obs.slow_ops() == []
        obs.set_slow_threshold_us(0)
        with obs.span("db.snapshot"):
            pass
        assert len(obs.slow_ops()) == 1

    def test_only_roots_are_captured(self):
        obs.set_slow_threshold_us(0)
        with obs.span("query.evaluate"):
            with obs.span("planner.plan"):
                pass
        kinds = [t["kind"] for t in obs.slow_ops()]
        assert kinds == ["query.evaluate"]

    def test_ring_is_bounded_but_metric_counts_all(self):
        obs.set_slow_threshold_us(0)
        obs.set_capacity(4)
        try:
            before = perf.counters.metric("obs.slow_ops").count
            for _ in range(10):
                with obs.span("db.extent"):
                    pass
            assert len(obs.slow_ops()) == 4
            assert perf.counters.metric("obs.slow_ops").count == before + 10
        finally:
            obs.set_capacity(64)

    def test_json_dump_round_trips(self):
        obs.set_slow_threshold_us(0)
        with obs.span("wal.checkpoint", lsn=12):
            pass
        loaded = json.loads(obs.slow_ops_json())
        assert loaded[-1]["kind"] == "wal.checkpoint"
        assert loaded[-1]["labels"]["lsn"] == 12


class TestTopK:
    def test_keeps_n_slowest(self):
        collector = obs.TopK(3)
        for us in (5, 90, 10, 70, 30, 80):
            sp = Span("db.snapshot", {"us": us}, None)
            sp.duration_us = us
            collector.offer(sp)
        slowest = collector.slowest()
        assert [t["labels"]["us"] for t in slowest] == [90, 80, 70]


class TestExport:
    def test_stats_dict_shape(self):
        db, _oids = build_db()
        evaluate(db, parse_query("select derived where score > 3"))
        data = obs.stats_dict()
        assert set(data) == {
            "obs_enabled",
            "counters",
            "histograms",
            "slow_threshold_us",
            "slow_ops",
            "server",
            "bitemporal",
        }
        assert set(obs.KINDS) <= set(data["histograms"])
        assert "database.snapshot" in data["counters"]
        assert "obs.spans" in data["counters"]
        for key in (
            "sessions_active",
            "sessions_total",
            "active_views",
            "admission_rejections",
            "inflight_reads",
        ):
            assert key in data["server"]
        for key in (
            "asof_reads",
            "head_hits",
            "cache_hits",
            "reconstructions",
            "cache_entries",
            "cache_capacity",
        ):
            assert key in data["bitemporal"]
        json.dumps(data)  # must be serializable as-is

    def test_prom_text_histogram_contract(self):
        db, _oids = build_db()
        evaluate(db, parse_query("select derived where score > 3"))
        text = obs.prom_text()
        assert "# TYPE repro_span_duration_us histogram" in text
        assert "# TYPE repro_cache_hits_total counter" in text
        assert 'repro_events_total{metric="obs.spans"}' in text
        # Cumulative buckets: nondecreasing, +Inf equals _count.
        kind = "query.evaluate"
        bucket_re = (
            f'repro_span_duration_us_bucket{{kind="{kind}",le="'
        )
        values = []
        inf = count = None
        for line in text.splitlines():
            if line.startswith(bucket_re):
                le, value = line[len(bucket_re):].split('"} ')
                if le == "+Inf":
                    inf = int(value)
                else:
                    values.append(int(value))
            elif line.startswith(
                f'repro_span_duration_us_count{{kind="{kind}"}}'
            ):
                count = int(line.rsplit(" ", 1)[1])
        assert values == sorted(values)
        assert inf == count
        assert count >= 1

    def test_format_stats_mentions_all_kinds(self):
        text = obs.format_stats()
        for kind in obs.KINDS:
            assert kind in text

    def test_replication_metrics_in_prom_export(self):
        from repro.database.wal import Journal
        from repro.faults.fs import SimulatedFS
        from repro.replication import LogShipper, Replica

        fs = SimulatedFS()
        journal = Journal("/db/journal.wal", fs=fs)
        db = TemporalDatabase(journal=journal)
        db.define_class("c", attributes=[("x", "integer")])
        db.create_object("c", {"x": 1})
        shipper = LogShipper("/db", fs=fs, backoff=lambda attempt: None)
        replica = shipper.attach(Replica("r1", fs=SimulatedFS()))
        shipper.sync_all()
        assert shipper.lag(replica) == 0
        text = obs.prom_text()
        for metric in (
            "wal.shipped_frames",
            "replication.lag_lsn",
            "replication.catchups",
            "replication.frame_errors",
            "replication.records_applied",
            "replication.restarts",
        ):
            assert f'repro_events_total{{metric="{metric}"}}' in text
        counters = obs.stats_dict()["counters"]
        assert counters["wal.shipped_frames"]["count"] > 0
        assert counters["replication.lag_lsn"]["count"] == 0

    def test_replication_span_kinds_registered(self):
        for kind in (
            "replication.ship",
            "replication.apply",
            "replication.catchup",
        ):
            assert kind in obs.KINDS
            assert (
                f'repro_span_duration_us_count{{kind="{kind}"}}'
                in obs.prom_text()
            )

    def test_page_cache_gauges_in_prom_export(self):
        from repro.database import pagecache, segments
        from repro.database.wal import Journal
        from repro.faults.fs import SimulatedFS

        saved = (segments.SPILL_MIN_PAIRS, segments.HOT_TAIL_PAIRS)
        segments.SPILL_MIN_PAIRS, segments.HOT_TAIL_PAIRS = 3, 1
        pagecache.PAGE_CACHE.clear()
        try:
            journal = Journal("/db/journal.wal", fs=SimulatedFS())
            db = TemporalDatabase(journal=journal)
            db.define_class("c", attributes=[("x", "temporal(integer)")])
            oid = db.create_object("c", {"x": 0})
            for i in range(1, 12):
                db.tick()
                db.update_attribute(oid, "x", i)
            db.checkpoint()
            db.get_object(oid).value["x"].at(0)  # fault one cold page
            text = obs.prom_text()
            for family in (
                "repro_page_cache_resident_bytes",
                "repro_page_cache_budget_bytes",
                "repro_page_cache_pages",
                "repro_page_cache_hit_rate",
            ):
                assert f"# TYPE {family} gauge" in text
            stats = pagecache.stats()
            assert stats["pages"] >= 1
            assert (
                f"repro_page_cache_resident_bytes "
                f"{stats['resident_bytes']}" in text
            )
            for metric in (
                "segment.spilled_bytes",
                "segment.spilled_values",
                "segment.loaded_bytes",
            ):
                assert f'repro_events_total{{metric="{metric}"}}' in text
        finally:
            segments.SPILL_MIN_PAIRS, segments.HOT_TAIL_PAIRS = saved
            pagecache.PAGE_CACHE.clear()

    def test_segment_span_kinds_registered(self):
        for kind in ("segment.spill", "segment.load", "segment.evict"):
            assert kind in obs.KINDS
            assert (
                f'repro_span_duration_us_count{{kind="{kind}"}}'
                in obs.prom_text()
            )

    def test_server_gauges_in_prom_export(self):
        from repro.server import server as server_mod

        text = obs.prom_text()
        for family in (
            "repro_server_sessions_active",
            "repro_server_sessions_total",
            "repro_server_active_views",
            "repro_server_admission_rejections",
            "repro_server_inflight_reads",
        ):
            assert f"# TYPE {family} gauge" in text
        serving = server_mod.stats()
        assert (
            f"repro_server_sessions_total "
            f"{serving['sessions_total']}" in text
        )
        assert serving["sessions_active"] == 0  # no live server here

    def test_bitemporal_gauges_in_prom_export(self, tmp_path):
        from repro.bitemporal import asof as asof_mod

        asof_mod.clear_cache()
        db, _oids = build_db(tmp_path / "asof")
        head = db.journal.last_lsn
        assert db.as_of(head) is db               # head hit
        db.as_of(max(1, head // 2))               # one reconstruction
        db.as_of(max(1, head // 2))               # one memo hit
        text = obs.prom_text()
        for family in (
            "repro_bitemporal_asof_reads",
            "repro_bitemporal_head_hits",
            "repro_bitemporal_reconstructions",
            "repro_bitemporal_cache_hits",
            "repro_bitemporal_cache_entries",
        ):
            assert f"# TYPE {family} gauge" in text
        stats = asof_mod.stats()
        assert stats["asof_reads"] >= 3
        assert stats["reconstructions"] >= 1
        assert stats["cache_hits"] >= 1
        assert (
            f"repro_bitemporal_asof_reads {stats['asof_reads']}" in text
        )
        # The reconstruction ran inside its instrumented boundary.
        assert (
            'repro_span_duration_us_count{kind="bitemporal.reconstruct"}'
            in text
        )

    def test_server_span_kinds_registered(self):
        for kind in ("server.request", "server.session"):
            assert kind in obs.KINDS
            assert (
                f'repro_span_duration_us_count{{kind="{kind}"}}'
                in obs.prom_text()
            )

    def test_render_span_tree_indents_children(self):
        with obs.span("query.evaluate") as root:
            with obs.span("planner.plan"):
                pass
        rendered = obs.render_span_tree(root.to_dict())
        lines = rendered.splitlines()
        assert lines[0].startswith("query.evaluate")
        assert lines[1].startswith("  planner.plan")


def run_cli(*args: str, env_extra=None):
    env = {**os.environ, **(env_extra or {})}
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )


@pytest.fixture(scope="module")
def saved_db(tmp_path_factory):
    from repro.database.persistence import database_to_json

    db, _oids = build_db()
    path = tmp_path_factory.mktemp("obs_cli") / "db.json"
    path.write_text(database_to_json(db))
    return path


class TestStatsCLI:
    def test_stats_table(self):
        proc = run_cli("stats")
        assert proc.returncode == 0, proc.stderr
        assert "span latency" in proc.stdout
        assert "wal.append" in proc.stdout
        assert "slow ops" in proc.stdout
        assert "page cache:" in proc.stdout
        assert "hit rate" in proc.stdout

    def test_stats_json_emits_all_counters_and_histograms(self):
        proc = run_cli("stats", "--json")
        assert proc.returncode == 0, proc.stderr
        data = json.loads(proc.stdout)
        assert set(obs.KINDS) <= set(data["histograms"])
        # The seeded workload touches every boundary.
        for kind in (
            "db.snapshot",
            "db.extent",
            "query.evaluate",
            "planner.plan",
            "planner.execute",
            "wal.append",
            "wal.fsync",
            "wal.checkpoint",
            "recovery.replay",
            "batch.flush",
            "cache.rebuild",
        ):
            assert data["histograms"][kind]["count"] > 0, kind
        assert data["counters"]["wal.records"]["count"] > 0

    def test_stats_prom(self):
        proc = run_cli("stats", "--prom")
        assert proc.returncode == 0, proc.stderr
        assert "# TYPE repro_span_duration_us histogram" in proc.stdout
        assert 'le="+Inf"' in proc.stdout
        # The seeded workload runs one at-head and one historical
        # AS OF read, so the bitemporal gauges are live, not zero.
        for family, floor in (
            ("repro_bitemporal_asof_reads", 2),
            ("repro_bitemporal_head_hits", 1),
            ("repro_bitemporal_reconstructions", 1),
        ):
            assert f"# TYPE {family} gauge" in proc.stdout
            value = next(
                int(line.split()[-1])
                for line in proc.stdout.splitlines()
                if line.startswith(f"{family} ")
            )
            assert value >= floor, family

    def test_stats_on_saved_file(self, saved_db):
        proc = run_cli("stats", str(saved_db), "--json")
        assert proc.returncode == 0, proc.stderr
        data = json.loads(proc.stdout)
        assert data["histograms"]["db.snapshot"]["count"] > 0


class TestTraceCLI:
    def test_trace_query_prints_nested_tree(self, saved_db):
        proc = run_cli(
            "trace",
            "--top",
            "2",
            "query",
            str(saved_db),
            "select derived where score > 3",
        )
        assert proc.returncode == 0, proc.stderr
        assert "slowest span tree" in proc.stdout
        assert "query.evaluate" in proc.stdout
        # Children are indented under the root.
        assert "\n  planner." in proc.stdout

    def test_trace_overrides_repro_no_obs(self, saved_db):
        proc = run_cli(
            "trace",
            "query",
            str(saved_db),
            "select derived where score > 3",
            env_extra={"REPRO_NO_OBS": "1"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "query.evaluate" in proc.stdout

    def test_trace_json(self, saved_db):
        proc = run_cli(
            "trace",
            "--json",
            "query",
            str(saved_db),
            "select derived where score > 3",
        )
        assert proc.returncode == 0, proc.stderr
        payload = proc.stdout[proc.stdout.index("["):]
        trees = json.loads(payload)
        assert any(t["kind"] == "query.evaluate" for t in trees)

    def test_trace_requires_a_command(self):
        proc = run_cli("trace")
        assert proc.returncode == 2

    def test_trace_refuses_trace(self):
        proc = run_cli("trace", "trace", "perf")
        assert proc.returncode == 2


class TestDocsDrift:
    LINT = REPO_ROOT / "tools" / "check_docs_drift.py"

    def test_current_docs_pass(self):
        proc = subprocess.run(
            [sys.executable, str(self.LINT)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_orphaned_metric_fails(self, tmp_path):
        bad = tmp_path / "orphan.md"
        bad.write_text(
            "The `obs.made_up_metric` metric, the `REPRO_NO_SUCH_FLAG` "
            "variable, and `repro frobnicate` do not exist.\n"
        )
        proc = subprocess.run(
            [sys.executable, str(self.LINT), str(bad)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 1
        assert "obs.made_up_metric" in proc.stdout
        assert "REPRO_NO_SUCH_FLAG" in proc.stdout
        assert "frobnicate" in proc.stdout

    def test_real_names_pass(self, tmp_path):
        good = tmp_path / "good.md"
        good.write_text(
            "`wal.syncs`, `db.snapshot`, `obs.spans`, `REPRO_NO_OBS`, "
            "and `repro stats` all exist.\n"
        )
        proc = subprocess.run(
            [sys.executable, str(self.LINT), str(good)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout
