"""WAL shipping: replicas, catch-up, fault tolerance, and PITR.

Unit tests pin the protocol pieces -- committed-only shipping, unit
atomicity, transit-fault retries, checkpoint-fetch catch-up, replica
crash restart, the read-only surface, and ``restore_to`` on both axes
-- while the seeded matrix (``REPLICA_FAULT_TRIALS``, CI runs 200)
drives randomized workloads through the
:func:`repro.faults.harness.run_replica_trial` convergence oracle:
every replica must end Definition 5.10 weak-value-equal to the
primary, whatever the injected fault did in transit or mid-apply.
"""

import os

import pytest

from repro import perf
from repro.database.database import TemporalDatabase
from repro.database.recovery import JOURNAL_NAME, open_database
from repro.database.transactions import Transaction
from repro.database.wal import Journal, checkpoint_name
from repro.errors import ReplicationError, ReplicaWriteError
from repro.faults import (
    REPLICA_CRASH_POINTS,
    FaultInjector,
    ReplicaCrashPlan,
    SimulatedFS,
    run_replica_trial,
)
from repro.replication import LogShipper, Replica, restore_to

TRIALS = int(os.environ.get("REPLICA_FAULT_TRIALS", "40"))

DB_DIR = "/db"


def _primary(fs):
    journal = Journal(f"{DB_DIR}/{JOURNAL_NAME}", fs=fs)
    db = TemporalDatabase(journal=journal)
    db.define_class(
        "person",
        attributes=[("name", "string"), ("salary", "temporal(real)")],
    )
    return db, journal


def _replica(name, plan=None, **kwargs):
    return Replica(
        name,
        fs=SimulatedFS(),
        injector=FaultInjector(plan),
        **kwargs,
    )


def _shipper(fs):
    return LogShipper(DB_DIR, fs=fs, backoff=lambda attempt: None)


class TestShipping:
    def test_replica_converges_to_primary(self):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("r1"))
        oid = db.create_object("person", {"name": "ada", "salary": 1.0})
        db.tick(2)
        db.update_attribute(oid, "salary", 9.0)
        shipper.sync_all()
        assert replica.applied_lsn == journal.last_lsn
        assert replica.applied_tick == db.now
        assert shipper.lag(replica) == 0
        twin = replica.db.get_object(oid)
        assert twin.value["salary"].get(db.now) == 9.0

    def test_open_transaction_is_withheld_until_commit(self):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("r1"))
        shipper.sync_all()
        before = replica.applied_lsn
        txn = Transaction(db).begin()
        db.create_object("person", {"name": "bob", "salary": 2.0})
        # Mid-transaction: the new frames are not yet committed history.
        assert shipper.sync(replica) == 0
        assert replica.applied_lsn == before
        txn.commit()
        assert shipper.sync(replica) > 0
        assert replica.applied_lsn == journal.last_lsn

    def test_rolled_back_transaction_never_ships(self):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("r1"))
        txn = Transaction(db).begin()
        db.create_object("person", {"name": "ghost", "salary": 3.0})
        shipper.sync_all()
        txn.rollback()
        # The truncated LSNs are reused by different, committed records.
        oid = db.create_object("person", {"name": "real", "salary": 4.0})
        shipper.sync_all()
        assert replica.applied_lsn == journal.last_lsn
        assert len(replica.db) == 1
        assert replica.db.get_object(oid).oid == oid

    def test_batch_ships_as_one_atomic_unit(self):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("r1"))
        with db.batch():
            for i in range(4):
                db.create_object(
                    "person", {"name": f"p{i}", "salary": float(i)}
                )
        shipper.sync_all()
        assert replica.applied_lsn == journal.last_lsn
        assert len(replica.db) == 4

    def test_late_attach_bootstraps_from_checkpoint(self):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        db.create_object("person", {"name": "a", "salary": 1.0})
        db.checkpoint()  # truncates the journal
        db.tick()
        catchups = perf.metric("replication.catchups").count
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("late"))
        shipper.sync_all()
        assert replica.applied_lsn == journal.last_lsn
        assert len(replica.db) == 1
        assert perf.metric("replication.catchups").count == catchups + 1
        # The replica's directory holds the fetched checkpoint.
        assert any(
            name.startswith("checkpoint-")
            for name in replica.fs.listdir(replica.directory)
        )

    def test_checkpoint_truncation_between_polls_is_detected(self):
        # The journal shrinks at a checkpoint, then regrows past the
        # shipper's old scan offset before the next poll: byte-identical
        # size bookkeeping would go stale; the prefix CRC must not.
        fs = SimulatedFS()
        db, journal = _primary(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("r1"))
        shipper.sync_all()
        db.checkpoint()
        for i in range(12):  # regrow well past the pre-checkpoint size
            db.create_object(
                "person", {"name": f"bulk{i}", "salary": float(i)}
            )
        shipper.sync_all()
        assert replica.applied_lsn == journal.last_lsn
        assert len(replica.db) == 12

    def test_lag_metric_tracks_unshipped_tail(self):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("r1"))
        shipper.sync_all()
        db.tick(3)
        assert shipper.lag(replica) == 1
        shipper.sync_all()
        assert shipper.lag(replica) == 0
        assert perf.metric("replication.lag_lsn").count == 0


class TestTransitFaults:
    @pytest.mark.parametrize("mode", REPLICA_CRASH_POINTS["ship"])
    def test_corrupt_delivery_is_retried_to_convergence(self, mode):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(
            _replica("r1", plan=ReplicaCrashPlan("ship", mode, 3))
        )
        errors = perf.metric("replication.frame_errors").count
        for i in range(5):
            db.create_object(
                "person", {"name": f"p{i}", "salary": float(i)}
            )
        shipper.sync_all()
        assert replica.applied_lsn == journal.last_lsn
        assert len(replica.db) == 5
        assert perf.metric("replication.frame_errors").count > errors

    def test_link_that_eats_every_frame_exhausts_retries(self):
        fs = SimulatedFS()
        db, _journal = _primary(fs)
        shipper = LogShipper(
            DB_DIR, fs=fs, retries=3, backoff=lambda attempt: None
        )
        replica = shipper.attach(_replica("r1"))
        replica.channel.transit = lambda frames: b""
        with pytest.raises(ReplicationError, match="failed to reach"):
            shipper.sync(replica)

    def test_ship_retries_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHIP_RETRIES", "7")
        assert LogShipper(DB_DIR, fs=SimulatedFS()).retries == 7


class TestReplicaCrashes:
    def test_kill_mid_apply_restarts_from_own_archive(self):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(
            _replica("r1", plan=ReplicaCrashPlan("apply", "kill", 4))
        )
        restarts = perf.metric("replication.restarts").count
        for i in range(6):
            db.create_object(
                "person", {"name": f"p{i}", "salary": float(i)}
            )
        shipper.sync_all()
        assert replica.applied_lsn == journal.last_lsn
        assert len(replica.db) == 6
        assert perf.metric("replication.restarts").count > restarts

    def test_kill_mid_checkpoint_fetch_is_survivable(self):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        db.create_object("person", {"name": "a", "salary": 1.0})
        db.checkpoint()
        shipper = _shipper(fs)
        replica = shipper.attach(
            _replica("late", plan=ReplicaCrashPlan("fetch", "kill", 1))
        )
        shipper.sync_all()
        assert replica.applied_lsn == journal.last_lsn
        assert len(replica.db) == 1

    def test_dead_replica_refuses_reads_until_restart(self):
        replica = _replica("r1")
        replica.dead = True
        with pytest.raises(ReplicationError, match="dead"):
            replica.db
        with pytest.raises(ReplicationError, match="dead"):
            replica.deliver([])

    def test_restart_keeps_applied_state(self):
        fs = SimulatedFS()
        db, journal = _primary(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("r1"))
        oid = db.create_object("person", {"name": "a", "salary": 1.0})
        shipper.sync_all()
        replica.dead = True
        replica._db = None
        replica.restart()
        assert replica.applied_lsn == journal.last_lsn
        assert replica.db.get_object(oid).oid == oid


class TestReadOnlySurface:
    def _synced_replica(self):
        fs = SimulatedFS()
        db, _journal = _primary(fs)
        db.create_object("person", {"name": "ada", "salary": 10.0})
        db.tick()
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("r1"))
        shipper.sync_all()
        return db, replica

    @pytest.mark.parametrize(
        "call",
        [
            lambda db: db.tick(),
            lambda db: db.create_object("person", {"name": "x"}),
            lambda db: db.define_class("c2"),
            lambda db: db.drop_class("person"),
            lambda db: db.checkpoint(),
        ],
    )
    def test_writes_raise_cleanly(self, call):
        _db, replica = self._synced_replica()
        with pytest.raises(ReplicaWriteError):
            call(replica.db)

    def test_reads_and_queries_work(self):
        db, replica = self._synced_replica()
        view = replica.db
        assert len(view) == 1
        assert set(view.class_names()) == set(db.class_names())
        assert view.now == db.now
        hits = replica.query("select person where salary > 5")
        assert len(hits) == 1

    def test_unbootstrapped_replica_refuses_reads(self):
        replica = _replica("blank")
        with pytest.raises(ReplicationError, match="bootstrapped"):
            replica.db


class TestRestoreTo:
    def _history(self, fs):
        # tick T: 0    1        2        3
        # ops:  genesis create  update   update
        db, journal = _primary(fs)
        oid = db.create_object("person", {"name": "a", "salary": 1.0})
        marks = [(journal.last_lsn, db.now)]
        for salary in (2.0, 3.0):
            db.tick()
            db.update_attribute(oid, "salary", salary)
            marks.append((journal.last_lsn, db.now))
        return db, oid, marks

    def test_restore_by_lsn_round_trips(self):
        fs = SimulatedFS()
        db, oid, marks = self._history(fs)
        for lsn, tick in marks:
            restored, report = restore_to(DB_DIR, lsn=lsn, fs=fs)
            assert report.last_lsn == lsn
            assert restored.now == tick
        full, _ = restore_to(DB_DIR, lsn=marks[-1][0], fs=fs)
        assert full.get_object(oid).value["salary"].get(full.now) == 3.0

    def test_restore_by_tick_lands_on_the_clock(self):
        fs = SimulatedFS()
        db, oid, marks = self._history(fs)
        for _lsn, tick in marks:
            restored, _ = restore_to(DB_DIR, tick=tick, fs=fs)
            assert restored.now == tick
        mid, _ = restore_to(DB_DIR, tick=marks[1][1], fs=fs)
        assert mid.get_object(oid).value["salary"].get(mid.now) == 2.0

    def test_restore_from_replica_archive_reaches_past_primary_checkpoint(
        self,
    ):
        fs = SimulatedFS()
        db, oid, marks = self._history(fs)
        shipper = _shipper(fs)
        replica = shipper.attach(_replica("r1"))
        shipper.sync_all()
        db.checkpoint()  # primary forgets its journal history
        early_lsn, early_tick = marks[0]
        with pytest.raises(ReplicationError):
            restore_to(DB_DIR, lsn=early_lsn, fs=fs)
        restored, _ = restore_to(
            replica.directory, lsn=early_lsn, fs=replica.fs
        )
        assert restored.now == early_tick

    def test_exactly_one_target_required(self):
        with pytest.raises(ReplicationError, match="exactly one"):
            restore_to(DB_DIR, fs=SimulatedFS())
        with pytest.raises(ReplicationError, match="exactly one"):
            restore_to(DB_DIR, lsn=1, tick=1, fs=SimulatedFS())
        with pytest.raises(ReplicationError, match="negative"):
            restore_to(DB_DIR, lsn=-1, fs=SimulatedFS())

    def test_target_outside_retained_history_raises(self):
        fs = SimulatedFS()
        db, _journal = _primary(fs)
        db.create_object("person", {"name": "a", "salary": 1.0})
        db.tick(5)
        db.checkpoint()
        with pytest.raises(ReplicationError, match="cannot restore"):
            restore_to(DB_DIR, tick=1, fs=fs)


class TestRealFilesystem:
    def test_ship_and_restore_on_disk(self, tmp_path):
        primary_dir = tmp_path / "primary"
        db, _report = open_database(primary_dir)
        db.define_class(
            "person", attributes=[("salary", "temporal(real)")]
        )
        oid = db.create_object("person", {"salary": 1.0})
        db.tick(2)
        db.update_attribute(oid, "salary", 7.0)
        shipper = LogShipper(primary_dir, backoff=lambda attempt: None)
        replica = shipper.attach(
            Replica("disk", directory=tmp_path / "replica")
        )
        shipper.sync_all()
        assert shipper.lag(replica) == 0
        assert (tmp_path / "replica" / JOURNAL_NAME).exists()
        restored, _ = restore_to(tmp_path / "replica", tick=0)
        assert restored.now == 0


class TestSeedMatrix:
    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_replicas_converge_under_injected_faults(self, seed):
        result = run_replica_trial(seed)
        assert result.ok, (
            f"seed={result.seed} plan={result.plan.point}"
            f"@{result.plan.occurrence} fired={result.fired}: "
            + "; ".join(result.problems)
        )

    def test_matrix_draws_every_fault_point(self):
        import random

        from repro.faults.replica import random_replica_plan

        # Same draw the trial makes from each seed: the matrix must
        # spread over the whole catalogue, not cluster on one point.
        drawn = {
            random_replica_plan(random.Random(seed)).point
            for seed in range(TRIALS)
        }
        assert drawn == {
            f"{op}.{mode}"
            for op, modes in REPLICA_CRASH_POINTS.items()
            for mode in modes
        }

    @pytest.mark.parametrize(
        "plan",
        [
            ReplicaCrashPlan(op, mode, occurrence)
            for op, modes in REPLICA_CRASH_POINTS.items()
            for mode in modes
            for occurrence in (1, 3, 9)
        ],
        ids=lambda plan: f"{plan.point}@{plan.occurrence}",
    )
    def test_every_catalogued_fault_is_survivable(self, plan):
        result = run_replica_trial(2000 + plan.occurrence, plan=plan)
        assert result.ok, "; ".join(result.problems)

    def test_same_seed_same_outcome(self):
        first = run_replica_trial(11)
        second = run_replica_trial(11)
        assert first.plan == second.plan
        assert first.head_lsn == second.head_lsn
        assert first.problems == second.problems
