"""Typing contexts (repro.types.context)."""

import pytest

from repro.temporal.intervalsets import IntervalSet
from repro.types.context import (
    DictTypeContext,
    EMPTY_CONTEXT,
    EmptyTypeContext,
)
from repro.types.subtyping import EMPTY_ISA
from repro.values.oid import OID

from tests.strategies import WORLD_ISA


class TestEmptyContext:
    def test_everything_is_empty(self):
        ctx = EmptyTypeContext()
        assert ctx.extent("person", 0) == frozenset()
        assert ctx.membership_times("person", OID(1)).is_empty
        assert not ctx.known_class("person")
        assert ctx.classes_of(OID(1)) == ()
        assert not ctx.ever_member("person", OID(1))
        assert ctx.member_throughout(
            "person", OID(1), IntervalSet.empty()
        )  # vacuous
        assert ctx.current_time is None
        assert ctx.isa is EMPTY_ISA

    def test_module_singleton(self):
        assert isinstance(EMPTY_CONTEXT, EmptyTypeContext)


class TestDictContext:
    def setup_method(self):
        self.oid = OID(1)
        self.ctx = DictTypeContext(
            {"person": {self.oid: IntervalSet.span(10, 20)}},
            isa=WORLD_ISA,
            now=15,
        )

    def test_extent(self):
        assert self.ctx.extent("person", 15) == frozenset({self.oid})
        assert self.ctx.extent("person", 5) == frozenset()
        assert self.ctx.extent("ghost", 15) == frozenset()

    def test_membership_queries(self):
        assert self.ctx.ever_member("person", self.oid)
        assert not self.ctx.ever_member("person", OID(9))
        assert self.ctx.member_throughout(
            "person", self.oid, IntervalSet.span(12, 18)
        )
        assert not self.ctx.member_throughout(
            "person", self.oid, IntervalSet.span(12, 25)
        )

    def test_classes_of_respects_the_clock(self):
        # At now=15 the oid is a member.
        assert self.ctx.classes_of(self.oid) == ("person",)
        late = DictTypeContext(
            {"person": {self.oid: IntervalSet.span(10, 20)}}, now=30
        )
        assert late.classes_of(self.oid) == ()
        clockless = DictTypeContext(
            {"person": {self.oid: IntervalSet.span(10, 20)}}
        )
        assert clockless.classes_of(self.oid) == ("person",)

    def test_add_membership_unions(self):
        self.ctx.add_membership(
            "person", self.oid, IntervalSet.span(30, 40)
        )
        times = self.ctx.membership_times("person", self.oid)
        assert 35 in times and 15 in times and 25 not in times

    def test_from_constant_extents(self):
        ctx = DictTypeContext.from_constant_extents(
            {"task": [OID(5), OID(6)]}, horizon=(0, 100)
        )
        assert ctx.extent("task", 0) == ctx.extent("task", 100)
        assert ctx.known_class("task")
        assert not ctx.known_class("person")
