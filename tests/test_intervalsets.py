"""Disjoint interval sets and their Boolean algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidIntervalError
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet

from tests.strategies import interval_sets, intervals


class TestCanonicalization:
    def test_merges_overlapping(self):
        s = IntervalSet([Interval(1, 5), Interval(3, 8)])
        assert s.intervals == (Interval(1, 8),)

    def test_merges_adjacent(self):
        # {[3,5], [6,9]} denotes the same instants as {[3,9]}.
        s = IntervalSet([Interval(3, 5), Interval(6, 9)])
        assert s.intervals == (Interval(3, 9),)

    def test_keeps_separated(self):
        s = IntervalSet([Interval(1, 3), Interval(6, 9)])
        assert s.intervals == (Interval(1, 3), Interval(6, 9))

    def test_sorts_input(self):
        s = IntervalSet([Interval(6, 9), Interval(1, 3)])
        assert s.intervals == (Interval(1, 3), Interval(6, 9))

    def test_drops_empty_inputs(self):
        s = IntervalSet([Interval.empty(), Interval(1, 2)])
        assert s.intervals == (Interval(1, 2),)

    def test_moving_inputs_resolved(self):
        s = IntervalSet([Interval.from_now(5)], now=9)
        assert s.intervals == (Interval(5, 9),)

    def test_structural_equality_is_extensional(self):
        a = IntervalSet([Interval(1, 3), Interval(4, 6)])
        b = IntervalSet([Interval(1, 6)])
        assert a == b
        assert hash(a) == hash(b)

    def test_from_instants(self):
        s = IntervalSet.from_instants([5, 1, 2, 3, 9, 8])
        assert s.intervals == (Interval(1, 3), Interval(5, 5), Interval(8, 9))

    def test_from_pairs(self):
        assert IntervalSet.from_pairs([(1, 2), (4, 6)]).cardinality() == 5


class TestQueries:
    def test_empty(self):
        assert IntervalSet.empty().is_empty
        assert not IntervalSet.empty()
        assert len(IntervalSet.empty()) == 0

    def test_contiguity(self):
        assert IntervalSet.span(1, 9).is_contiguous()
        assert IntervalSet.empty().is_contiguous()
        assert not IntervalSet.from_pairs([(1, 2), (5, 6)]).is_contiguous()

    def test_start_end(self):
        s = IntervalSet.from_pairs([(3, 5), (8, 12)])
        assert s.start() == 3 and s.end() == 12

    def test_start_of_empty_raises(self):
        with pytest.raises(InvalidIntervalError):
            IntervalSet.empty().start()

    def test_cardinality(self):
        assert IntervalSet.from_pairs([(1, 3), (5, 5)]).cardinality() == 4

    def test_hull(self):
        assert IntervalSet.from_pairs([(1, 2), (8, 9)]).hull() == Interval(1, 9)

    def test_membership_binary_search(self):
        s = IntervalSet.from_pairs([(0, 10), (20, 30), (40, 50)])
        assert 25 in s and 40 in s and 50 in s
        assert 15 not in s and 31 not in s and 51 not in s

    def test_instants(self):
        s = IntervalSet.from_pairs([(1, 3), (6, 7)])
        assert list(s.instants()) == [1, 2, 3, 6, 7]


class TestBooleanAlgebra:
    def test_union(self):
        a = IntervalSet.from_pairs([(1, 3)])
        b = IntervalSet.from_pairs([(2, 6), (9, 9)])
        assert (a | b) == IntervalSet.from_pairs([(1, 6), (9, 9)])

    def test_intersection(self):
        a = IntervalSet.from_pairs([(1, 5), (10, 20)])
        b = IntervalSet.from_pairs([(4, 12)])
        assert (a & b) == IntervalSet.from_pairs([(4, 5), (10, 12)])

    def test_difference(self):
        a = IntervalSet.from_pairs([(1, 10)])
        b = IntervalSet.from_pairs([(3, 4), (7, 8)])
        assert (a - b) == IntervalSet.from_pairs([(1, 2), (5, 6), (9, 10)])

    def test_symmetric_difference(self):
        a = IntervalSet.from_pairs([(1, 5)])
        b = IntervalSet.from_pairs([(4, 8)])
        assert (a ^ b) == IntervalSet.from_pairs([(1, 3), (6, 8)])

    def test_complement(self):
        s = IntervalSet.from_pairs([(3, 4)])
        assert s.complement(Interval(0, 9)) == IntervalSet.from_pairs(
            [(0, 2), (5, 9)]
        )

    def test_issubset(self):
        small = IntervalSet.from_pairs([(2, 3)])
        big = IntervalSet.from_pairs([(1, 5)])
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_isdisjoint(self):
        assert IntervalSet.span(1, 3).isdisjoint(IntervalSet.span(5, 9))
        assert not IntervalSet.span(1, 5).isdisjoint(IntervalSet.span(5, 9))

    # -- algebraic laws (property-based) --------------------------------------

    @given(interval_sets(), interval_sets())
    def test_union_commutative(self, a, b):
        assert (a | b) == (b | a)

    @given(interval_sets(), interval_sets())
    def test_intersection_commutative(self, a, b):
        assert (a & b) == (b & a)

    @given(interval_sets(), interval_sets(), interval_sets())
    def test_union_associative(self, a, b, c):
        assert ((a | b) | c) == (a | (b | c))

    @given(interval_sets(), interval_sets(), interval_sets())
    def test_intersection_distributes_over_union(self, a, b, c):
        assert (a & (b | c)) == ((a & b) | (a & c))

    @given(interval_sets())
    def test_idempotence(self, a):
        assert (a | a) == a
        assert (a & a) == a

    @given(interval_sets(), interval_sets())
    def test_absorption(self, a, b):
        assert (a | (a & b)) == a
        assert (a & (a | b)) == a

    @given(interval_sets(), interval_sets())
    def test_difference_then_add_back(self, a, b):
        assert ((a - b) | (a & b)) == a

    @given(interval_sets(), interval_sets())
    def test_de_morgan_within_horizon(self, a, b):
        horizon = Interval(0, 250)
        left = (a | b).complement(horizon)
        right = a.complement(horizon) & b.complement(horizon)
        assert left == right

    @given(interval_sets())
    def test_double_complement(self, a):
        horizon = Interval(0, 250)
        assert a.complement(horizon).complement(horizon) == a & IntervalSet(
            [horizon]
        )

    @given(interval_sets(), interval_sets())
    def test_extensional_agreement_with_python_sets(self, a, b):
        """The algebra agrees with plain instant-set semantics."""
        sa, sb = set(a.instants()), set(b.instants())
        assert set((a | b).instants()) == sa | sb
        assert set((a & b).instants()) == sa & sb
        assert set((a - b).instants()) == sa - sb

    @given(interval_sets())
    def test_roundtrip_through_instants(self, a):
        assert IntervalSet.from_instants(a.instants()) == a

    @given(interval_sets(), st.integers(0, 250))
    def test_membership_matches_instants(self, a, t):
        assert (t in a) == (t in set(a.instants()))
