"""The Table 3 function inventory."""

import pytest

from repro.errors import SnapshotUndefinedError, TypeSyntaxError
from repro.model_functions import (
    TABLE_3,
    c_lifespan,
    h_state,
    h_type,
    m_lifespan,
    o_lifespan,
    pi,
    ref,
    s_state,
    s_type,
    snapshot,
    t_minus,
    type_,
)
from repro.temporal.intervalsets import IntervalSet
from repro.types.parser import parse_type
from repro.values.records import RecordValue
from repro.values.structure import values_equal


class TestTMinus:
    def test_paper_example(self):
        assert t_minus(parse_type("temporal(integer)")) == parse_type(
            "integer"
        )

    def test_static_rejected(self):
        with pytest.raises(TypeSyntaxError):
            t_minus(parse_type("integer"))


class TestPi:
    def test_extent_over_time(self, project_db):
        db, names = project_db
        assert names["i1"] in pi(db, "project", 20)
        assert names["i1"] not in pi(db, "project", 19)
        assert names["i9"] in pi(db, "project", 46)
        assert names["i9"] not in pi(db, "project", 45)

    def test_members_and_instances(self, staff_db):
        db, names = staff_db
        # pi counts members: Dan (a manager at 45) is in pi(employee, 45).
        assert names["dan"] in pi(db, "employee", 45)


class TestClassTypes:
    def test_type_h_type_s_type(self, project_db):
        """Example 4.2, against the live schema."""
        db, _ = project_db
        assert h_type(db, "project") == parse_type(
            "record-of(name: string, subproject: project, "
            "participants: set-of(person))"
        )
        assert s_type(db, "project") == parse_type(
            "record-of(objective: string, workplan: set-of(task))"
        )
        structural = type_(db, "project")
        assert structural.field_type("name") == parse_type(
            "temporal(string)"
        )


class TestStates:
    def test_h_state_example(self, project_db):
        db, names = project_db
        state = h_state(db, names["i1"], 50)
        assert values_equal(
            state,
            RecordValue(
                name="IDEA",
                subproject=names["i9"],
                participants=frozenset({names["i2"], names["i3"]}),
            ),
        )

    def test_s_state_example(self, project_db):
        db, names = project_db
        assert values_equal(
            s_state(db, names["i1"]),
            RecordValue(
                objective="Implementation", workplan={names["i7"]}
            ),
        )

    def test_snapshot_now_vs_past(self, project_db):
        db, names = project_db
        snap = snapshot(db, names["i1"], db.now)
        assert snap["subproject"] == names["i9"]
        with pytest.raises(SnapshotUndefinedError):
            snapshot(db, names["i1"], 50)


class TestLifespans:
    def test_o_lifespan(self, project_db):
        db, names = project_db
        assert o_lifespan(db, names["i1"]) == IntervalSet.span(20, 90)

    def test_m_lifespan_footnote_6(self, staff_db):
        """m_lifespan counts membership via subclasses: Dan's manager
        period is inside his employee membership."""
        db, names = staff_db
        dan = names["dan"]
        assert m_lifespan(db, dan, "manager") == IntervalSet.span(30, 59)
        assert m_lifespan(db, dan, "employee") == IntervalSet.span(10, 70)
        assert m_lifespan(db, dan, "person") == IntervalSet.span(10, 70)
        assert m_lifespan(db, dan, "project").is_empty

    def test_c_lifespan_is_m_lifespan(self):
        assert c_lifespan is m_lifespan

    def test_m_lifespan_agrees_with_membership_times(self, staff_db):
        """Invariant 5.2.2 as a spot check on the two derivations."""
        db, names = staff_db
        for class_name in db.class_names():
            assert m_lifespan(db, names["dan"], class_name) == (
                db.membership_times(class_name, names["dan"])
            )


class TestRef:
    def test_ref_over_time(self, project_db):
        db, names = project_db
        assert names["i4"] in ref(db, names["i1"], 30)
        assert names["i9"] in ref(db, names["i1"], 50)
        assert names["i8"] in ref(db, names["i1"], db.now)


class TestTable3Inventory:
    def test_eleven_functions(self):
        assert len(TABLE_3) == 11

    def test_names_match_paper(self):
        assert [row.name for row in TABLE_3] == [
            "T^-", "pi", "type", "h_type", "s_type", "h_state",
            "s_state", "o_lifespan", "m_lifespan", "ref", "snapshot",
        ]

    def test_signatures_match_paper(self):
        by_name = {row.name: row.signature for row in TABLE_3}
        assert by_name["pi"] == "CI x TIME -> 2^OI"
        assert by_name["m_lifespan"] == "OI x CI -> TIME x TIME"
        assert by_name["snapshot"] == "OI x TIME -> V"

    def test_every_row_is_implemented(self):
        for row in TABLE_3:
            assert callable(row.implementation)
            assert row.description


class TestDeletedObjects:
    def test_model_functions_on_deleted_objects(self, staff_db):
        """Deleted objects stay queryable about their past (histories
        are never erased); only present-tense operations refuse."""
        from repro.errors import LifespanError
        from repro.objects.state import h_state as raw_h_state

        db, names = staff_db
        db.tick()
        db.delete_object(names["pat"])
        deleted_at = db.now
        db.tick(5)
        # Lifespan closed at deletion - 1.
        life = o_lifespan(db, names["pat"])
        assert life.end() == deleted_at - 1
        # Extent queries honour the past.
        assert names["pat"] in pi(db, "person", deleted_at - 1)
        assert names["pat"] not in pi(db, "person", deleted_at)
        # m_lifespan reflects the closed membership.
        times = m_lifespan(db, names["pat"], "person")
        assert times.end() == deleted_at - 1
        # State projections work inside the lifespan...
        obj = db.get_object(names["pat"])
        assert raw_h_state(obj, deleted_at - 1, db.now) is not None
        # ...and refuse outside it.
        import pytest as _pytest

        with _pytest.raises(LifespanError):
            raw_h_state(obj, db.now, db.now)
