"""The interval stabbing index."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.database.indexes import IntervalStabbingIndex, extent_index
from repro.errors import InvalidIntervalError
from repro.temporal.intervals import Interval

from tests.strategies import intervals


class TestBasics:
    def test_empty(self):
        index = IntervalStabbingIndex()
        assert len(index) == 0
        assert index.stab(5) == []
        assert index.overlapping(Interval(0, 10)) == []

    def test_single(self):
        index = IntervalStabbingIndex([(Interval(3, 7), "a")])
        assert index.stab(3) == ["a"]
        assert index.stab(7) == ["a"]
        assert index.stab(2) == [] and index.stab(8) == []

    def test_empty_intervals_skipped(self):
        index = IntervalStabbingIndex([(Interval.empty(), "a")])
        assert len(index) == 0

    def test_moving_rejected(self):
        with pytest.raises(InvalidIntervalError):
            IntervalStabbingIndex([(Interval.from_now(3), "a")])
        index = IntervalStabbingIndex([(Interval(0, 5), "a")])
        with pytest.raises(InvalidIntervalError):
            index.overlapping(Interval.from_now(1))

    def test_stab_multiple(self):
        index = IntervalStabbingIndex(
            [
                (Interval(0, 10), "a"),
                (Interval(5, 15), "b"),
                (Interval(12, 20), "c"),
            ]
        )
        assert sorted(index.stab(7)) == ["a", "b"]
        assert sorted(index.stab(12)) == ["b", "c"]
        assert sorted(index.stab(11)) == ["b"]

    def test_overlapping(self):
        index = IntervalStabbingIndex(
            [
                (Interval(0, 4), "a"),
                (Interval(6, 9), "b"),
                (Interval(20, 30), "c"),
            ]
        )
        assert sorted(index.overlapping(Interval(3, 7))) == ["a", "b"]
        assert index.overlapping(Interval(10, 19)) == []
        assert sorted(index.overlapping(Interval(0, 100))) == [
            "a", "b", "c",
        ]

    def test_instants_covered(self):
        index = IntervalStabbingIndex(
            [(Interval(0, 4), 1), (Interval(2, 3), 2)]
        )
        assert index.instants_covered() == 5 + 2


class TestAgainstBruteForce:
    @given(
        st.lists(intervals(max_instant=60), max_size=25),
        st.integers(0, 70),
    )
    def test_stab_matches_scan(self, pieces, t):
        entries = [(piece, i) for i, piece in enumerate(pieces)]
        index = IntervalStabbingIndex(entries)
        expected = sorted(
            i for i, piece in enumerate(pieces) if piece.contains(t)
        )
        assert sorted(index.stab(t)) == expected

    @given(
        st.lists(intervals(max_instant=60), max_size=25),
        intervals(max_instant=70),
    )
    def test_overlap_matches_scan(self, pieces, probe):
        entries = [(piece, i) for i, piece in enumerate(pieces)]
        index = IntervalStabbingIndex(entries)
        expected = sorted(
            i for i, piece in enumerate(pieces) if piece.overlaps(probe)
        )
        assert sorted(index.overlapping(probe)) == expected

    def test_large_random(self):
        rng = random.Random(9)
        pieces = []
        for i in range(500):
            start = rng.randrange(1000)
            pieces.append((Interval(start, start + rng.randrange(50)), i))
        index = IntervalStabbingIndex(pieces)
        for t in rng.sample(range(1050), 50):
            expected = sorted(
                tag for piece, tag in pieces if piece.contains(t)
            )
            assert sorted(index.stab(t)) == expected


class TestExtentIndex:
    def test_matches_pi(self, staff_db):
        db, _names = staff_db
        for class_name in db.class_names():
            index = extent_index(db, class_name)
            for t in (0, 10, 29, 30, 45, 59, 60, 70):
                assert frozenset(index.stab(t)) == db.pi(class_name, t)
