"""Rule 6.1 (attribute refinement) and method redefinition."""

import pytest

from repro.errors import RefinementError
from repro.inheritance.refinement import (
    check_attribute_refinement,
    check_class_refines,
    check_method_override,
    merge_inherited_attributes,
    merge_inherited_methods,
)
from repro.schema.attribute import Attribute
from repro.schema.method import MethodSignature
from repro.types.grammar import (
    INTEGER,
    REAL,
    STRING,
    ObjectType,
    SetOf,
    TemporalType,
)

from tests.strategies import WORLD_ISA

person = ObjectType("person")
employee = ObjectType("employee")
manager = ObjectType("manager")


class TestAttributeRefinement:
    def test_same_domain(self):
        assert check_attribute_refinement(INTEGER, INTEGER, WORLD_ISA)

    def test_specialized_domain(self):
        # Rule 6.1 clause 1: T' <=_T T.
        assert check_attribute_refinement(employee, person, WORLD_ISA)
        assert check_attribute_refinement(
            SetOf(manager), SetOf(person), WORLD_ISA
        )

    def test_generalization_rejected(self):
        assert not check_attribute_refinement(person, employee, WORLD_ISA)

    def test_static_to_temporal(self):
        # Rule 6.1 clause 2: T' = temporal(T'') with T'' <=_T T.
        assert check_attribute_refinement(
            TemporalType(INTEGER), INTEGER, WORLD_ISA
        )
        assert check_attribute_refinement(
            TemporalType(employee), person, WORLD_ISA
        )

    def test_temporal_to_static_rejected(self):
        # "...but not vice-versa" (Section 6.1).
        assert not check_attribute_refinement(
            INTEGER, TemporalType(INTEGER), WORLD_ISA
        )
        assert not check_attribute_refinement(
            employee, TemporalType(person), WORLD_ISA
        )

    def test_temporal_to_temporal_specialization(self):
        # Covered by clause 1 through temporal covariance.
        assert check_attribute_refinement(
            TemporalType(employee), TemporalType(person), WORLD_ISA
        )
        assert not check_attribute_refinement(
            TemporalType(person), TemporalType(employee), WORLD_ISA
        )

    def test_unrelated_rejected(self):
        assert not check_attribute_refinement(STRING, INTEGER, WORLD_ISA)


class TestMethodOverride:
    def test_covariance_contravariance(self):
        base = MethodSignature("m", (person,), person)
        good = MethodSignature("m", (person,), employee)
        assert check_method_override(good, base, WORLD_ISA)
        bad_out = MethodSignature("m", (person,), ObjectType("project"))
        assert not check_method_override(bad_out, base, WORLD_ISA)
        bad_in = MethodSignature("m", (manager,), person)
        assert not check_method_override(bad_in, base, WORLD_ISA)


class TestMergeAttributes:
    def test_inherits_everything(self):
        merged = merge_inherited_attributes(
            {},
            [{"a": Attribute("a", INTEGER)}],
            WORLD_ISA,
            "sub",
        )
        assert set(merged) == {"a"}

    def test_own_addition(self):
        merged = merge_inherited_attributes(
            {"b": Attribute("b", STRING)},
            [{"a": Attribute("a", INTEGER)}],
            WORLD_ISA,
            "sub",
        )
        assert set(merged) == {"a", "b"}

    def test_valid_redefinition(self):
        merged = merge_inherited_attributes(
            {"a": Attribute("a", TemporalType(INTEGER))},
            [{"a": Attribute("a", INTEGER)}],
            WORLD_ISA,
            "sub",
        )
        assert merged["a"].type == TemporalType(INTEGER)

    def test_invalid_redefinition_rejected(self):
        with pytest.raises(RefinementError):
            merge_inherited_attributes(
                {"a": Attribute("a", STRING)},
                [{"a": Attribute("a", INTEGER)}],
                WORLD_ISA,
                "sub",
            )

    def test_multiple_inheritance_most_specific_wins(self):
        merged = merge_inherited_attributes(
            {},
            [
                {"a": Attribute("a", person)},
                {"a": Attribute("a", employee)},
            ],
            WORLD_ISA,
            "sub",
        )
        assert merged["a"].type == employee

    def test_multiple_inheritance_conflict_rejected(self):
        with pytest.raises(RefinementError, match="incomparable"):
            merge_inherited_attributes(
                {},
                [
                    {"a": Attribute("a", INTEGER)},
                    {"a": Attribute("a", STRING)},
                ],
                WORLD_ISA,
                "sub",
            )

    def test_conflict_resolved_by_redeclaration(self):
        merged = merge_inherited_attributes(
            {"a": Attribute("a", TemporalType(employee))},
            [
                {"a": Attribute("a", person)},
                {"a": Attribute("a", employee)},
            ],
            WORLD_ISA,
            "sub",
        )
        assert merged["a"].type == TemporalType(employee)

    def test_redeclaration_checked_against_every_contributor(self):
        with pytest.raises(RefinementError):
            merge_inherited_attributes(
                {"a": Attribute("a", person)},  # refines neither branch
                [
                    {"a": Attribute("a", employee)},
                    {"a": Attribute("a", manager)},
                ],
                WORLD_ISA,
                "sub",
            )


class TestMergeMethods:
    def test_inherit_and_override(self):
        base = MethodSignature("m", (person,), person)
        better = MethodSignature("m", (person,), employee)
        merged = merge_inherited_methods(
            {"m": better}, [{"m": base}], WORLD_ISA, "sub"
        )
        assert merged["m"] is better

    def test_invalid_override_rejected(self):
        base = MethodSignature("m", (person,), employee)
        worse = MethodSignature("m", (person,), person)
        with pytest.raises(RefinementError):
            merge_inherited_methods(
                {"m": worse}, [{"m": base}], WORLD_ISA, "sub"
            )


class TestCheckClassRefines:
    def test_compliant(self):
        problems = check_class_refines(
            {"a": Attribute("a", TemporalType(employee))},
            {"m": MethodSignature("m", (person,), employee)},
            {"a": Attribute("a", person)},
            {"m": MethodSignature("m", (employee,), person)},
            WORLD_ISA,
        )
        assert problems == []

    def test_missing_and_bad(self):
        problems = check_class_refines(
            {"a": Attribute("a", STRING)},
            {},
            {"a": Attribute("a", INTEGER), "b": Attribute("b", STRING)},
            {"m": MethodSignature("m", (), INTEGER)},
            WORLD_ISA,
        )
        assert len(problems) == 3  # bad a, missing b, missing m
