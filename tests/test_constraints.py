"""The temporal integrity constraint language (Section 7 extension)."""

import pytest

from repro.constraints import (
    AlwaysMeaningful,
    ConstraintSet,
    HistoryPredicate,
    Immutable,
    MaxDuration,
    NonDecreasing,
    NonIncreasing,
    ValueBounds,
)
from repro.database.transactions import Transaction
from repro.errors import ConstraintError
from repro.query import attr


@pytest.fixture
def salary_db(empty_db):
    db = empty_db
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[("salary", "temporal(real)"), ("grade", "temporal(integer)")],
    )
    db.tick(10)
    oid = db.create_object(
        "employee", {"name": "Ann", "salary": 1000.0, "grade": 3}
    )
    return db, oid


class TestNonDecreasing:
    def test_clean_history(self, salary_db):
        db, oid = salary_db
        db.tick(5)
        db.update_attribute(oid, "salary", 1500.0)
        rule = NonDecreasing("employee", "salary")
        assert rule.violations(db, db.get_object(oid)) == []

    def test_decrease_detected(self, salary_db):
        db, oid = salary_db
        db.tick(5)
        db.update_attribute(oid, "salary", 500.0)
        rule = NonDecreasing("employee", "salary")
        problems = rule.violations(db, db.get_object(oid))
        assert problems and "decreased" in problems[0]

    def test_non_increasing_dual(self, salary_db):
        db, oid = salary_db
        db.tick(5)
        db.update_attribute(oid, "grade", 2)
        assert NonIncreasing("employee", "grade").violations(
            db, db.get_object(oid)
        ) == []
        db.tick(5)
        db.update_attribute(oid, "grade", 4)
        problems = NonIncreasing("employee", "grade").violations(
            db, db.get_object(oid)
        )
        assert problems and "increased" in problems[0]

    def test_null_gaps_ignored(self, salary_db):
        from repro.values.null import NULL

        db, oid = salary_db
        db.tick(5)
        db.update_attribute(oid, "salary", NULL)
        db.tick(5)
        db.update_attribute(oid, "salary", 1200.0)
        assert NonDecreasing("employee", "salary").violations(
            db, db.get_object(oid)
        ) == []


class TestAlwaysMeaningful:
    def test_holds(self, salary_db):
        db, oid = salary_db
        db.tick(20)
        assert AlwaysMeaningful("employee", "salary").violations(
            db, db.get_object(oid)
        ) == []

    def test_gap_detected(self, salary_db):
        db, oid = salary_db
        db.tick(5)
        obj = db.get_object(oid)
        obj.value["salary"].close(db.now - 1)  # stop recording
        db.tick(5)
        obj.value["salary"].assign(db.now, 1100.0)
        problems = AlwaysMeaningful("employee", "salary").violations(
            db, obj
        )
        assert problems and "not meaningful" in problems[0]


class TestValueBounds:
    def test_bounds(self, salary_db):
        db, oid = salary_db
        rule = ValueBounds("employee", "salary", lo=0.0, hi=2000.0)
        assert rule.violations(db, db.get_object(oid)) == []
        db.tick(5)
        db.update_attribute(oid, "salary", 5000.0)
        problems = rule.violations(db, db.get_object(oid))
        assert problems and "above" in problems[0]

    def test_static_attribute_bounds(self, empty_db):
        db = empty_db
        db.define_class("box", attributes=[("weight", "integer")])
        oid = db.create_object("box", {"weight": -2})
        rule = ValueBounds("box", "weight", lo=0)
        problems = rule.violations(db, db.get_object(oid))
        assert problems and "below" in problems[0]


class TestMaxDuration:
    def test_held_too_long(self, salary_db):
        db, oid = salary_db
        db.tick(30)
        db.update_attribute(oid, "salary", 1100.0)
        db.tick(1)
        rule = MaxDuration("employee", "salary", limit=10)
        problems = rule.violations(db, db.get_object(oid))
        assert problems and "held" in problems[0]

    def test_specific_value_only(self, salary_db):
        db, oid = salary_db
        db.tick(30)
        rule = MaxDuration("employee", "salary", limit=10, value=999.0)
        assert rule.violations(db, db.get_object(oid)) == []


class TestImmutable:
    def test_constant_ok(self, salary_db):
        db, oid = salary_db
        assert Immutable("employee", "salary").violations(
            db, db.get_object(oid)
        ) == []

    def test_change_detected(self, salary_db):
        db, oid = salary_db
        db.tick(5)
        db.update_attribute(oid, "salary", 2000.0)
        problems = Immutable("employee", "salary").violations(
            db, db.get_object(oid)
        )
        assert problems and "changed" in problems[0]


class TestHistoryPredicate:
    def test_always_mode(self, salary_db):
        db, oid = salary_db
        db.tick(5)
        rule = HistoryPredicate(
            "employee", attr("salary") > 0.0, mode="always"
        )
        assert rule.violations(db, db.get_object(oid)) == []
        db.update_attribute(oid, "salary", -5.0)
        db.tick(1)
        assert rule.violations(db, db.get_object(oid))

    def test_sometime_mode(self, salary_db):
        db, oid = salary_db
        rule = HistoryPredicate(
            "employee", attr("salary") > 9000.0, mode="sometime"
        )
        assert rule.violations(db, db.get_object(oid))
        db.tick(5)
        db.update_attribute(oid, "salary", 9500.0)
        db.tick(1)
        assert rule.violations(db, db.get_object(oid)) == []

    def test_bad_mode(self):
        with pytest.raises(ConstraintError):
            HistoryPredicate("c", attr("x") > 0, mode="never")


class TestConstraintSet:
    def test_batch_check(self, salary_db):
        db, oid = salary_db
        rules = ConstraintSet().add(
            NonDecreasing("employee", "salary")
        ).add(ValueBounds("employee", "salary", hi=2000.0))
        assert rules.check(db) == []
        db.tick(5)
        db.update_attribute(oid, "salary", 900.0)
        db.tick(5)
        db.update_attribute(oid, "salary", 3000.0)
        problems = rules.check(db)
        assert len(problems) == 2

    def test_scoped_to_class_members(self, salary_db):
        db, _oid = salary_db
        stranger = db.create_object("person", {"name": "Zed"})
        rules = ConstraintSet().add(NonDecreasing("employee", "salary"))
        # The person object is never an employee: not checked.
        assert rules.check_object(db, db.get_object(stranger)) == []

    def test_continuous_enforcement(self, salary_db):
        db, oid = salary_db
        rules = ConstraintSet().add(NonDecreasing("employee", "salary"))
        rules.enforce(db)
        db.tick(5)
        db.update_attribute(oid, "salary", 1200.0)  # fine
        with pytest.raises(ConstraintError):
            db.update_attribute(oid, "salary", 100.0)
        rules.unenforce(db)
        db.update_attribute(oid, "salary", 50.0)  # no longer guarded

    def test_enforcement_with_transaction_rolls_back(self, salary_db):
        db, oid = salary_db
        rules = ConstraintSet().add(NonDecreasing("employee", "salary"))
        rules.enforce(db)
        db.tick(5)
        with pytest.raises(ConstraintError):
            with Transaction(db):
                db.update_attribute(oid, "salary", 100.0)
        # Rolled back: the offending pair is gone.
        assert db.get_object(oid).value["salary"].at(db.now) == 1000.0
        assert rules.check(db) == []


class TestAttributeOrder:
    @pytest.fixture
    def budget_db(self, empty_db):
        from repro.constraints import AttributeOrder

        db = empty_db
        db.define_class(
            "task",
            attributes=[
                ("spent", "temporal(real)"),
                ("allocated", "temporal(real)"),
            ],
        )
        oid = db.create_object(
            "task", {"spent": 0.0, "allocated": 100.0}
        )
        return db, oid, AttributeOrder("task", "spent", "allocated")

    def test_order_holds(self, budget_db):
        db, oid, rule = budget_db
        db.tick(5)
        db.update_attribute(oid, "spent", 80.0)
        assert rule.violations(db, db.get_object(oid)) == []

    def test_violation_window_reported(self, budget_db):
        db, oid, rule = budget_db
        db.tick(5)
        db.update_attribute(oid, "spent", 120.0)   # over budget at 5
        db.tick(5)
        db.update_attribute(oid, "allocated", 150.0)  # fixed at 10
        problems = rule.violations(db, db.get_object(oid))
        assert len(problems) == 1
        assert "[5,9]" in problems[0]

    def test_null_stretches_ignored(self, budget_db):
        from repro.values.null import NULL

        db, oid, rule = budget_db
        db.tick(5)
        db.update_attribute(oid, "allocated", NULL)
        db.update_attribute(oid, "spent", 999.0)
        assert rule.violations(db, db.get_object(oid)) == []

    def test_custom_comparator(self, empty_db):
        from repro.constraints import AttributeOrder

        db = empty_db
        db.define_class(
            "range",
            attributes=[("lo", "temporal(integer)"),
                        ("hi", "temporal(integer)")],
        )
        oid = db.create_object("range", {"lo": 0, "hi": 0})
        strict = AttributeOrder(
            "range", "lo", "hi", ok=lambda a, b: a < b
        )
        problems = strict.violations(db, db.get_object(oid))
        assert problems  # 0 < 0 fails
