"""Cross-feature integration: the extensions composed together.

Each extension is tested in isolation elsewhere; these scenarios run
them *through each other* -- evolution + persistence + corrections +
views + bitemporal on one database -- and assert the invariant suite
stays clean at every seam.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BitemporalDatabase,
    TemporalView,
    check_database,
    database_from_json,
    database_to_json,
)
from repro.query import attr, evaluate, parse_query
from repro.tools import population_history
from repro.workloads import WorkloadSpec, build_database


class TestEvolutionThroughPersistence:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 500))
    def test_evolved_workload_roundtrips(self, seed):
        """Grow a random database, evolve its schema, correct a
        history, round-trip through JSON: invariants hold at each step
        and the clone answers like the original."""
        db = build_database(
            WorkloadSpec(n_objects=5, n_ticks=15, migration_rate=0.2,
                         seed=seed)
        )
        db.add_attribute("employee", ("bonus", "temporal(real)"))
        db.tick()
        victim = next(db.live_objects())
        db.update_attribute(victim.oid, "bonus", 10.0)
        db.remove_attribute("employee", "bonus")
        db.tick()
        # Retroactive correction on a surviving temporal attribute.
        born = victim.lifespan.start
        if born + 1 < db.now:
            db.correct_attribute(
                victim.oid, "salary", born, born + 1, 777.0
            )
        assert check_database(db).ok, check_database(db).all_violations()
        clone = database_from_json(database_to_json(db))
        assert check_database(clone).ok
        query = parse_query("select employee where salary > 0.0 sometime")
        assert evaluate(clone, query) == evaluate(db, query)
        assert population_history(clone, "employee") == (
            population_history(db, "employee")
        )


class TestViewsOverBitemporalVersions:
    def test_view_extents_differ_across_commits(self):
        bdb = BitemporalDatabase()
        db = bdb.current
        db.define_class(
            "employee", attributes=[("salary", "temporal(real)")]
        )
        ann = db.create_object("employee", {"salary": 1000.0})
        tt0 = bdb.commit("before the raise")
        db.tick(5)
        db.update_attribute(ann, "salary", 3000.0)
        tt1 = bdb.commit("after the raise")

        def rich_extent(version):
            view = TemporalView(
                version, "employee", attr("salary") >= 2000.0
            )
            return view.extent(version.now)

        assert rich_extent(bdb.as_of(tt0)) == frozenset()
        assert rich_extent(bdb.as_of(tt1)) == frozenset({ann})

    def test_corrections_visible_through_views_per_version(self):
        bdb = BitemporalDatabase()
        db = bdb.current
        db.define_class(
            "employee", attributes=[("salary", "temporal(real)")]
        )
        ann = db.create_object("employee", {"salary": 1000.0})
        db.tick(10)
        tt0 = bdb.commit("as recorded")
        db.correct_attribute(ann, "salary", 2, 5, 9000.0)
        tt1 = bdb.commit("corrected")
        before = TemporalView(
            bdb.as_of(tt0), "employee", attr("salary") >= 5000.0
        )
        after = TemporalView(
            bdb.as_of(tt1), "employee", attr("salary") >= 5000.0
        )
        assert before.membership_times(ann).is_empty
        assert list(after.membership_times(ann).instants()) == [2, 3, 4, 5]


class TestEvolutionThroughMigration:
    def test_added_attribute_survives_demotion_and_repromotion(
        self, empty_db
    ):
        """Schema evolution composed with migration: an attribute added
        to manager after objects migrated keeps the §5.2 retention
        semantics across further migrations."""
        db = empty_db
        db.define_class("person", attributes=[("name", "string")])
        db.define_class(
            "employee",
            parents=["person"],
            attributes=[("salary", "temporal(real)")],
        )
        db.define_class("manager", parents=["employee"])
        dan = db.create_object(
            "employee", {"name": "Dan", "salary": 1000.0}
        )
        db.tick(5)
        db.migrate(dan, "manager")
        db.tick(5)
        db.add_attribute("manager", ("budget", "temporal(real)"))
        added_at = db.now
        db.update_attribute(dan, "budget", 500.0)
        db.tick(5)
        db.migrate(dan, "employee")   # budget history retained
        obj = db.get_object(dan)
        assert "budget" in obj.retained
        assert obj.retained["budget"].at(added_at) == 500.0
        db.tick(5)
        db.migrate(dan, "manager")    # resumed
        assert obj.value["budget"].at(added_at) == 500.0
        report = check_database(db)
        assert report.ok, report.all_violations()

    def test_removed_attribute_during_membership_gap(self, empty_db):
        """Remove an attribute from manager while the object is NOT a
        manager: on re-promotion the attribute no longer exists."""
        db = empty_db
        db.define_class("person", attributes=[("name", "string")])
        db.define_class(
            "employee",
            parents=["person"],
            attributes=[("salary", "temporal(real)")],
        )
        db.define_class(
            "manager",
            parents=["employee"],
            attributes=[("budget", "temporal(real)")],
        )
        dan = db.create_object(
            "employee", {"name": "Dan", "salary": 1.0}
        )
        db.tick()
        db.migrate(dan, "manager", {"budget": 10.0})
        db.tick(5)
        db.migrate(dan, "employee")
        db.tick()
        db.remove_attribute("manager", "budget")
        db.tick()
        db.migrate(dan, "manager")
        obj = db.get_object(dan)
        assert "budget" not in obj.value       # gone from the schema
        assert "budget" in obj.retained        # the old span survives
        report = check_database(db)
        assert report.ok, report.all_violations()


class TestAnalyticsOverEvolvedSchema:
    def test_sum_history_spans_an_added_attribute(self, empty_db):
        from repro.tools import attribute_sum_history

        db = empty_db
        db.define_class(
            "employee", attributes=[("salary", "temporal(real)")]
        )
        a = db.create_object("employee", {"salary": 100.0})
        db.tick(10)
        db.add_attribute("employee", ("bonus", "temporal(real)"))
        db.update_attribute(a, "bonus", 5.0)
        db.tick(5)
        bonus_total = attribute_sum_history(db, "employee", "bonus")
        assert not bonus_total.defined_at(5)   # before the declaration
        assert bonus_total.at(db.now) == 5.0
