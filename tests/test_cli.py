"""The ``python -m repro`` command-line interface."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.database.persistence import database_to_json
from repro.workloads import WorkloadSpec, build_database


def run_cli(*args: str):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.fixture(scope="module")
def saved_db(tmp_path_factory):
    db = build_database(WorkloadSpec(n_objects=5, n_ticks=15, seed=3))
    path = tmp_path_factory.mktemp("cli") / "db.json"
    path.write_text(database_to_json(db))
    return path, db


class TestTables:
    def test_prints_all_three(self):
        result = run_cli("tables")
        assert result.returncode == 0
        assert "Table 1" in result.stdout
        assert "Table 2" in result.stdout
        assert "Table 3" in result.stdout
        assert "Our model" in result.stdout
        assert "o_lifespan" in result.stdout


class TestCheck:
    def test_clean_database(self, saved_db):
        path, _db = saved_db
        result = run_cli("check", str(path))
        assert result.returncode == 0
        assert "every invariant holds" in result.stdout

    def test_corrupted_database(self, saved_db, tmp_path):
        path, _db = saved_db
        # Corrupt an object's class history by text surgery (the
        # carried value of a class-history pair).
        text = path.read_text().replace(
            '"value": "employee"', '"value": "ghost"', 1
        )
        assert text != path.read_text()
        bad = tmp_path / "bad.json"
        bad.write_text(text)
        result = run_cli("check", str(bad))
        assert result.returncode == 1
        assert "VIOLATIONS" in result.stdout

    def test_missing_file(self):
        result = run_cli("check", "/nonexistent.json")
        assert result.returncode != 0


class TestDescribe:
    def test_database_summary(self, saved_db):
        path, db = saved_db
        result = run_cli("describe", str(path))
        assert result.returncode == 0
        assert f"now = {db.now}" in result.stdout
        assert "class employee" in result.stdout

    def test_class(self, saved_db):
        path, _db = saved_db
        result = run_cli("describe", str(path), "--class", "employee")
        assert result.returncode == 0
        assert "c        = employee" in result.stdout
        assert "h_type" in result.stdout

    def test_object(self, saved_db):
        path, db = saved_db
        serial = next(db.objects()).oid.serial
        result = run_cli("describe", str(path), "--object", str(serial))
        assert result.returncode == 0
        assert "class-history" in result.stdout

    def test_unknown_object(self, saved_db):
        path, _db = saved_db
        result = run_cli("describe", str(path), "--object", "99999")
        assert result.returncode == 1


class TestRecover:
    @pytest.fixture()
    def journal_dir(self, tmp_path):
        from repro.database.recovery import open_database

        directory = tmp_path / "dbdir"
        db, _ = open_database(directory)
        db.define_class("person", attributes=[("name", "string")])
        db.tick()
        db.create_object("person", {"name": "ann"})
        db.tick()
        db.create_object("person", {"name": "bob"})
        return directory

    def test_clean_recovery(self, journal_dir):
        result = run_cli("recover", str(journal_dir), "--verify")
        assert result.returncode == 0
        assert "OK" in result.stdout
        assert "passes the full integrity suite" in result.stdout

    def test_salvage_truncated_journal_exits_zero(self, journal_dir):
        journal = journal_dir / "journal.wal"
        journal.write_bytes(journal.read_bytes()[:-5])
        result = run_cli("recover", str(journal_dir))
        assert result.returncode == 0
        assert "byte(s) dropped" in result.stdout

    def test_unrecoverable_exits_nonzero(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / "journal.wal").write_bytes(b"garbage")
        result = run_cli("recover", str(directory))
        assert result.returncode == 1
        assert "FAILED" in result.stdout

    def test_json_report(self, journal_dir):
        import json

        result = run_cli("recover", str(journal_dir), "--json")
        assert result.returncode == 0
        report = json.loads(result.stdout)
        assert report["ok"] is True
        assert report["objects"] == 2

    def test_json_report_is_the_full_recovery_report(self, journal_dir):
        # Regression: --json must emit every RecoveryReport field --
        # monitoring keys off uncommitted_txn / replay_divergence, so
        # a slimmed-down emission would silently break alerting.
        import json

        from repro.database.recovery import RecoveryReport

        result = run_cli("recover", str(journal_dir), "--json")
        report = json.loads(result.stdout)
        expected = set(RecoveryReport(directory="x").to_dict())
        assert set(report) == expected
        assert report["uncommitted_txn"] is False
        assert report["replay_divergence"] is False

    def test_json_report_flags_uncommitted_txn(self, journal_dir):
        import json

        from repro.database.wal import frame_record

        journal = journal_dir / "journal.wal"
        next_lsn = 6  # past the fixture's five records
        with journal.open("ab") as handle:
            handle.write(frame_record({"lsn": next_lsn, "kind": "begin"}))
        result = run_cli("recover", str(journal_dir), "--json")
        assert result.returncode == 0
        report = json.loads(result.stdout)
        assert report["uncommitted_txn"] is True

    def test_checkpoint_subcommand(self, journal_dir):
        result = run_cli("checkpoint", str(journal_dir))
        assert result.returncode == 0
        assert "checkpoint written" in result.stdout
        assert list(journal_dir.glob("checkpoint-*.json"))
        # A recovery after checkpointing still reproduces the state.
        result = run_cli("recover", str(journal_dir), "--verify")
        assert result.returncode == 0
        assert "2 object(s)" in result.stdout


class TestReplicateRestore:
    @pytest.fixture()
    def primary_dir(self, tmp_path):
        from repro.database.recovery import open_database

        directory = tmp_path / "primary"
        db, _ = open_database(directory)
        db.define_class(
            "person",
            attributes=[("name", "string"), ("salary", "temporal(real)")],
        )
        oid = db.create_object("person", {"name": "ann", "salary": 1.0})
        db.tick(2)
        db.update_attribute(oid, "salary", 5.0)
        return directory

    def test_replicate_ships_to_directories(self, primary_dir, tmp_path):
        r1 = tmp_path / "replica1"
        r2 = tmp_path / "replica2"
        result = run_cli("replicate", str(primary_dir), str(r1), str(r2))
        assert result.returncode == 0
        assert "lag 0" in result.stdout
        assert (r1 / "journal.wal").exists()
        assert (r2 / "journal.wal").exists()
        # Re-running ships nothing new and stays at zero lag.
        again = run_cli("replicate", str(primary_dir), str(r1))
        assert again.returncode == 0
        assert "0 frame(s) shipped this run" in again.stdout

    def test_restore_by_tick_and_lsn(self, primary_dir, tmp_path):
        replica = tmp_path / "replica"
        run_cli("replicate", str(primary_dir), str(replica))
        result = run_cli("restore", str(replica), "--tick", "0")
        assert result.returncode == 0
        assert "now=0" in result.stdout
        out = tmp_path / "restored.json"
        result = run_cli(
            "restore", str(replica), "--lsn", "99", "-o", str(out)
        )
        assert result.returncode == 0
        assert out.exists()
        check = run_cli("check", str(out), "--serial")
        assert check.returncode == 0

    def test_restore_requires_exactly_one_target(self, primary_dir):
        result = run_cli("restore", str(primary_dir))
        assert result.returncode == 2  # argparse usage error
        result = run_cli(
            "restore", str(primary_dir), "--lsn", "1", "--tick", "1"
        )
        assert result.returncode == 2

    def test_restore_outside_history_fails(self, primary_dir):
        run_cli("checkpoint", str(primary_dir))
        result = run_cli("restore", str(primary_dir), "--tick", "0")
        assert result.returncode == 1
        assert "restore failed" in result.stderr


class TestQuery:
    def test_query_runs(self, saved_db):
        path, _db = saved_db
        result = run_cli(
            "query", str(path), "select employee where salary > 0.0"
        )
        assert result.returncode == 0
        assert "result(s)" in result.stdout

    def test_no_command_fails(self):
        result = run_cli()
        assert result.returncode != 0
