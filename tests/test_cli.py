"""The ``python -m repro`` command-line interface."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.database.persistence import database_to_json
from repro.workloads import WorkloadSpec, build_database


def run_cli(*args: str):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.fixture(scope="module")
def saved_db(tmp_path_factory):
    db = build_database(WorkloadSpec(n_objects=5, n_ticks=15, seed=3))
    path = tmp_path_factory.mktemp("cli") / "db.json"
    path.write_text(database_to_json(db))
    return path, db


class TestTables:
    def test_prints_all_three(self):
        result = run_cli("tables")
        assert result.returncode == 0
        assert "Table 1" in result.stdout
        assert "Table 2" in result.stdout
        assert "Table 3" in result.stdout
        assert "Our model" in result.stdout
        assert "o_lifespan" in result.stdout


class TestCheck:
    def test_clean_database(self, saved_db):
        path, _db = saved_db
        result = run_cli("check", str(path))
        assert result.returncode == 0
        assert "every invariant holds" in result.stdout

    def test_corrupted_database(self, saved_db, tmp_path):
        path, _db = saved_db
        # Corrupt an object's class history by text surgery (the
        # carried value of a class-history pair).
        text = path.read_text().replace(
            '"value": "employee"', '"value": "ghost"', 1
        )
        assert text != path.read_text()
        bad = tmp_path / "bad.json"
        bad.write_text(text)
        result = run_cli("check", str(bad))
        assert result.returncode == 1
        assert "VIOLATIONS" in result.stdout

    def test_missing_file(self):
        result = run_cli("check", "/nonexistent.json")
        assert result.returncode != 0


class TestDescribe:
    def test_database_summary(self, saved_db):
        path, db = saved_db
        result = run_cli("describe", str(path))
        assert result.returncode == 0
        assert f"now = {db.now}" in result.stdout
        assert "class employee" in result.stdout

    def test_class(self, saved_db):
        path, _db = saved_db
        result = run_cli("describe", str(path), "--class", "employee")
        assert result.returncode == 0
        assert "c        = employee" in result.stdout
        assert "h_type" in result.stdout

    def test_object(self, saved_db):
        path, db = saved_db
        serial = next(db.objects()).oid.serial
        result = run_cli("describe", str(path), "--object", str(serial))
        assert result.returncode == 0
        assert "class-history" in result.stdout

    def test_unknown_object(self, saved_db):
        path, _db = saved_db
        result = run_cli("describe", str(path), "--object", "99999")
        assert result.returncode == 1


class TestQuery:
    def test_query_runs(self, saved_db):
        path, _db = saved_db
        result = run_cli(
            "query", str(path), "select employee where salary > 0.0"
        )
        assert result.returncode == 0
        assert "result(s)" in result.stdout

    def test_no_command_fails(self):
        result = run_cli()
        assert result.returncode != 0
