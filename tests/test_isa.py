"""The ISA hierarchy DAG (Section 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DuplicateClassError, IsaCycleError, UnknownClassError
from repro.inheritance.isa import IsaHierarchy


def diamond() -> IsaHierarchy:
    """a <- b, a <- c, {b,c} <- d (multiple inheritance diamond)."""
    isa = IsaHierarchy()
    isa.add_class("a")
    isa.add_class("b", ["a"])
    isa.add_class("c", ["a"])
    isa.add_class("d", ["b", "c"])
    return isa


def two_hierarchies() -> IsaHierarchy:
    isa = IsaHierarchy()
    isa.add_class("person")
    isa.add_class("employee", ["person"])
    isa.add_class("manager", ["employee"])
    isa.add_class("project")
    isa.add_class("subproject", ["project"])
    return isa


class TestConstruction:
    def test_duplicate_rejected(self):
        isa = IsaHierarchy()
        isa.add_class("a")
        with pytest.raises(DuplicateClassError):
            isa.add_class("a")

    def test_unknown_parent_rejected(self):
        # Superclasses must exist first -- this also rules out cycles.
        with pytest.raises(UnknownClassError):
            IsaHierarchy().add_class("b", ["ghost"])

    def test_self_inheritance_rejected(self):
        with pytest.raises(IsaCycleError):
            IsaHierarchy().add_class("a", ["a"])

    def test_contains_len(self):
        isa = diamond()
        assert "a" in isa and "ghost" not in isa
        assert len(isa) == 4
        assert set(isa.classes()) == {"a", "b", "c", "d"}


class TestOrder:
    def test_le_reflexive(self):
        isa = diamond()
        for name in "abcd":
            assert isa.isa_le(name, name)

    def test_le_direct_and_transitive(self):
        isa = two_hierarchies()
        assert isa.isa_le("employee", "person")
        assert isa.isa_le("manager", "person")
        assert not isa.isa_le("person", "manager")

    def test_le_across_hierarchies(self):
        isa = two_hierarchies()
        assert not isa.isa_le("manager", "project")

    def test_le_diamond(self):
        isa = diamond()
        assert isa.isa_le("d", "a")
        assert isa.isa_le("d", "b") and isa.isa_le("d", "c")
        assert not isa.isa_le("b", "c")

    def test_superclasses_subclasses(self):
        isa = diamond()
        assert isa.superclasses("d") == {"a", "b", "c", "d"}
        assert isa.superclasses("d", strict=True) == {"a", "b", "c"}
        assert isa.subclasses("a") == {"a", "b", "c", "d"}
        assert isa.subclasses("b", strict=True) == {"d"}

    def test_parents_children(self):
        isa = diamond()
        assert isa.parents("d") == {"b", "c"}
        assert isa.children("a") == {"b", "c"}

    def test_unknown_class_errors(self):
        with pytest.raises(UnknownClassError):
            diamond().superclasses("ghost")


class TestRootsAndHierarchies:
    def test_roots(self):
        assert two_hierarchies().roots() == {"person", "project"}

    def test_components(self):
        isa = two_hierarchies()
        assert isa.hierarchy_of("manager") == "person"
        assert isa.hierarchy_of("subproject") == "project"
        assert isa.same_hierarchy("manager", "employee")
        assert not isa.same_hierarchy("manager", "project")

    def test_hierarchies_partition(self):
        groups = two_hierarchies().hierarchies()
        assert groups["person"] == {"person", "employee", "manager"}
        assert groups["project"] == {"project", "subproject"}

    def test_component_merge_by_multi_root_class(self):
        """A class with parents in two components merges them."""
        isa = IsaHierarchy()
        isa.add_class("x")
        isa.add_class("y")
        assert not isa.same_hierarchy("x", "y")
        isa.add_class("z", ["x", "y"])
        assert isa.same_hierarchy("x", "y")
        assert isa.hierarchy_of("z") == "x"  # lexicographically least root


class TestLub:
    def test_chain(self):
        isa = two_hierarchies()
        assert isa.class_lub(["manager", "employee"]) == "employee"
        assert isa.class_lub(["manager", "person"]) == "person"

    def test_siblings(self):
        assert diamond().class_lub(["b", "c"]) == "a"

    def test_diamond_down(self):
        assert diamond().class_lub(["d", "b"]) == "b"

    def test_ambiguous_minimal_uppers(self):
        """d <= b and d <= c with b, c incomparable: lub(d, e) where e
        is under both b and c too has two minimal upper bounds."""
        isa = diamond()
        isa.add_class("e", ["b", "c"])
        assert isa.class_lub(["d", "e"]) is None

    def test_no_common_superclass(self):
        assert two_hierarchies().class_lub(["person", "project"]) is None

    def test_singleton_and_empty(self):
        isa = diamond()
        assert isa.class_lub(["b"]) == "b"
        assert isa.class_lub([]) is None

    def test_most_specific(self):
        isa = two_hierarchies()
        assert isa.most_specific(["person", "manager"]) == "manager"
        assert isa.most_specific(["person", "project"]) is None


class TestTopological:
    def test_supers_first(self):
        order = diamond().topological()
        assert order.index("a") < order.index("b")
        assert order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_networkx_agreement(self):
        """Cross-validate DAG queries against networkx."""
        import networkx as nx

        isa = diamond()
        isa.add_class("e", ["d"])
        graph = nx.DiGraph()
        for name in isa.classes():
            graph.add_node(name)
            for parent in isa.parents(name):
                graph.add_edge(name, parent)  # subclass -> superclass
        assert nx.is_directed_acyclic_graph(graph)
        for sub in isa.classes():
            reachable = nx.descendants(graph, sub) | {sub}
            assert reachable == set(isa.superclasses(sub))

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=20))
    def test_random_dags_stay_consistent(self, parent_picks):
        """Grow a random DAG; <=_ISA must remain a partial order and
        agree with networkx reachability."""
        import networkx as nx

        isa = IsaHierarchy()
        names = []
        for index, pick in enumerate(parent_picks):
            name = f"c{index}"
            parents = []
            if names:
                parents = [names[pick % len(names)]]
            isa.add_class(name, parents)
            names.append(name)
        graph = nx.DiGraph()
        for name in names:
            graph.add_node(name)
            for parent in isa.parents(name):
                graph.add_edge(name, parent)
        for a in names:
            for b in names:
                assert isa.isa_le(a, b) == (
                    a == b or b in nx.descendants(graph, a)
                )
