"""Server crash trials: acked implies durable, unacked implies clean.

Each trial boots a real ``repro serve`` subprocess with a crash knob
armed, kills it between the group-commit barrier and the socket ack
(or just before the write), and checks the recovered directory against
the acked-ops oracle -- see :mod:`repro.faults.server`.

``SERVER_FAULT_TRIALS`` widens the sweep (CI runs the matrix wide);
the default keeps the suite fast.
"""

from __future__ import annotations

import os

import pytest

from repro.faults.server import (
    CRASH_AFTER_EXIT,
    CRASH_BEFORE_EXIT,
    ServerTrialResult,
    run_server_trial,
)

TRIALS = int(os.environ.get("SERVER_FAULT_TRIALS", "4"))


def _report(result: ServerTrialResult) -> str:
    return (
        f"seed={result.seed} crash={result.crash_kind}:{result.crash_at} "
        f"acked={result.acked_ops} inflight_present="
        f"{result.inflight_present}: " + "; ".join(result.problems)
    )


@pytest.mark.parametrize("seed", range(TRIALS))
def test_server_crash_trial(seed):
    result = run_server_trial(seed)
    assert result.ok, _report(result)
    # The armed crash point must actually have interrupted the run.
    assert result.acked_ops < 24


def test_exit_codes_are_distinct():
    assert CRASH_BEFORE_EXIT != CRASH_AFTER_EXIT


def test_trial_classifies_inflight():
    # Seed 0 crashes after the barrier: the unacked write must be
    # found durable; seed 1 crashes before: lost, then retried.
    after = run_server_trial(0)
    assert after.ok, _report(after)
    before = run_server_trial(1)
    assert before.ok, _report(before)
    kinds = {after.crash_kind, before.crash_kind}
    if kinds == {"after", "before"}:
        for result in (after, before):
            if result.inflight is None:
                continue
            expected = result.crash_kind == "after"
            assert result.inflight_present is expected, _report(result)
