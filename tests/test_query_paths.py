"""Temporal object references: path expressions (paper Section 7).

``lead.name`` dereferences the ``lead`` oid *at the evaluation
instant* and reads the referenced object's attribute at that same
instant -- so a path's history interleaves the reference's history
with the referent's history.
"""

import pytest

from repro.errors import QuerySyntaxError, QueryTypeError
from repro.query import attr, evaluate, parse_query, path, select, when
from repro.query.ast import Path
from repro.temporal.intervalsets import IntervalSet


@pytest.fixture
def org_db(empty_db):
    """Projects whose leads (and the leads' own grades) change."""
    db = empty_db
    db.define_class(
        "person",
        attributes=[("name", "string"), ("grade", "temporal(integer)")],
    )
    db.define_class(
        "project",
        attributes=[
            ("title", "string"),
            ("lead", "temporal(person)"),
            ("parent", "temporal(project)"),
        ],
    )
    ann = db.create_object("person", {"name": "Ann", "grade": 1})
    bob = db.create_object("person", {"name": "Bob", "grade": 5})
    root = db.create_object("project", {"title": "root", "lead": ann})
    child = db.create_object(
        "project", {"title": "child", "lead": bob, "parent": root}
    )
    db.tick(10)
    db.update_attribute(ann, "grade", 3)       # Ann: 1 on [0,9], 3 from 10
    db.tick(10)
    db.update_attribute(root, "lead", bob)     # root led by Ann then Bob
    db.tick(10)  # now = 30
    return db, {"ann": ann, "bob": bob, "root": root, "child": child}


class TestConstruction:
    def test_builder(self):
        p = path("lead", "grade")
        assert isinstance(p, Path)
        assert p.steps == ("lead", "grade")

    def test_needs_two_steps(self):
        with pytest.raises(ValueError):
            Path(("lead",))

    def test_parser(self):
        q = parse_query("select project where lead.grade > 2")
        assert isinstance(q.predicate.left, Path)
        assert q.predicate.left.steps == ("lead", "grade")

    def test_parser_deep_path(self):
        q = parse_query("select project where parent.lead.grade > 2")
        assert q.predicate.left.steps == ("parent", "lead", "grade")

    def test_parser_rejects_trailing_dot(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select project where lead. = 1")


class TestTyping:
    def test_path_type_is_final_attribute(self, org_db):
        db, _ = org_db
        evaluate(db, parse_query("select project where lead.grade > 2"))

    def test_type_error_through_path(self, org_db):
        db, _ = org_db
        with pytest.raises(QueryTypeError):
            evaluate(
                db, parse_query("select project where lead.grade = 'x'")
            )

    def test_non_object_step_rejected(self, org_db):
        db, _ = org_db
        with pytest.raises(QueryTypeError):
            evaluate(
                db, parse_query("select project where title.grade = 1")
            )

    def test_unknown_step_rejected(self, org_db):
        db, _ = org_db
        with pytest.raises(QueryTypeError):
            evaluate(
                db, parse_query("select project where lead.ghost = 1")
            )


class TestEvaluation:
    def test_now(self, org_db):
        db, names = org_db
        # Both projects are led by Bob (grade 5) now.
        hits = evaluate(db, parse_query(
            "select project where lead.grade >= 5"
        ))
        assert hits == sorted([names["root"], names["child"]])

    def test_at_past_instant(self, org_db):
        db, names = org_db
        # At t=5: root led by Ann with grade 1.
        hits = evaluate(db, parse_query(
            "select project where lead.grade = 1 at 5"
        ))
        assert hits == [names["root"]]

    def test_referent_history_cuts_segments(self, org_db):
        """The path value changes when the REFERENT's attribute
        changes, even if the reference itself is constant."""
        db, names = org_db
        holds = when(db, names["root"], path("lead", "grade") < 4)
        # Ann grade 1 on [0,9], 3 on [10,19] (lead until 19); Bob
        # (grade 5) from 20.
        assert holds == IntervalSet.span(0, 19)

    def test_sometime_always(self, org_db):
        db, names = org_db
        assert evaluate(db, parse_query(
            "select project where lead.grade = 1 sometime"
        )) == [names["root"]]
        assert evaluate(db, parse_query(
            "select project where lead.grade >= 1 always"
        )) == sorted([names["root"], names["child"]])

    def test_two_hop_path(self, org_db):
        db, names = org_db
        hits = evaluate(db, parse_query(
            "select project where parent.lead.grade = 3 sometime"
        ))
        assert hits == [names["child"]]

    def test_static_referent_attribute_past_is_unknown(self, org_db):
        """name is static on person: a past path read is undefined --
        the same information asymmetry as direct static reads."""
        db, names = org_db
        assert evaluate(db, parse_query(
            "select project where lead.name = 'Ann' at 5"
        )) == []
        # At the current instant it is visible.
        assert evaluate(db, parse_query(
            "select project where lead.name = 'Bob'"
        )) == sorted([names["root"], names["child"]])

    def test_null_reference_rejects_atom(self, org_db):
        db, names = org_db
        orphan = db.create_object("project", {"title": "orphan"})
        hits = evaluate(db, parse_query(
            "select project where lead.grade >= 0"
        ))
        assert orphan not in hits

    def test_deleted_referent_rejects_atom(self, org_db):
        db, names = org_db
        db.tick()
        # Re-point child's lead to Ann, then delete Bob later.
        db.update_attribute(names["child"], "lead", names["ann"])
        db.update_attribute(names["root"], "lead", names["ann"])
        db.tick()
        db.delete_object(names["bob"])
        db.tick()
        # At instants where Bob led root but is now deleted... Bob
        # still existed THEN, so the past read is fine:
        holds = when(db, names["root"], path("lead", "grade") == 5)
        assert 25 in holds  # Bob (grade 5) led root at 25, alive then

    def test_builder_sugar(self, org_db):
        db, names = org_db
        hits = (
            select("project")
            .where(path("lead", "grade") == 1)
            .at(5)
            .run(db)
        )
        assert hits == [names["root"]]
