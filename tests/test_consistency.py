"""Object consistency (Definitions 5.2-5.5, Example 5.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.objects.consistency import (
    consistency_violations,
    is_consistent,
    is_historically_consistent,
    is_historically_consistent_throughout,
    is_statically_consistent,
    meaningful_temporal_attributes,
)
from repro.temporal.intervals import Interval
from repro.temporal.temporalvalue import TemporalValue
from repro.workloads import WorkloadSpec, build_database


class TestMeaningfulAttributes:
    def test_definition_5_2(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        assert set(meaningful_temporal_attributes(obj, 50)) == {
            "name", "subproject", "participants",
        }
        # Before creation nothing is meaningful.
        assert meaningful_temporal_attributes(obj, 5) == ()

    def test_retained_attribute_meaningful_in_its_past(self, staff_db):
        db, names = staff_db
        dan = db.get_object(names["dan"])
        # dependents was recorded during the manager period [30, 59].
        assert "dependents" in meaningful_temporal_attributes(dan, 45)
        assert "dependents" not in meaningful_temporal_attributes(dan, 65)


class TestHistoricalConsistency:
    def test_example_5_3(self, project_db):
        """The Example 5.1 object is historically consistent with the
        Example 4.1 class at every probed instant."""
        db, names = project_db
        obj = db.get_object(names["i1"])
        for t in (20, 45, 46, 50, 80, 81, 90):
            assert is_historically_consistent(
                obj, "project", t, db, db, db.now
            )

    def test_throughout_agrees_with_pointwise(self, project_db):
        """The segment-wise check equals the per-instant Definition 5.3
        (on sampled instants)."""
        db, names = project_db
        obj = db.get_object(names["i1"])
        span = Interval(20, 90)
        throughout = is_historically_consistent_throughout(
            obj, "project", span, db, db, db.now
        )
        pointwise = all(
            is_historically_consistent(obj, "project", t, db, db, db.now)
            for t in range(20, 91, 7)
        )
        assert throughout == pointwise is True

    def test_missing_temporal_attribute_fails(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        hole = obj.value["name"]
        del obj.value["name"]
        assert not is_historically_consistent(
            obj, "project", 50, db, db, db.now
        )
        obj.value["name"] = hole

    def test_wrongly_typed_history_fails(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        obj.value["name"] = TemporalValue.from_items([((20, 90), 123)])
        assert not is_historically_consistent_throughout(
            obj, "project", Interval(20, 90), db, db, db.now
        )

    def test_extra_meaningful_attribute_fails(self, project_db):
        """h_state must have exactly h_type's attributes."""
        db, names = project_db
        obj = db.get_object(names["i1"])
        obj.value["intruder"] = TemporalValue.from_items([((30, 40), 1)])
        assert not is_historically_consistent_throughout(
            obj, "project", Interval(30, 40), db, db, db.now
        )
        assert is_historically_consistent_throughout(
            obj, "project", Interval(41, 90), db, db, db.now
        )
        del obj.value["intruder"]


class TestStaticConsistency:
    def test_holds(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        assert is_statically_consistent(obj, "project", db, db, db.now)

    def test_wrong_static_value_fails(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        obj.value["objective"] = 42  # not a string
        assert not is_statically_consistent(obj, "project", db, db, db.now)
        obj.value["objective"] = "Implementation"

    def test_dangling_static_reference_fails(self, project_db):
        """workplan: set-of(task) must hold CURRENT members of task."""
        db, names = project_db
        from repro.values.oid import OID

        obj = db.get_object(names["i1"])
        saved = obj.value["workplan"]
        obj.value["workplan"] = {OID(999, "task")}
        assert not is_statically_consistent(obj, "project", db, db, db.now)
        obj.value["workplan"] = saved


class TestObjectConsistency:
    def test_paper_objects_consistent(self, project_db):
        db, names = project_db
        for oid in names.values():
            assert is_consistent(db.get_object(oid), db, db, db.now)

    def test_migrated_object_consistent(self, staff_db):
        """Definition 5.5 across the employee->manager->employee story."""
        db, names = staff_db
        assert is_consistent(db.get_object(names["dan"]), db, db, db.now)

    def test_class_history_exceeding_class_lifespan(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        # Rewrite history to start before the class existed (class born
        # at 10; pretend membership from 5).
        obj.class_history = TemporalValue()
        obj.class_history.assign(5, "project")
        obj.lifespan = Interval.from_now(5)
        problems = consistency_violations(obj, db, db, db.now)
        assert any("lifespan" in p for p in problems)

    def test_unknown_class_reported(self, project_db):
        db, names = project_db
        obj = db.get_object(names["i1"])
        obj.class_history.assign(db.now, "ghost")
        problems = consistency_violations(obj, db, db, db.now)
        assert any("unknown class" in p for p in problems)

    def test_alive_object_with_no_class_reported(self, empty_db):
        from repro.objects.object import TemporalObject
        from repro.values.oid import OID

        empty_db.tick(5)
        orphan = TemporalObject(OID(1), 1, "nowhere")
        orphan.class_history = TemporalValue()  # erase it
        problems = consistency_violations(orphan, empty_db, empty_db, 5)
        assert any("no class" in p for p in problems)

    def test_superclass_consistency_implied(self, staff_db):
        """Consistency w.r.t. the most specific class implies
        consistency w.r.t. superclasses (via coercion for refined
        attributes) -- checked on the coerced view."""
        db, names = staff_db
        from repro.inheritance.coercion import as_member_of
        from repro.schema.derived_types import static_type
        from repro.types.extension import in_extension

        dan = db.get_object(names["dan"])
        view = as_member_of(dan, db.get_class("person"), db.now)
        person_static = static_type(db.get_class("person"))
        assert in_extension(view, person_static, db.now, db, now=db.now)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_engine_maintains_consistency(self, seed):
        """Whatever the engine does, every object stays Def-5.5
        consistent (randomized workloads)."""
        db = build_database(
            WorkloadSpec(n_objects=6, n_ticks=25, migration_rate=0.3,
                         seed=seed)
        )
        for obj in db.objects():
            problems = consistency_violations(obj, db, db, db.now)
            assert problems == []
