"""The type grammar (Definitions 3.1-3.4)."""

import pytest
from hypothesis import given

from repro.errors import (
    DuplicateAttributeError,
    NotAChimeraTypeError,
    TypeSyntaxError,
)
from repro.types.grammar import (
    BOOL,
    BOTTOM,
    CHARACTER,
    INTEGER,
    REAL,
    STRING,
    TIME,
    BASIC_TYPES,
    BasicType,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
    is_chimera_type,
    is_temporal_type,
    t_minus,
)

from tests.strategies import chimera_types, t_chimera_types


class TestBasicTypes:
    def test_the_five_plus_time(self):
        # BVT contains at least integer, real, bool, character, string;
        # T_Chimera adds time (Section 3.1).
        assert set(BASIC_TYPES) == {
            "integer", "real", "bool", "character", "string", "time",
        }

    def test_unknown_basic_rejected(self):
        with pytest.raises(TypeSyntaxError):
            BasicType("decimal")

    def test_equality_by_name(self):
        assert BasicType("integer") == INTEGER
        assert INTEGER != REAL

    def test_all_chimera(self):
        for t in (INTEGER, REAL, BOOL, CHARACTER, STRING, TIME):
            assert t.is_chimera()


class TestObjectTypes:
    def test_class_names_are_types(self):
        # Definition 3.1: OT = CI.
        t = ObjectType("project")
        assert t.class_name == "project"
        assert t.is_chimera()

    def test_basic_names_rejected(self):
        with pytest.raises(TypeSyntaxError):
            ObjectType("integer")

    def test_empty_name_rejected(self):
        with pytest.raises(TypeSyntaxError):
            ObjectType("")


class TestStructuredTypes:
    def test_set_list(self):
        assert SetOf(INTEGER).element == INTEGER
        assert ListOf(ObjectType("p")).is_chimera()

    def test_record_fields(self):
        r = RecordOf(a=INTEGER, b=STRING)
        assert r.names == ("a", "b")
        assert r.field_type("a") == INTEGER

    def test_record_duplicate_rejected(self):
        with pytest.raises(DuplicateAttributeError):
            RecordOf({"a": INTEGER}, a=STRING)

    def test_record_field_must_be_type(self):
        with pytest.raises(TypeSyntaxError):
            RecordOf(a="integer")  # strings are not Type terms here

    def test_record_equality_ignores_order(self):
        assert RecordOf(a=INTEGER, b=STRING) == RecordOf(b=STRING, a=INTEGER)

    def test_record_missing_field(self):
        with pytest.raises(TypeSyntaxError):
            RecordOf(a=INTEGER).field_type("z")

    def test_empty_record_is_null_type_carrier(self):
        assert RecordOf({}).is_empty()
        assert not RecordOf(a=INTEGER).is_empty()

    def test_nesting(self):
        t = SetOf(RecordOf(a=ListOf(INTEGER)))
        assert t.depth() == 4
        assert t.size() == 4


class TestTemporalTypes:
    def test_temporal_of_chimera(self):
        # Definition 3.3: one temporal type per Chimera type.
        t = TemporalType(INTEGER)
        assert is_temporal_type(t)
        assert not t.is_chimera()

    def test_nested_temporal_rejected(self):
        with pytest.raises(NotAChimeraTypeError):
            TemporalType(TemporalType(INTEGER))

    def test_temporal_inside_structure_rejected(self):
        with pytest.raises(NotAChimeraTypeError):
            TemporalType(SetOf(TemporalType(INTEGER)))

    def test_structure_of_temporal_allowed(self):
        # Definition 3.4 closes set-of/list-of/record-of over all of T.
        t = SetOf(TemporalType(INTEGER))
        assert not t.is_chimera()
        assert repr(t) == "set-of(temporal(integer))"

    def test_temporal_of_time_allowed(self):
        # time is added to BVT (Section 3.1), hence in CT.
        assert TemporalType(TIME).is_chimera() is False

    def test_t_minus(self):
        assert t_minus(TemporalType(INTEGER)) == INTEGER
        assert t_minus(TemporalType(SetOf(ObjectType("p")))) == SetOf(
            ObjectType("p")
        )

    def test_t_minus_on_static_rejected(self):
        with pytest.raises(TypeSyntaxError):
            t_minus(INTEGER)

    def test_example_3_1(self):
        """The five types of Example 3.1 are all constructible."""
        project = ObjectType("project")
        TIME
        TemporalType(INTEGER)
        ListOf(BOOL)
        TemporalType(SetOf(project))
        RecordOf(
            task=TemporalType(project), startbudget=REAL, endbudget=REAL
        )


class TestTermStructure:
    def test_subterms_preorder(self):
        t = SetOf(RecordOf(a=INTEGER))
        kinds = [type(s).__name__ for s in t.subterms()]
        assert kinds == ["SetOf", "RecordOf", "BasicType"]

    def test_mentions_object_types(self):
        assert SetOf(ObjectType("p")).mentions_object_types()
        assert not SetOf(INTEGER).mentions_object_types()

    def test_mentioned_classes(self):
        t = RecordOf(a=ObjectType("p"), b=SetOf(ObjectType("q")))
        assert t.mentioned_classes() == {"p", "q"}

    def test_bottom(self):
        assert BOTTOM.is_chimera()
        assert repr(BOTTOM) == "⊥"

    @given(chimera_types())
    def test_chimera_types_have_no_temporal(self, t):
        assert is_chimera_type(t)
        assert not any(is_temporal_type(s) for s in t.subterms())

    @given(t_chimera_types())
    def test_no_nested_temporal_anywhere(self, t):
        for sub in t.subterms():
            if is_temporal_type(sub):
                assert is_chimera_type(sub.argument)

    @given(t_chimera_types())
    def test_size_and_depth_positive(self, t):
        assert t.size() >= 1
        assert 1 <= t.depth() <= t.size()

    @given(t_chimera_types())
    def test_hashable_and_self_equal(self, t):
        assert t == t
        assert hash(t) == hash(t)
