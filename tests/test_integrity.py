"""Invariants 5.1, 5.2, 6.1, 6.2 and Definition 5.6, by maintenance
and by violation injection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.integrity import (
    check_database,
    check_extent_inclusion,
    check_extent_index_agreement,
    check_hierarchy_disjointness,
    check_invariant_5_1,
    check_invariant_5_2,
    check_object_consistency,
    check_oid_uniqueness,
    check_referential_integrity,
)
from repro.objects.object import TemporalObject
from repro.temporal.intervals import Interval
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID
from repro.workloads import WorkloadSpec, build_database


class TestMaintainedByConstruction:
    def test_paper_fixtures_clean(self, project_db, staff_db):
        for db, _names in (project_db, staff_db):
            report = check_database(db)
            assert report.ok, report.all_violations()

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_workloads_clean(self, seed):
        """Whatever sequence of engine operations runs, every invariant
        of the model holds afterwards."""
        db = build_database(
            WorkloadSpec(
                n_objects=8,
                n_ticks=30,
                migration_rate=0.25,
                delete_rate=0.05,
                seed=seed,
            )
        )
        report = check_database(db)
        assert report.ok, report.all_violations()


class TestInvariant51Injection:
    def test_extent_outside_lifespan_detected(self, staff_db):
        db, names = staff_db
        dan = db.get_object(names["dan"])
        # Shrink Dan's lifespan below his recorded memberships.
        dan.lifespan = Interval(10, 40)
        problems = check_invariant_5_1(db)
        assert any("5.1.1" in p for p in problems)

    def test_class_history_vs_proper_ext_detected(self, staff_db):
        db, names = staff_db
        dan = db.get_object(names["dan"])
        dan.class_history = TemporalValue()
        dan.class_history.assign(10, "employee")  # erase the migrations
        problems = check_invariant_5_1(db)
        assert any("5.1.2" in p for p in problems)


class TestInvariant52Injection:
    def test_lifespan_not_covered_detected(self, staff_db):
        db, names = staff_db
        dan = db.get_object(names["dan"])
        dan.lifespan = Interval(5, 65)  # exists before any membership
        problems = check_invariant_5_2(db)
        assert any("5.2.1" in p for p in problems)

    def test_c_lifespan_vs_ext_detected(self, staff_db):
        db, names = staff_db
        employee = db.get_class("employee")
        employee.history.remove_member(names["dan"], db.now)
        db.tick()
        problems = check_invariant_5_2(db)
        assert any("5.2.2" in p for p in problems)


class TestInvariant61Injection:
    def test_clean_initially(self, staff_db):
        db, _ = staff_db
        assert check_extent_inclusion(db) == []

    def test_subclass_member_not_in_superclass_detected(self, staff_db):
        db, names = staff_db
        person = db.get_class("person")
        person.history.remove_member(names["dan"], db.now)
        db.tick()
        problems = check_extent_inclusion(db)
        assert any("6.1" in p for p in problems)

    def test_lifespan_inclusion_detected(self, staff_db):
        db, _ = staff_db
        manager = db.get_class("manager")
        manager.lifespan = Interval(0, 10**6)
        person = db.get_class("person")
        person.lifespan = Interval(5, 10)
        problems = check_extent_inclusion(db)
        assert any("6.1.1" in p for p in problems)


class TestInvariant62Injection:
    def test_clean_initially(self, project_db):
        db, _ = project_db
        assert check_hierarchy_disjointness(db) == []

    def test_cross_hierarchy_membership_detected(self, project_db):
        db, names = project_db
        # Smuggle a person oid into the project extent.
        db.get_class("project").history.add_member(names["i2"], db.now)
        problems = check_hierarchy_disjointness(db)
        assert any("6.2" in p for p in problems)

    def test_brand_mismatch_detected(self, empty_db):
        db = empty_db
        db.define_class("a")
        db.define_class("z")
        foreign = OID(50, "z")
        db.get_class("a").history.add_member(foreign, 0)
        problems = check_hierarchy_disjointness(db)
        assert any("branded" in p for p in problems)


class TestDefinition56:
    def test_oid_uniqueness_clean(self, project_db):
        db, _ = project_db
        assert check_oid_uniqueness(db.objects()) == []

    def test_oid_uniqueness_violation(self):
        a = TemporalObject(OID(1), 0, "c", {"x": 1})
        b = TemporalObject(OID(1), 0, "c", {"x": 2})
        problems = check_oid_uniqueness([a, b])
        assert any("OID-UNIQUENESS" in p for p in problems)

    def test_same_tuple_twice_is_fine(self):
        a = TemporalObject(OID(1), 0, "c", {"x": 1})
        b = TemporalObject(OID(1), 0, "c", {"x": 1})
        assert check_oid_uniqueness([a, b]) == []

    def test_referential_integrity_clean(self, project_db):
        db, _ = project_db
        assert check_referential_integrity(db) == []
        assert check_referential_integrity(db, 50) == []

    def test_dangling_reference_detected(self, project_db):
        db, names = project_db
        i1 = db.get_object(names["i1"])
        i1.value["workplan"] = {OID(999, "task")}
        problems = check_referential_integrity(db)
        assert any("unknown oid" in p for p in problems)

    def test_reference_outside_lifespan_detected(self, project_db):
        db, names = project_db
        # Delete i9 by force while i1's subproject still points at it.
        db.delete_object(names["i9"], force=True)
        db.tick()
        problems = check_referential_integrity(db)
        assert any("outside the lifespan" in p for p in problems)


class TestExtentIndexAgreement:
    def test_clean(self, staff_db):
        db, _ = staff_db
        assert check_extent_index_agreement(db) == []

    def test_divergence_detected(self, staff_db):
        db, names = staff_db
        employee = db.get_class("employee")
        # Corrupt the set-valued history only (not the index).
        employee.history.ext.assign(db.now, frozenset())
        db.tick()
        problems = check_extent_index_agreement(db)
        assert problems


class TestReport:
    def test_aggregation_and_bool(self, staff_db):
        db, names = staff_db
        report = check_database(db)
        assert report.ok and bool(report)
        db.get_object(names["dan"]).value["dept"] = 42  # type violation
        report = check_database(db)
        assert not report.ok
        assert any(
            "statically consistent" in p for p in report.object_consistency
        )

    def test_object_consistency_section(self, staff_db):
        db, names = staff_db
        del db.get_object(names["dan"]).value["salary"]
        problems = check_object_consistency(db)
        assert any("historically consistent" in p for p in problems)
