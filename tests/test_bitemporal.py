"""The transaction-time extension (Section 1.1's second dimension)."""

import pytest

from repro.bitemporal import BitemporalDatabase
from repro.database.integrity import check_database
from repro.errors import TimeError
from repro.model_functions import h_state
from repro.values.structure import values_equal


@pytest.fixture
def payroll():
    """Three commits: initial load, a raise, a retroactive-looking
    second raise (valid time always moves forward; what changes across
    commits is what is *stored*)."""
    bdb = BitemporalDatabase()
    db = bdb.current
    db.define_class(
        "employee",
        attributes=[("name", "string"), ("salary", "temporal(real)")],
    )
    ann = db.create_object("employee", {"name": "Ann", "salary": 1000.0})
    tt0 = bdb.commit("initial load")
    db.tick(10)
    db.update_attribute(ann, "salary", 2000.0)
    tt1 = bdb.commit("raise at vt=10")
    db.tick(10)
    bob = db.create_object("employee", {"name": "Bob", "salary": 900.0})
    tt2 = bdb.commit("hire at vt=20")
    return bdb, {"ann": ann, "bob": bob, "tts": (tt0, tt1, tt2)}


class TestCommitLog:
    def test_transaction_times_are_sequential(self, payroll):
        bdb, names = payroll
        assert names["tts"] == (0, 1, 2)
        assert bdb.transaction_times() == (0, 1, 2)
        assert bdb.transaction_now == 3

    def test_commit_records_valid_time(self, payroll):
        bdb, _ = payroll
        assert [c.valid_time for c in bdb.commits()] == [0, 10, 20]
        assert [c.label for c in bdb.commits()] == [
            "initial load", "raise at vt=10", "hire at vt=20",
        ]

    def test_as_of_bounds(self, payroll):
        bdb, _ = payroll
        with pytest.raises(TimeError):
            bdb.as_of(3)
        with pytest.raises(TimeError):
            bdb.as_of(-1)

    def test_empty_log(self):
        with pytest.raises(TimeError):
            BitemporalDatabase().latest()


class TestAsOf:
    def test_rehydrated_states_differ_by_commit(self, payroll):
        bdb, names = payroll
        v0, v1, v2 = (bdb.as_of(tt) for tt in (0, 1, 2))
        assert v0.now == 0 and v1.now == 10 and v2.now == 20
        assert len(v0) == 1 and len(v2) == 2
        # The raise is invisible at tt=0, visible from tt=1.
        ann = names["ann"]
        assert v0.get_object(ann).value["salary"].at(0) == 1000.0
        assert v1.get_object(ann).value["salary"].at(10) == 2000.0

    def test_every_version_is_integral(self, payroll):
        bdb, _ = payroll
        for tt in bdb.transaction_times():
            report = check_database(bdb.as_of(tt))
            assert report.ok, report.all_violations()

    def test_versions_are_isolated(self, payroll):
        """Mutating a rehydrated version affects neither the log nor
        the current database (transaction time is append-only)."""
        bdb, names = payroll
        version = bdb.as_of(2)
        version.tick()
        version.update_attribute(names["ann"], "salary", 9999.0)
        again = bdb.as_of(2)
        assert again.get_object(names["ann"]).value["salary"].at(
            again.now
        ) == 2000.0
        assert bdb.current.get_object(names["ann"]).value["salary"].at(
            bdb.current.now
        ) == 2000.0

    def test_latest(self, payroll):
        bdb, _ = payroll
        assert bdb.latest().now == 20


class TestBitemporalQueries:
    def test_believed_extent(self, payroll):
        """What did we believe at tt about the population at vt?"""
        bdb, names = payroll
        # At tt=0 we had stored only Ann.
        assert bdb.believed_extent(0, "employee", 0) == frozenset(
            {names["ann"]}
        )
        # At tt=2, the belief about vt=20 includes Bob...
        assert names["bob"] in bdb.believed_extent(2, "employee", 20)
        # ...but the belief about vt=5 still does not (valid time!).
        assert names["bob"] not in bdb.believed_extent(2, "employee", 5)

    def test_belief_history(self, payroll):
        bdb, names = payroll
        evolution = bdb.belief_history("employee", 0)
        assert [tt for tt, _extent in evolution] == [0, 1, 2]
        # The belief about valid instant 0 never changed.
        assert all(
            extent == frozenset({names["ann"]})
            for _tt, extent in evolution
        )

    def test_valid_time_queries_inside_a_version(self, payroll):
        bdb, names = payroll
        version = bdb.as_of(1)
        assert values_equal(
            h_state(version, names["ann"], 5)["salary"], 1000.0
        )
        assert values_equal(
            h_state(version, names["ann"], 10)["salary"], 2000.0
        )

    def test_query_language_inside_a_version(self, payroll):
        from repro.query import parse_query, evaluate

        bdb, names = payroll
        hits = evaluate(
            bdb.as_of(2),
            parse_query("select employee where salary < 1000.0"),
        )
        assert hits == [names["bob"]]
        assert evaluate(
            bdb.as_of(0),
            parse_query("select employee where salary < 1000.0"),
        ) == []
