"""The transaction-time extension (Section 1.1's second dimension)."""

import pytest

from repro.bitemporal import BitemporalDatabase
from repro.database.integrity import check_database
from repro.errors import TimeError
from repro.model_functions import h_state
from repro.values.structure import values_equal


@pytest.fixture
def payroll():
    """Three commits: initial load, a raise, a retroactive-looking
    second raise (valid time always moves forward; what changes across
    commits is what is *stored*)."""
    bdb = BitemporalDatabase()
    db = bdb.current
    db.define_class(
        "employee",
        attributes=[("name", "string"), ("salary", "temporal(real)")],
    )
    ann = db.create_object("employee", {"name": "Ann", "salary": 1000.0})
    tt0 = bdb.commit("initial load")
    db.tick(10)
    db.update_attribute(ann, "salary", 2000.0)
    tt1 = bdb.commit("raise at vt=10")
    db.tick(10)
    bob = db.create_object("employee", {"name": "Bob", "salary": 900.0})
    tt2 = bdb.commit("hire at vt=20")
    return bdb, {"ann": ann, "bob": bob, "tts": (tt0, tt1, tt2)}


class TestCommitLog:
    def test_transaction_times_are_sequential(self, payroll):
        bdb, names = payroll
        assert names["tts"] == (0, 1, 2)
        assert bdb.transaction_times() == (0, 1, 2)
        assert bdb.transaction_now == 3

    def test_commit_records_valid_time(self, payroll):
        bdb, _ = payroll
        assert [c.valid_time for c in bdb.commits()] == [0, 10, 20]
        assert [c.label for c in bdb.commits()] == [
            "initial load", "raise at vt=10", "hire at vt=20",
        ]

    def test_as_of_bounds(self, payroll):
        bdb, _ = payroll
        with pytest.raises(TimeError):
            bdb.as_of(3)
        with pytest.raises(TimeError):
            bdb.as_of(-1)

    def test_empty_log(self):
        with pytest.raises(TimeError):
            BitemporalDatabase().latest()


class TestAsOf:
    def test_rehydrated_states_differ_by_commit(self, payroll):
        bdb, names = payroll
        v0, v1, v2 = (bdb.as_of(tt) for tt in (0, 1, 2))
        assert v0.now == 0 and v1.now == 10 and v2.now == 20
        assert len(v0) == 1 and len(v2) == 2
        # The raise is invisible at tt=0, visible from tt=1.
        ann = names["ann"]
        assert v0.get_object(ann).value["salary"].at(0) == 1000.0
        assert v1.get_object(ann).value["salary"].at(10) == 2000.0

    def test_every_version_is_integral(self, payroll):
        bdb, _ = payroll
        for tt in bdb.transaction_times():
            report = check_database(bdb.as_of(tt))
            assert report.ok, report.all_violations()

    def test_versions_are_isolated(self, payroll):
        """Mutating a rehydrated version affects neither the log nor
        the current database (transaction time is append-only)."""
        bdb, names = payroll
        version = bdb.as_of(2)
        version.tick()
        version.update_attribute(names["ann"], "salary", 9999.0)
        again = bdb.as_of(2)
        assert again.get_object(names["ann"]).value["salary"].at(
            again.now
        ) == 2000.0
        assert bdb.current.get_object(names["ann"]).value["salary"].at(
            bdb.current.now
        ) == 2000.0

    def test_latest(self, payroll):
        bdb, _ = payroll
        assert bdb.latest().now == 20


class TestBitemporalQueries:
    def test_believed_extent(self, payroll):
        """What did we believe at tt about the population at vt?"""
        bdb, names = payroll
        # At tt=0 we had stored only Ann.
        assert bdb.believed_extent(0, "employee", 0) == frozenset(
            {names["ann"]}
        )
        # At tt=2, the belief about vt=20 includes Bob...
        assert names["bob"] in bdb.believed_extent(2, "employee", 20)
        # ...but the belief about vt=5 still does not (valid time!).
        assert names["bob"] not in bdb.believed_extent(2, "employee", 5)

    def test_belief_history(self, payroll):
        bdb, names = payroll
        evolution = bdb.belief_history("employee", 0)
        assert [tt for tt, _extent in evolution] == [0, 1, 2]
        # The belief about valid instant 0 never changed.
        assert all(
            extent == frozenset({names["ann"]})
            for _tt, extent in evolution
        )

    def test_valid_time_queries_inside_a_version(self, payroll):
        bdb, names = payroll
        version = bdb.as_of(1)
        assert values_equal(
            h_state(version, names["ann"], 5)["salary"], 1000.0
        )
        assert values_equal(
            h_state(version, names["ann"], 10)["salary"], 2000.0
        )

    def test_query_language_inside_a_version(self, payroll):
        from repro.query import parse_query, evaluate

        bdb, names = payroll
        hits = evaluate(
            bdb.as_of(2),
            parse_query("select employee where salary < 1000.0"),
        )
        assert hits == [names["bob"]]
        assert evaluate(
            bdb.as_of(0),
            parse_query("select employee where salary < 1000.0"),
        ) == []


class TestJournalInterplay:
    """The transaction-time axis against the WAL.

    When the ``current`` database of a bitemporal store is journaled,
    each commit captures a state the journal can also reproduce: the
    recorded-time order (transaction times) must match LSN order, and
    after a crash, point-in-time recovery at a commit's LSN must
    rebuild exactly the state that commit froze -- even though the
    crash may have destroyed the tail of the log.
    """

    DB_DIR = "/db"

    def _run(self, seed):
        """Grow a journaled bitemporal store until the seeded crash
        plan fires (or the workload ends); return the store, the
        simulated disk, and one ``(tt, lsn, valid_time)`` mark per
        commit that completed before the crash."""
        import random

        from repro.database.wal import Journal
        from repro.faults import (
            FaultInjector,
            SimulatedCrash,
            SimulatedFS,
            random_plan,
        )

        rng = random.Random(seed)
        plan = random_plan(rng, max_occurrence=25)
        fs = SimulatedFS(injector=FaultInjector(plan), rng=rng)
        bdb = BitemporalDatabase()
        marks = []
        try:
            journal = Journal(f"{self.DB_DIR}/journal.wal", fs=fs)
            db = bdb.current
            db.attach_journal(journal)
            db.define_class(
                "employee",
                attributes=[
                    ("name", "string"), ("salary", "temporal(real)"),
                ],
            )
            oids = []
            for step in range(12):
                if not oids or rng.random() < 0.35:
                    oids.append(db.create_object(
                        "employee",
                        {"name": f"e{step}", "salary": float(step)},
                    ))
                else:
                    db.update_attribute(
                        rng.choice(oids), "salary", step * 10.0
                    )
                db.tick(rng.randint(1, 3))
                tt = bdb.commit(f"step {step}")
                marks.append((tt, journal.last_lsn, db.now))
        except SimulatedCrash:
            pass
        return bdb, fs, marks

    @pytest.mark.parametrize("seed", range(8))
    def test_recorded_time_order_matches_lsn_order(self, seed):
        _bdb, _fs, marks = self._run(seed)
        tts = [tt for tt, _lsn, _vt in marks]
        lsns = [lsn for _tt, lsn, _vt in marks]
        vts = [vt for _tt, _lsn, vt in marks]
        # Transaction times are assigned in LSN order, strictly.
        assert tts == sorted(tts) and len(set(tts)) == len(tts)
        assert lsns == sorted(lsns) and len(set(lsns)) == len(lsns)
        # Valid time never runs backwards along the recorded axis.
        assert vts == sorted(vts)

    @pytest.mark.parametrize("seed", range(8))
    def test_pitr_rebuilds_each_commit_after_crash(self, seed):
        from repro.database.recovery import recover
        from repro.errors import ReplicationError
        from repro.faults.harness import _compare
        from repro.replication import restore_to

        bdb, fs, marks = self._run(seed)
        if not marks:
            pytest.skip("crash fired before the first commit")
        disk = fs.crash_view()
        _db, report = recover(self.DB_DIR, fs=disk)
        durable = [m for m in marks if m[1] <= report.last_lsn]
        # Every commit whose LSN survived the crash must round-trip:
        # restoring the journal to that LSN yields the committed state.
        assert durable, "recovery lost every committed mark"
        for tt, lsn, valid_time in durable:
            try:
                restored, _ = restore_to(self.DB_DIR, lsn=lsn, fs=disk)
            except ReplicationError:
                pytest.fail(f"tt={tt} lsn={lsn} not restorable")
            frozen = bdb.as_of(tt)
            assert restored.now == frozen.now == valid_time
            assert _compare(restored, frozen) == []

    def test_crash_free_round_trip_is_exact(self):
        bdb, fs, marks = self._run(seed=99)
        if not (fs._injector.fired is False and len(marks) == 12):
            pytest.skip("seed 99 crashed; covered by the seeded matrix")
        assert [tt for tt, _l, _v in marks] == list(range(12))
