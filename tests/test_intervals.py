"""Closed intervals: construction, membership, algebra (Section 3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidIntervalError
from repro.temporal.instants import NOW
from repro.temporal.intervals import Interval, NULL_INTERVAL

from tests.strategies import intervals


class TestConstruction:
    def test_simple(self):
        i = Interval(3, 7)
        assert i.start == 3 and i.end == 7

    def test_instant_interval(self):
        assert Interval.instant(5) == Interval(5, 5)

    def test_reversed_endpoints_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(7, 3)

    def test_negative_start_rejected(self):
        with pytest.raises(Exception):
            Interval(-1, 3)

    def test_null_interval(self):
        assert NULL_INTERVAL.is_empty
        assert Interval.empty() is NULL_INTERVAL

    def test_moving_interval(self):
        i = Interval.from_now(10)
        assert i.is_moving
        assert i.end is NOW

    def test_repr(self):
        assert repr(Interval(3, 7)) == "[3,7]"
        assert repr(NULL_INTERVAL) == "[]"


class TestMembership:
    def test_inclusive_both_ends(self):
        i = Interval(3, 7)
        assert 3 in i and 7 in i and 5 in i

    def test_outside(self):
        i = Interval(3, 7)
        assert 2 not in i and 8 not in i

    def test_single_instant(self):
        assert 5 in Interval.instant(5)
        assert 4 not in Interval.instant(5)

    def test_null_contains_nothing(self):
        assert 0 not in NULL_INTERVAL

    def test_bool_is_not_an_instant(self):
        assert True not in Interval(0, 5)

    def test_moving_contains_after_start(self):
        i = Interval.from_now(10)
        assert i.contains(10) and i.contains(1000)
        assert not i.contains(9)

    def test_moving_with_explicit_now(self):
        i = Interval.from_now(10)
        assert i.contains(15, now=20)
        assert not i.contains(25, now=20)


class TestResolve:
    def test_concrete_unchanged(self):
        i = Interval(3, 7)
        assert i.resolve(100) is i

    def test_moving_resolves(self):
        assert Interval.from_now(10).resolve(25) == Interval(10, 25)

    def test_moving_before_start_resolves_empty(self):
        assert Interval.from_now(10).resolve(5).is_empty

    def test_duration(self):
        assert Interval(3, 7).duration() == 5
        assert Interval.instant(4).duration() == 1
        assert NULL_INTERVAL.duration() == 0
        assert Interval.from_now(10).duration(now=14) == 5

    def test_instants_iteration(self):
        assert list(Interval(3, 6).instants()) == [3, 4, 5, 6]
        assert list(NULL_INTERVAL.instants()) == []


class TestAlgebra:
    def test_overlap(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))
        assert not Interval(1, 4).overlaps(Interval(5, 9))

    def test_adjacent_discrete(self):
        # [3,5] and [6,9] abut: time is discrete (paper's coalescing).
        assert Interval(3, 5).adjacent(Interval(6, 9))
        assert Interval(6, 9).adjacent(Interval(3, 5))
        assert not Interval(3, 5).adjacent(Interval(7, 9))

    def test_intersect(self):
        assert Interval(1, 6).intersect(Interval(4, 9)) == Interval(4, 6)
        assert Interval(1, 3).intersect(Interval(5, 9)).is_empty

    def test_union_overlapping(self):
        assert Interval(1, 6).union(Interval(4, 9)) == Interval(1, 9)

    def test_union_adjacent(self):
        assert Interval(3, 5).union(Interval(6, 9)) == Interval(3, 9)

    def test_union_separated_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(1, 3).union(Interval(6, 9))

    def test_union_with_null(self):
        assert Interval(1, 3).union(NULL_INTERVAL) == Interval(1, 3)

    def test_difference_middle_splits(self):
        pieces = Interval(1, 9).difference(Interval(4, 6))
        assert pieces == (Interval(1, 3), Interval(7, 9))

    def test_difference_disjoint(self):
        assert Interval(1, 3).difference(Interval(5, 9)) == (Interval(1, 3),)

    def test_difference_covering(self):
        assert Interval(4, 6).difference(Interval(1, 9)) == ()

    def test_issubset(self):
        assert Interval(4, 6).issubset(Interval(1, 9))
        assert not Interval(1, 9).issubset(Interval(4, 6))
        assert NULL_INTERVAL.issubset(Interval(1, 2))
        assert not Interval(1, 2).issubset(NULL_INTERVAL)

    @given(intervals(), intervals())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals())
    def test_intersection_is_lower_bound(self, a, b):
        meet = a.intersect(b)
        assert meet.issubset(a) and meet.issubset(b)

    @given(intervals())
    def test_difference_with_self_is_empty(self, a):
        assert a.difference(a) == ()

    @given(intervals(), intervals())
    def test_difference_disjoint_from_subtrahend(self, a, b):
        for piece in a.difference(b):
            assert not piece.overlaps(b)

    @given(intervals(), intervals())
    def test_overlap_iff_nonempty_intersection(self, a, b):
        assert a.overlaps(b) == (not a.intersect(b).is_empty)

    @given(intervals(), intervals())
    def test_duration_of_union_when_defined(self, a, b):
        if a.overlaps(b) or a.adjacent(b):
            union = a.union(b)
            inter = a.intersect(b)
            assert (
                union.duration()
                == a.duration() + b.duration() - inter.duration()
            )
