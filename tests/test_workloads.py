"""The workload generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.integrity import check_database
from repro.temporal.temporalvalue import TemporalValue
from repro.workloads import (
    WorkloadSpec,
    build_database,
    standard_schema,
    synthetic_history,
)


class TestSyntheticHistory:
    def test_pair_count(self):
        for n in (0, 1, 10, 100):
            assert len(synthetic_history(n, coalesce=False)) == n

    def test_deterministic_in_seed(self):
        assert synthetic_history(50, seed=7) == synthetic_history(50, seed=7)
        assert synthetic_history(50, seed=7) != synthetic_history(50, seed=8)

    def test_fully_concrete(self):
        history = synthetic_history(20, seed=1)
        assert not history.has_open_pair()

    def test_uncoalesced_variant(self):
        raw = synthetic_history(50, seed=3, coalesce=False)
        assert raw.coalesced() == synthetic_history(50, seed=3)

    def test_gaps_appear(self):
        history = synthetic_history(100, seed=0, gap_probability=0.5)
        domain = history.domain()
        assert len(domain) > 1  # not one contiguous interval


class TestStandardSchema:
    def test_shape(self, empty_db):
        standard_schema(empty_db, temporal_attributes=3, static_attributes=1)
        employee = empty_db.get_class("employee")
        assert "metric2" in employee.attributes
        assert "note0" in employee.attributes
        assert empty_db.isa.isa_le("manager", "person")
        assert "project" in empty_db.class_names()

    def test_manager_inherits_payload(self, empty_db):
        standard_schema(empty_db)
        manager = empty_db.get_class("manager")
        assert "salary" in manager.attributes
        assert "dependents" in manager.attributes


class TestBuildDatabase:
    def test_deterministic(self):
        spec = WorkloadSpec(n_objects=5, n_ticks=20, seed=11)
        a = build_database(spec)
        b = build_database(spec)
        assert len(a) == len(b)
        assert a.now == b.now
        for obj_a, obj_b in zip(a.objects(), b.objects()):
            assert obj_a.oid == obj_b.oid
            assert obj_a.class_history == obj_b.class_history

    def test_objects_accumulate_history(self):
        db = build_database(
            WorkloadSpec(n_objects=5, n_ticks=40, update_rate=0.9, seed=2)
        )
        lengths = [
            len(obj.value["salary"])
            for obj in db.objects()
            if isinstance(obj.value.get("salary"), TemporalValue)
        ]
        assert max(lengths) > 3

    def test_migrations_happen(self):
        db = build_database(
            WorkloadSpec(
                n_objects=6, n_ticks=60, migration_rate=0.5, seed=3
            )
        )
        migrated = [
            obj
            for obj in db.objects()
            if len(obj.class_history) > 1
        ]
        assert migrated

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10**6))
    def test_always_integrity_clean(self, seed):
        db = build_database(
            WorkloadSpec(
                n_objects=6,
                n_ticks=25,
                migration_rate=0.3,
                delete_rate=0.1,
                seed=seed,
            )
        )
        report = check_database(db)
        assert report.ok, report.all_violations()


class TestCrossHierarchyWorkloads:
    def test_projects_reference_employees(self):
        db = build_database(
            WorkloadSpec(
                n_objects=6, n_ticks=30, n_projects=3,
                project_update_rate=0.4, migration_rate=0.2, seed=7,
            )
        )
        report = check_database(db)
        assert report.ok, report.all_violations()
        projects = db.pi("project", db.now)
        assert len(projects) == 3
        from repro.objects.references import referenced_oids

        referencing = [
            oid for oid in projects
            if referenced_oids(db.get_object(oid), db.now, db.now)
        ]
        assert referencing  # cross-hierarchy references exist

    @settings(max_examples=3, deadline=None)
    @given(st.integers(0, 500))
    def test_invariant_6_2_under_cross_references(self, seed):
        """Cross-hierarchy REFERENCES are fine; cross-hierarchy
        MEMBERSHIP never happens (Invariant 6.2)."""
        from repro.database.integrity import check_hierarchy_disjointness

        db = build_database(
            WorkloadSpec(
                n_objects=5, n_ticks=20, n_projects=2,
                project_update_rate=0.5, migration_rate=0.3, seed=seed,
            )
        )
        assert check_hierarchy_disjointness(db) == []
