"""h_state, s_state and snapshot (Table 3, Sections 5.2-5.3)."""

import pytest

from repro.errors import LifespanError, SnapshotUndefinedError
from repro.objects.state import h_state, s_state, snapshot
from repro.values.records import RecordValue
from repro.values.structure import values_equal

from tests.test_object import make_historical
from repro.objects.object import TemporalObject
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID


class TestHState:
    def test_example_5_2(self):
        """h_state(i1, 50) from Example 5.2."""
        obj = make_historical()
        state = h_state(obj, 50, now=90)
        assert values_equal(
            state,
            RecordValue(
                name="IDEA",
                subproject=OID(9),
                participants=frozenset({OID(2), OID(3)}),
            ),
        )

    def test_only_meaningful_attributes(self):
        obj = make_historical()
        obj.value["bonus"] = TemporalValue.from_items([((30, 40), 7)])
        assert "bonus" in h_state(obj, 35, now=90).names
        assert "bonus" not in h_state(obj, 50, now=90).names

    def test_outside_lifespan_raises(self):
        with pytest.raises(LifespanError):
            h_state(make_historical(), 5, now=90)

    def test_includes_retained_histories(self):
        obj = make_historical()
        obj.retained["old"] = TemporalValue.from_items([((25, 30), "x")])
        assert h_state(obj, 28, now=90)["old"] == "x"

    def test_static_object_has_empty_h_state(self):
        static = TemporalObject(OID(5), 0, "person", {"name": "Ann"})
        assert len(h_state(static, 10, now=20)) == 0


class TestSState:
    def test_example_5_2(self):
        """s_state(i1) from Example 5.2."""
        state = s_state(make_historical())
        assert values_equal(
            state,
            RecordValue(
                objective="Implementation", workplan={OID(7)}
            ),
        )

    def test_all_temporal_object_has_empty_s_state(self):
        obj = TemporalObject(
            OID(1), 0, "c",
            {"a": TemporalValue.from_items([((0, 5), 1)])},
        )
        assert len(s_state(obj)) == 0


class TestSnapshot:
    def test_snapshot_at_now(self):
        """snapshot(i1, now) from Section 5.3."""
        obj = make_historical()
        snap = snapshot(obj, 90, now=90)
        assert values_equal(
            snap,
            RecordValue(
                name="IDEA",
                objective="Implementation",
                workplan={OID(7)},
                subproject=OID(9),
                participants=frozenset({OID(2), OID(3), OID(8)}),
            ),
        )

    def test_undefined_for_past_with_static_attributes(self):
        """snapshot(i1, t) undefined for t != now (Section 5.3)."""
        obj = make_historical()
        with pytest.raises(SnapshotUndefinedError):
            snapshot(obj, 50, now=90)

    def test_needs_now_when_static_attributes(self):
        with pytest.raises(SnapshotUndefinedError):
            snapshot(make_historical(), 50)

    def test_all_temporal_coincides_with_h_state(self):
        """Footnote 8: snapshot == h_state for purely temporal objects."""
        obj = TemporalObject(
            OID(1), 0, "c",
            {
                "a": TemporalValue.from_items([((0, 10), 1), ((11, 20), 2)]),
                "b": TemporalValue.from_items([((5, 15), "x")]),
            },
        )
        for t in (0, 7, 12, 20):
            assert values_equal(
                snapshot(obj, t, now=30), h_state(obj, t, now=30)
            )

    def test_static_object_snapshot_is_current_state(self):
        static = TemporalObject(OID(5), 0, "person", {"name": "Ann"})
        snap = snapshot(static, 42, now=42)
        assert values_equal(snap, RecordValue(name="Ann"))

    def test_outside_lifespan(self):
        with pytest.raises(LifespanError):
            snapshot(make_historical(), 5, now=90)
