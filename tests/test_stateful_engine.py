"""Stateful property testing of the engine.

A hypothesis rule-based state machine drives an arbitrary interleaving
of engine operations -- tick, create, update (temporal and static),
migrate up/down, delete, schema evolution (add/remove attributes),
retroactive corrections --
and asserts, as the machine invariant, the
full integrity suite: Invariants 5.1/5.2/6.1/6.2, Definition 5.6, and
Definition 5.5 consistency for every object.  Hypothesis shrinks any
violating sequence to a minimal reproduction.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.database.database import TemporalDatabase
from repro.database.integrity import check_database
from repro.errors import ReferentialIntegrityError
from repro.values.null import NULL


class EngineMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.db = TemporalDatabase()
        self.db.define_class("person", attributes=[("name", "string")])
        self.db.define_class(
            "employee",
            parents=["person"],
            attributes=[
                ("salary", "temporal(real)"),
                ("mentor", "temporal(person)"),
                ("dept", "string"),
            ],
        )
        self.db.define_class(
            "manager",
            parents=["employee"],
            attributes=[("officialcar", "string")],
        )
        self.counter = 0
        self.ops_since_tick = 0
        self.extra_attribute_present = False

    # -- helpers ----------------------------------------------------------

    def _live(self):
        return [o.oid for o in self.db.live_objects()]

    def _pick(self, data, pool):
        return pool[data.draw(st.integers(0, len(pool) - 1))]

    # -- rules ------------------------------------------------------------

    @rule()
    def tick(self) -> None:
        self.db.tick()
        self.ops_since_tick = 0

    @rule(salary=st.floats(0, 10_000, allow_nan=False))
    def create(self, salary: float) -> None:
        self.counter += 1
        self.db.create_object(
            "employee",
            {"name": f"e{self.counter}", "salary": salary, "dept": "R"},
        )

    @precondition(lambda self: self._live())
    @rule(data=st.data(), salary=st.floats(0, 10_000, allow_nan=False))
    def update_salary(self, data, salary: float) -> None:
        oid = self._pick(data, self._live())
        self.db.update_attribute(oid, "salary", salary)

    @precondition(lambda self: len(self._live()) >= 2)
    @rule(data=st.data())
    def update_mentor(self, data) -> None:
        live = self._live()
        oid = self._pick(data, live)
        other = self._pick(data, [o for o in live if o != oid])
        self.db.update_attribute(oid, "mentor", other)

    @precondition(lambda self: self._live())
    @rule(data=st.data())
    def clear_mentor(self, data) -> None:
        oid = self._pick(data, self._live())
        self.db.update_attribute(oid, "mentor", NULL)

    @precondition(lambda self: self._live())
    @rule(data=st.data())
    def migrate(self, data) -> None:
        oid = self._pick(data, self._live())
        current = self.db.get_object(oid).current_class(self.db.now)
        if current == "employee":
            self.db.migrate(oid, "manager", {"officialcar": "M"})
        else:
            self.db.migrate(oid, "employee")

    @precondition(lambda self: self._live())
    @rule(data=st.data())
    def delete(self, data) -> None:
        oid = self._pick(data, self._live())
        obj = self.db.get_object(oid)
        if obj.lifespan.start >= self.db.now:
            return  # cannot die in the creation tick
        try:
            self.db.delete_object(oid)
        except ReferentialIntegrityError:
            pass  # currently mentored by someone; legal refusal

    @precondition(lambda self: self._live())
    @rule(data=st.data(), value=st.floats(0, 9_999, allow_nan=False))
    def correct_salary(self, data, value: float) -> None:
        oid = self._pick(data, self._live())
        obj = self.db.get_object(oid)
        born = obj.lifespan.start
        if born >= self.db.now:
            return
        start = born + data.draw(
            st.integers(0, self.db.now - born), label="start"
        )
        end = start + data.draw(
            st.integers(0, self.db.now - start), label="len"
        )
        self.db.correct_attribute(oid, "salary", start, end, value)

    @precondition(lambda self: not self.extra_attribute_present)
    @rule(temporal=st.booleans())
    def add_attribute(self, temporal: bool) -> None:
        domain = "temporal(integer)" if temporal else "integer"
        self.db.add_attribute("employee", ("extra", domain))
        self.extra_attribute_present = True

    @precondition(lambda self: self.extra_attribute_present)
    @rule()
    def remove_attribute(self) -> None:
        self.db.remove_attribute("employee", "extra")
        self.extra_attribute_present = False

    @precondition(lambda self: self.extra_attribute_present)
    @rule(data=st.data(), value=st.integers(0, 9))
    def update_extra(self, data, value: int) -> None:
        live = self._live()
        if not live:
            return
        oid = self._pick(data, live)
        self.db.update_attribute(oid, "extra", value)

    # -- the machine invariant ------------------------------------------------

    @invariant()
    def model_invariants_hold(self) -> None:
        if not hasattr(self, "db"):
            return
        report = check_database(self.db)
        assert report.ok, report.all_violations()


EngineMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestEngineMachine = EngineMachine.TestCase
