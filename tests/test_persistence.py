"""JSON persistence: value codec and whole-database round trips."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.integrity import check_database
from repro.database.persistence import (
    database_from_json,
    database_to_json,
    decode_value,
    encode_value,
)
from repro.errors import PersistenceError
from repro.model_functions import h_state, m_lifespan, pi, snapshot
from repro.temporal.temporalvalue import TemporalValue
from repro.values.null import NULL
from repro.values.oid import OID
from repro.values.records import RecordValue
from repro.values.structure import values_equal
from repro.workloads import WorkloadSpec, build_database

from tests.strategies import typed_values


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            NULL,
            42,
            1.5,
            True,
            "text",
            OID(3, "person"),
            frozenset({1, 2}),
            (1, "x"),
            RecordValue(a=1, b=frozenset({OID(1)})),
            TemporalValue.from_items([((0, 5), 1), ((8, 9), NULL)]),
        ],
    )
    def test_roundtrip(self, value):
        encoded = encode_value(value)
        json.dumps(encoded)  # must be JSON-serializable
        assert values_equal(decode_value(encoded), value)

    def test_open_pair_roundtrip(self):
        tv = TemporalValue()
        tv.assign(5, "v")
        decoded = decode_value(encode_value(tv))
        assert decoded.has_open_pair()
        assert decoded == tv

    def test_nested(self):
        value = RecordValue(
            history=TemporalValue.from_items(
                [((0, 3), frozenset({OID(1, "h")}))]
            ),
            plain=[1, [2, NULL]],
        )
        assert values_equal(decode_value(encode_value(value)), value)

    def test_unencodable_rejected(self):
        with pytest.raises(PersistenceError):
            encode_value(object())

    def test_malformed_rejected(self):
        with pytest.raises(PersistenceError):
            decode_value({"no": "kind"})
        with pytest.raises(PersistenceError):
            decode_value({"$kind": "alien"})

    @given(typed_values())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_generated_values(self, pair):
        _t, value = pair
        assert values_equal(decode_value(encode_value(value)), value)


class TestDatabaseRoundtrip:
    def test_paper_fixture(self, project_db):
        db, names = project_db
        clone = database_from_json(database_to_json(db))
        assert clone.now == db.now
        assert len(clone) == len(db)
        assert set(clone.class_names()) == set(db.class_names())
        report = check_database(clone)
        assert report.ok, report.all_violations()
        # Queries agree.
        i1 = names["i1"]
        assert values_equal(h_state(clone, i1, 50), h_state(db, i1, 50))
        assert pi(clone, "project", 30) == pi(db, "project", 30)
        assert m_lifespan(clone, i1, "project") == m_lifespan(
            db, i1, "project"
        )

    def test_migration_state_survives(self, staff_db):
        db, names = staff_db
        clone = database_from_json(database_to_json(db))
        dan = clone.get_object(names["dan"])
        assert "dependents" in dan.retained
        assert [c for _i, c in dan.class_history.pairs()] == [
            "employee", "manager", "employee",
        ]
        assert check_database(clone).ok

    def test_clone_remains_usable(self, staff_db):
        db, names = staff_db
        clone = database_from_json(database_to_json(db))
        clone.tick()
        clone.update_attribute(names["dan"], "salary", 4000.0)
        fresh = clone.create_object("person", {"name": "New"})
        assert fresh.serial > max(o.oid.serial for o in db.objects())
        assert check_database(clone).ok

    def test_isa_preserved(self, staff_db):
        db, _ = staff_db
        clone = database_from_json(database_to_json(db))
        assert clone.isa.isa_le("manager", "person")
        assert clone.isa.roots() == db.isa.roots()

    def test_bad_format_rejected(self):
        with pytest.raises(PersistenceError):
            database_from_json("{}")
        with pytest.raises(PersistenceError):
            database_from_json("not json")

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 1000))
    def test_random_databases_roundtrip(self, seed):
        db = build_database(
            WorkloadSpec(n_objects=5, n_ticks=15, migration_rate=0.3,
                         seed=seed)
        )
        clone = database_from_json(database_to_json(db))
        assert check_database(clone).ok
        for obj in db.objects():
            twin = clone.get_object(obj.oid)
            assert values_equal(obj.value_record(), twin.value_record())
            assert obj.class_history == twin.class_history
            assert obj.lifespan == twin.lifespan


class TestOidRetirement:
    def test_deleted_top_oid_is_never_reissued(self, staff_db):
        """Regression: the loader used to rebuild the oid counter as
        max(live serials) + 1, so deleting the highest-oid object and
        round-tripping re-issued its oid -- a Def. 5.6 violation
        (oids must never be reused, even across deletions)."""
        db, _names = staff_db
        top = max(db.objects(), key=lambda o: o.oid.serial)
        db.tick()
        db.delete_object(top.oid, force=True)
        clone = database_from_json(database_to_json(db))
        clone.tick()
        minted = clone.create_object("person", {"name": "After"})
        assert minted.serial > top.oid.serial
        assert minted != top.oid
        assert check_database(clone).ok

    def test_counter_round_trips_exactly(self, staff_db):
        db, _ = staff_db
        clone = database_from_json(database_to_json(db))
        assert clone._oids.next_serial == db._oids.next_serial

    def test_legacy_documents_still_load(self, staff_db):
        """Documents written before ``next_oid`` existed fall back to
        max(live serials) + 1 -- lossy, but loadable."""
        db, _ = staff_db
        doc = json.loads(database_to_json(db))
        del doc["next_oid"]
        clone = database_from_json(json.dumps(doc))
        top = max(o.oid.serial for o in db.objects())
        assert clone._oids.next_serial == top + 1


class TestSchemaMetadataRoundtrip:
    @staticmethod
    def _evolved_db(seed):
        db = build_database(
            WorkloadSpec(n_objects=4, n_ticks=10, migration_rate=0.2,
                         seed=seed)
        )
        db.tick()
        db.add_attribute("employee", ("grade", "string"))
        db.tick()
        db.remove_attribute("employee", "grade")
        db.define_class("ephemeral", attributes=[("x", "integer")])
        db.tick()
        db.drop_class("ephemeral")
        return db

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 1000))
    def test_retired_attributes_and_lifespans_survive(self, seed):
        db = self._evolved_db(seed)
        clone = database_from_json(database_to_json(db))
        assert check_database(clone).ok
        employee = clone.get_class("employee")
        original = db.get_class("employee")
        assert set(employee.retired_attributes) == set(
            original.retired_attributes
        )
        retired, retired_at = employee.retired_attributes["grade"][-1]
        wanted, wanted_at = original.retired_attributes["grade"][-1]
        assert retired_at == wanted_at
        assert retired.declared_at == wanted.declared_at
        dropped = clone.get_class("ephemeral")
        assert dropped.lifespan == db.get_class("ephemeral").lifespan
        assert not dropped.lifespan.is_moving

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 1000))
    def test_class_creation_instants_survive(self, seed):
        db = self._evolved_db(seed)
        clone = database_from_json(database_to_json(db))
        for cls in db.classes():
            twin = clone.get_class(cls.name)
            # created_at is carried as the lifespan's start instant.
            assert twin.lifespan.start == cls.lifespan.start
            assert twin.lifespan == cls.lifespan
            for name, attr in cls.attributes.items():
                assert twin.attributes[name].declared_at == attr.declared_at


class TestMethodBodies:
    def test_bodies_are_not_persisted(self, empty_db):
        """Method bodies are Python callables: the signature round-trips,
        the body does not (documented limitation -- re-attach bodies
        after loading)."""
        from repro.errors import SchemaError
        from repro.schema.method import MethodSignature

        db = empty_db
        db.define_class(
            "c",
            attributes=[("x", "temporal(integer)")],
            methods=[
                MethodSignature("probe", (), "integer",
                                body=lambda *a: 1)
            ],
        )
        oid = db.create_object("c", {"x": 1})
        assert db.call_method(oid, "probe") == 1
        clone = database_from_json(database_to_json(db))
        method = clone.get_class("c").methods["probe"]
        assert method.inputs == () and method.body is None
        with pytest.raises(SchemaError, match="no body"):
            clone.call_method(oid, "probe")
