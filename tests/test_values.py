"""The value universe: null, oids, records, structural helpers."""

import copy
import pickle

import pytest
from hypothesis import given, strategies as st

from repro.errors import DuplicateAttributeError, UnknownAttributeError
from repro.temporal.temporalvalue import TemporalValue
from repro.values import (
    NULL,
    OID,
    Null,
    OidGenerator,
    RecordValue,
    format_value,
    is_list_value,
    is_null,
    is_primitive_value,
    is_record_value,
    is_set_value,
    normalize_value,
    values_equal,
)


class TestNull:
    def test_singleton(self):
        assert Null() is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("")

    def test_falsy(self):
        assert not NULL

    def test_repr(self):
        assert repr(NULL) == "null"

    def test_equality(self):
        assert NULL == Null()
        assert NULL != None  # noqa: E711 -- the model null is not None

    def test_pickle(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL


class TestOid:
    def test_identity(self):
        assert OID(1) == OID(1)
        assert OID(1) != OID(2)

    def test_hierarchy_brand(self):
        assert OID(1, "person") != OID(1, "project")
        assert OID(3, "person").hierarchy == "person"

    def test_ordering(self):
        assert OID(1) < OID(2)

    def test_repr(self):
        assert repr(OID(4)) == "i4"
        assert repr(OID(4, "person")) == "i4@person"

    def test_hashable(self):
        assert len({OID(1), OID(1), OID(2)}) == 2

    def test_generator_fresh(self):
        gen = OidGenerator()
        a, b = gen.fresh(), gen.fresh()
        assert a != b
        assert a.serial < b.serial

    def test_generator_many(self):
        gen = OidGenerator()
        oids = gen.fresh_many(10, "h")
        assert len(set(oids)) == 10
        assert all(oid.hierarchy == "h" for oid in oids)

    def test_generator_start(self):
        assert OidGenerator(100).fresh().serial == 100


class TestRecordValue:
    def test_construction_and_access(self):
        record = RecordValue(name="Bob", score=40)
        assert record["name"] == "Bob"
        assert record.score == 40
        assert record.get("missing") is None

    def test_mapping_argument(self):
        record = RecordValue({"a": 1, "b": 2})
        assert record.names == ("a", "b")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DuplicateAttributeError):
            RecordValue({"a": 1}, a=2)

    def test_unknown_attribute(self):
        with pytest.raises(UnknownAttributeError):
            RecordValue(a=1)["b"]
        with pytest.raises(AttributeError):
            RecordValue(a=1).b

    def test_immutable(self):
        record = RecordValue(a=1)
        with pytest.raises(AttributeError):
            record.a = 2

    def test_equality_ignores_field_order(self):
        assert RecordValue(a=1, b=2) == RecordValue(b=2, a=1)
        assert hash(RecordValue(a=1, b=2)) == hash(RecordValue(b=2, a=1))

    def test_inequality(self):
        assert RecordValue(a=1) != RecordValue(a=2)
        assert RecordValue(a=1) != RecordValue(a=1, b=2)

    def test_with_field(self):
        record = RecordValue(a=1)
        extended = record.with_field("b", 2)
        assert "b" not in record and extended["b"] == 2

    def test_without_field(self):
        record = RecordValue(a=1, b=2)
        assert record.without_field("b") == RecordValue(a=1)
        with pytest.raises(UnknownAttributeError):
            record.without_field("z")

    def test_project(self):
        record = RecordValue(a=1, b=2, c=3)
        assert record.project(["a", "c"]) == RecordValue(a=1, c=3)
        with pytest.raises(UnknownAttributeError):
            record.project(["z"])

    def test_iteration(self):
        record = RecordValue(a=1, b=2)
        assert list(record) == ["a", "b"]
        assert dict(record.items()) == {"a": 1, "b": 2}
        assert len(record) == 2

    def test_contains(self):
        assert "a" in RecordValue(a=1)
        assert "b" not in RecordValue(a=1)

    def test_repr_matches_paper(self):
        assert repr(RecordValue(name="Bob", score=40)) == (
            "(name: 'Bob', score: 40)"
        )

    def test_deepcopy(self):
        record = RecordValue(a=[1, 2])
        clone = copy.deepcopy(record)
        assert clone == record and clone["a"] is not record["a"]

    def test_pickle(self):
        record = RecordValue(a=1, b="x")
        assert pickle.loads(pickle.dumps(record)) == record

    def test_hashable_with_unhashable_fields(self):
        assert isinstance(hash(RecordValue(a=[1, 2], b={3})), int)


class TestKindPredicates:
    def test_primitives(self):
        for value in (1, 1.5, True, "s"):
            assert is_primitive_value(value)
        assert not is_primitive_value(NULL)
        assert not is_primitive_value([1])

    def test_collections(self):
        assert is_set_value({1}) and is_set_value(frozenset())
        assert is_list_value([1]) and is_list_value((1,))
        assert not is_set_value([1]) and not is_list_value({1})

    def test_records(self):
        assert is_record_value(RecordValue(a=1))
        assert not is_record_value({"a": 1})


class TestNormalize:
    def test_set_to_frozenset(self):
        assert normalize_value({1, 2}) == frozenset({1, 2})
        assert isinstance(normalize_value({1}), frozenset)

    def test_list_to_tuple(self):
        assert normalize_value([1, [2]]) == (1, (2,))

    def test_record_recursion(self):
        normalized = normalize_value(RecordValue(a=[1], b={2}))
        assert isinstance(normalized["a"], tuple)
        assert isinstance(normalized["b"], frozenset)

    def test_nested_set_of_lists(self):
        assert normalize_value({(1, 2)}) == frozenset({(1, 2)})

    def test_primitives_unchanged(self):
        for value in (1, 1.5, "x", True, NULL, OID(3)):
            assert normalize_value(value) == value


class TestValuesEqual:
    def test_primitives(self):
        assert values_equal(1, 1)
        assert not values_equal(1, 2)
        assert values_equal("a", "a")

    def test_bool_not_equal_to_int(self):
        assert not values_equal(True, 1)
        assert not values_equal(0, False)

    def test_int_float_numeric(self):
        assert values_equal(1, 1.0)

    def test_null(self):
        assert values_equal(NULL, NULL)
        assert not values_equal(NULL, 0)

    def test_oids(self):
        assert values_equal(OID(1), OID(1))
        assert not values_equal(OID(1), OID(2))
        assert not values_equal(OID(1), 1)

    def test_collections_cross_carrier(self):
        assert values_equal([1, 2], (1, 2))
        assert values_equal({1, 2}, frozenset({2, 1}))
        assert not values_equal([1, 2], [2, 1])
        assert not values_equal([1], {1})

    def test_records(self):
        assert values_equal(RecordValue(a=[1]), RecordValue(a=(1,)))
        assert not values_equal(RecordValue(a=1), RecordValue(b=1))

    def test_temporal_values(self):
        a = TemporalValue.from_items([((1, 5), "x")])
        b = TemporalValue.from_items([((1, 3), "x"), ((4, 5), "x")])
        assert values_equal(a, b)  # coalescing-invariant
        assert not values_equal(a, TemporalValue.from_items([((1, 5), "y")]))
        assert not values_equal(a, "x")

    def test_nested(self):
        a = RecordValue(xs={(1, 2)}, r=RecordValue(k=NULL))
        b = RecordValue(xs=frozenset({(1, 2)}), r=RecordValue(k=NULL))
        assert values_equal(a, b)

    @given(st.integers() | st.text(max_size=5) | st.booleans())
    def test_reflexive(self, v):
        assert values_equal(v, v)


class TestFormatValue:
    def test_primitives(self):
        assert format_value(5) == "5"
        assert format_value("ab") == "'ab'"
        assert format_value(NULL) == "null"

    def test_set_sorted_for_determinism(self):
        assert format_value({3, 1, 2}) == "{1, 2, 3}"
        assert format_value(set()) == "{}"

    def test_list(self):
        assert format_value([1, 2]) == "[1, 2]"

    def test_record(self):
        assert format_value(RecordValue(a=1, b="x")) == "(a: 1, b: 'x')"

    def test_temporal(self):
        tv = TemporalValue.from_items([((1, 100), 40), ((101, 200), 70)])
        assert format_value(tv) == "{<[1,100], 40>, <[101,200], 70>}"

    def test_oid(self):
        assert format_value(OID(2)) == "i2"
