"""The example scripts run end-to-end and print what they promise."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "hired Ann" in out
    assert "h_state(Ann, 12) = (salary: 1500.0)" in out
    assert "integrity: OK" in out


def test_research_projects():
    out = run_example("research_projects.py")
    assert "Example 4.1" in out
    assert "h_type(project) = record-of(name: string, " in out
    assert "s_state(i1)" in out
    assert "consistent: True" in out
    assert "value equal to exact twin:        True" in out


def test_employee_promotion():
    out = run_example("employee_promotion.py")
    assert "officialcar retained? False" in out
    assert "dependents retained?  True" in out
    assert "consistent (Def. 5.5): True" in out
    assert "integrity after the whole story: OK" in out


def test_temporal_rules():
    out = run_example("temporal_rules.py")
    assert "rejected pay cut" in out
    assert "terminates=True" in out
    assert "Bob's grade now: 5" in out


def test_readme_quickstart_snippet():
    """The README's code block actually runs."""
    from repro import TemporalDatabase
    from repro.model_functions import h_state, pi
    from repro.query import attr, select
    from repro.values.records import RecordValue
    from repro.values.structure import values_equal

    db = TemporalDatabase()
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[("salary", "temporal(real)"), ("dept", "string")],
    )
    ann = db.create_object(
        "employee", {"name": "Ann", "salary": 1000.0, "dept": "R&D"}
    )
    db.tick(10)
    db.update_attribute(ann, "salary", 1500.0)
    assert values_equal(h_state(db, ann, 5), RecordValue(salary=1000.0))
    assert pi(db, "employee", 5) == frozenset({ann})
    hits = (
        select("employee").where(attr("salary") > 1200.0).sometime().run(db)
    )
    assert hits == [ann]


def test_save_and_restore():
    out = run_example("save_and_restore.py")
    assert "restored clone integrity: OK" in out
    assert "agrees between original and clone" in out
    assert "Definition 4.1's notation" in out
    assert "integrity OK" in out


def test_bitemporal_audit():
    out = run_example("bitemporal_audit.py")
    assert "bitemporal question" in out
    assert "the raise was not yet stored" in out


def test_project_analytics():
    out = run_example("project_analytics.py")
    assert "temporal views" in out
    assert "after overspending" in out
    assert "belief before the audit" in out
    assert "integrity: OK" in out
