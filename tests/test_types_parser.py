"""The concrete type syntax."""

import pytest
from hypothesis import given

from repro.errors import NotAChimeraTypeError, TypeSyntaxError
from repro.types.grammar import (
    BOOL,
    INTEGER,
    REAL,
    STRING,
    TIME,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
)
from repro.types.parser import format_type, parse_type

from tests.strategies import t_chimera_types


class TestParse:
    def test_basic(self):
        assert parse_type("integer") == INTEGER
        assert parse_type("time") == TIME

    def test_aliases(self):
        assert parse_type("boolean") == BOOL
        assert parse_type("int") == INTEGER

    def test_class_name(self):
        assert parse_type("project") == ObjectType("project")

    def test_set_list(self):
        assert parse_type("set-of(integer)") == SetOf(INTEGER)
        assert parse_type("list-of(project)") == ListOf(ObjectType("project"))

    def test_hyphenless_tolerated(self):
        assert parse_type("setof(integer)") == SetOf(INTEGER)
        assert parse_type("listof(integer)") == ListOf(INTEGER)

    def test_temporal(self):
        assert parse_type("temporal(integer)") == TemporalType(INTEGER)

    def test_example_3_1(self):
        """Example 3.1, verbatim."""
        assert parse_type("time") == TIME
        assert parse_type("temporal(integer)") == TemporalType(INTEGER)
        assert parse_type("list-of(boolean)") == ListOf(BOOL)
        assert parse_type("temporal(set-of(project))") == TemporalType(
            SetOf(ObjectType("project"))
        )
        assert parse_type(
            "record-of(task:temporal(project),startbudget:real,"
            "endbudget:real)"
        ) == RecordOf(
            task=TemporalType(ObjectType("project")),
            startbudget=REAL,
            endbudget=REAL,
        )

    def test_record_with_spaces(self):
        t = parse_type("record-of( a : integer , b : string )")
        assert t == RecordOf(a=INTEGER, b=STRING)

    def test_empty_record(self):
        assert parse_type("record-of()") == RecordOf({})

    def test_nesting(self):
        t = parse_type("set-of(record-of(xs: list-of(set-of(person))))")
        assert t == SetOf(
            RecordOf(xs=ListOf(SetOf(ObjectType("person"))))
        )


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "set-of(",
            "set-of()",
            "set-of(integer",
            "record-of(a integer)",
            "record-of(a:)",
            "temporal()",
            "integer)",
            "integer extra",
            "record-of(a: integer,)",
            "set-of(integer))",
            "?",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(TypeSyntaxError):
            parse_type(bad)

    def test_nested_temporal_rejected_semantically(self):
        with pytest.raises(NotAChimeraTypeError):
            parse_type("temporal(temporal(integer))")

    def test_duplicate_record_field(self):
        with pytest.raises(Exception):
            parse_type("record-of(a: integer, a: string)")


class TestFormat:
    def test_format(self):
        assert format_type(SetOf(INTEGER)) == "set-of(integer)"
        assert (
            format_type(RecordOf(a=INTEGER, b=STRING))
            == "record-of(a: integer, b: string)"
        )

    def test_format_rejects_non_types(self):
        with pytest.raises(TypeSyntaxError):
            format_type("integer")

    @given(t_chimera_types())
    def test_roundtrip(self, t):
        assert parse_type(format_type(t)) == t
