"""Instants, the NOW marker and endpoint resolution."""

import pickle

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidInstantError, UnresolvedNowError
from repro.temporal.instants import (
    NOW,
    Now,
    is_instant,
    resolve_endpoint,
    validate_instant,
)


class TestIsInstant:
    def test_naturals_are_instants(self):
        assert is_instant(0)
        assert is_instant(1)
        assert is_instant(10**12)

    def test_negative_is_not(self):
        assert not is_instant(-1)

    def test_bool_is_not_an_instant(self):
        # True is a boolean value, not time instant 1.
        assert not is_instant(True)
        assert not is_instant(False)

    def test_float_is_not(self):
        assert not is_instant(1.0)

    def test_string_is_not(self):
        assert not is_instant("5")

    def test_now_marker_is_not_concrete(self):
        assert not is_instant(NOW)

    @given(st.integers(min_value=0))
    def test_all_naturals(self, n):
        assert is_instant(n)


class TestValidateInstant:
    def test_passes_through(self):
        assert validate_instant(7) == 7

    def test_rejects_negative(self):
        with pytest.raises(InvalidInstantError):
            validate_instant(-3)

    def test_rejects_bool(self):
        with pytest.raises(InvalidInstantError):
            validate_instant(True)

    def test_error_names_the_role(self):
        with pytest.raises(InvalidInstantError, match="clock start"):
            validate_instant(-1, "clock start")


class TestNowSingleton:
    def test_singleton(self):
        assert Now() is NOW
        assert Now() is Now()

    def test_equality(self):
        assert NOW == Now()
        assert NOW != 5

    def test_repr(self):
        assert repr(NOW) == "now"

    def test_hashable(self):
        assert hash(NOW) == hash(Now())
        assert len({NOW, Now()}) == 1

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NOW)) is NOW


class TestResolveEndpoint:
    def test_concrete_resolves_to_itself(self):
        assert resolve_endpoint(42, now=100) == 42

    def test_concrete_without_now(self):
        assert resolve_endpoint(42, now=None) == 42

    def test_now_resolves_to_clock(self):
        assert resolve_endpoint(NOW, now=17) == 17

    def test_now_without_clock_raises(self):
        with pytest.raises(UnresolvedNowError):
            resolve_endpoint(NOW, now=None)

    def test_invalid_concrete_raises(self):
        with pytest.raises(InvalidInstantError):
            resolve_endpoint(-1, now=5)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_resolution_is_identity_on_instants(self, t):
        assert resolve_endpoint(t, now=0) == t
        assert resolve_endpoint(NOW, now=t) == t
