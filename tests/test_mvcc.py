"""MVCC snapshot isolation: every read view equals a serial oracle.

The property: a :class:`~repro.database.mvcc.ReadView` acquired at
state S answers every query exactly as a database frozen at S would
(Def. 5.10 equivalence), no matter how many writers advance the live
database while the view is open.

The concurrency harness runs N asyncio writer tasks (the shared
fault-harness workload) against M reader tasks; each reader freezes a
deep-copied oracle in the same event-loop step it acquires its view,
then interleaves its queries with the writers and compares result
sets.  ``MVCC_TRIALS`` widens the seed sweep (CI runs 200).
"""

from __future__ import annotations

import asyncio
import copy
import os
import random

import pytest

from repro.database import mvcc
from repro.database.database import TemporalDatabase
from repro.database.transactions import Transaction
from repro.errors import TChimeraError, UnknownClassError
from repro.faults.harness import (
    _next_op,
    _note_applied,
    _schema_ops,
    _WorkloadState,
    apply_op,
)
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query

TRIALS = int(os.environ.get("MVCC_TRIALS", "6"))

QUERIES = (
    "select person",
    "select employee",
    "select employee where salary > 1500",
    "select employee where dept = 'eng'",
    "select manager",
)


def _freeze_oracle(db: TemporalDatabase) -> TemporalDatabase:
    """A fresh database frozen at *db*'s current state (the
    Transaction.begin snapshot pattern: one deepcopy call keeps
    shared references shared)."""
    frozen = copy.deepcopy(
        {
            "clock": db.clock,
            "isa": db._isa,
            "classes": db._classes,
            "metaclasses": db._metaclasses,
            "objects": db._objects,
            "oids": db._oids,
        }
    )
    oracle = TemporalDatabase()
    oracle.clock = frozen["clock"]
    oracle._isa = frozen["isa"]
    oracle._classes = frozen["classes"]
    oracle._metaclasses = frozen["metaclasses"]
    oracle._objects = frozen["objects"]
    oracle._oids = frozen["oids"]
    return oracle


def _result_set(db, query_text):
    try:
        return set(evaluate(db, parse_query(query_text)))
    except UnknownClassError:
        return "unknown-class"


async def _run_trial(seed: int, n_writers: int = 2, n_readers: int = 3,
                     writer_ops: int = 30) -> None:
    db = TemporalDatabase()
    for op in _schema_ops():
        apply_op(db, op)
    state = _WorkloadState(random.Random(seed * 31 + 7))
    rng = random.Random(seed)
    writers_done = 0

    async def writer() -> None:
        nonlocal writers_done
        for _ in range(writer_ops):
            op = _next_op(state, db)
            try:
                result = apply_op(db, op)
            except TChimeraError:
                continue
            _note_applied(state, op, result)
            await asyncio.sleep(0)
        writers_done += 1

    async def reader(index: int) -> None:
        reader_rng = random.Random(seed * 1009 + index)
        while writers_done < n_writers:
            view = db.mvcc.acquire()
            # Same event-loop step as the acquisition: the oracle and
            # the view pin the identical state.
            oracle = _freeze_oracle(db)
            try:
                queries = list(QUERIES)
                reader_rng.shuffle(queries)
                for query_text in queries:
                    expected = _result_set(oracle, query_text)
                    # Let writers advance while the view stays open.
                    await asyncio.sleep(0)
                    if expected == "unknown-class":
                        continue
                    got = set(view.execute(query_text))
                    assert got == expected, (
                        f"seed {seed} reader {index}: {query_text!r} "
                        f"diverged from the frozen oracle "
                        f"(got {len(got)}, want {len(expected)})"
                    )
            finally:
                view.close()
            await asyncio.sleep(0)

    tasks = [writer() for _ in range(n_writers)]
    tasks += [reader(i) for i in range(n_readers)]
    await asyncio.gather(*tasks)
    assert db.mvcc.stats()["open_views"] == 0
    # With every view closed the overlays must have been collected.
    assert db.mvcc.stats()["object_overlays"] == 0
    assert db.mvcc.stats()["class_overlays"] == 0


@pytest.mark.parametrize("seed", range(TRIALS))
def test_readers_equal_serial_oracle(seed):
    asyncio.run(_run_trial(seed))


class TestViewSemantics:
    def _db(self):
        db = TemporalDatabase()
        db.define_class("person", attributes=[("name", "string")])
        db.define_class(
            "employee",
            parents=["person"],
            attributes=[("salary", "temporal(real)")],
        )
        oids = [
            db.create_object(
                "employee", {"name": f"e{i}", "salary": 1000.0 + i}
            )
            for i in range(6)
        ]
        return db, oids

    def test_view_pins_updates(self):
        db, oids = self._db()
        with db.mvcc.acquire() as view:
            before = set(view.execute("select employee where salary > 1002"))
            db.update_attribute(oids[0], "salary", 5000.0)
            assert set(
                view.execute("select employee where salary > 1002")
            ) == before
        live = set(
            evaluate(db, parse_query("select employee where salary > 1002"))
        )
        assert oids[0] in live

    def test_view_pins_births_and_deaths(self):
        db, oids = self._db()
        db.tick()  # objects cannot be deleted in their creation tick
        view = db.mvcc.acquire()
        db.create_object("employee", {"name": "late", "salary": 9000.0})
        db.delete_object(oids[1])
        try:
            assert len(view.execute("select employee")) == 6
        finally:
            view.close()
        assert len(evaluate(db, parse_query("select employee"))) == 6

    def test_view_pins_clock(self):
        db, _oids = self._db()
        view = db.mvcc.acquire()
        db.tick(3)
        try:
            assert view.db.now == 0
            assert db.now == 3
        finally:
            view.close()

    def test_view_hides_new_classes(self):
        db, _oids = self._db()
        view = db.mvcc.acquire()
        db.define_class("robot", attributes=[("model", "string")])
        try:
            with pytest.raises(UnknownClassError):
                view.execute("select robot")
        finally:
            view.close()

    def test_acquire_refused_inside_transaction(self):
        db, _oids = self._db()
        txn = Transaction(db).begin()
        try:
            with pytest.raises(mvcc.MVCCError):
                db.mvcc.acquire()
        finally:
            txn.rollback()
        db.mvcc.acquire().close()  # fine again afterwards

    def test_acquire_refused_inside_batch(self):
        db, _oids = self._db()
        with db.batch():
            with pytest.raises(mvcc.MVCCError):
                db.mvcc.acquire()

    def test_view_survives_rollback(self):
        db, oids = self._db()
        view = db.mvcc.acquire()
        baseline = set(view.execute("select employee where salary > 1002"))
        with pytest.raises(RuntimeError):
            with Transaction(db):
                db.update_attribute(oids[0], "salary", 9999.0)
                raise RuntimeError("abort")
        assert set(
            view.execute("select employee where salary > 1002")
        ) == baseline
        view.close()

    def test_ablation_refuses_views(self):
        db, _oids = self._db()
        with mvcc.disabled():
            with pytest.raises(mvcc.MVCCError):
                db.mvcc.acquire()

    def test_closed_view_refuses_queries(self):
        db, _oids = self._db()
        view = db.mvcc.acquire()
        view.close()
        with pytest.raises(mvcc.MVCCError):
            view.execute("select employee")
