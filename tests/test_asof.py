"""The transaction-time (``AS OF``) read surface.

The value-equality property (``AS OF <lsn>`` == ``restore_to(lsn)``
for every valid-time scope) lives in ``tests/test_query_oracle.py``;
this file covers everything around it: the refusal rules, the head
fast path and the LRU memo, the parser/planner/EXPLAIN surface, the
``repro asof`` CLI, and the server's ``as_of`` request field.
"""

import json

import pytest

from repro.bitemporal import asof as asof_mod
from repro.database.recovery import open_database
from repro.database.database import TemporalDatabase
from repro.database.transactions import Transaction
from repro.errors import BitemporalError, QuerySyntaxError, ServerError
from repro.faults.fs import SimulatedFS
from repro.query import evaluate, parse_query
from repro.query.planner import RECONSTRUCT_COST, explain


@pytest.fixture(autouse=True)
def fresh_memo():
    asof_mod.clear_cache()
    yield
    asof_mod.clear_cache()


def grow(directory="/db", fs=None, people=4):
    """A journaled database with a few committed transaction times.

    Returns ``(db, fs, marks)``; *marks* are ``(lsn, now)`` pairs at
    clean commit boundaries."""
    fs = fs or SimulatedFS()
    db, _ = open_database(directory, fs=fs)
    db.define_class(
        "person",
        attributes=[("name", "string"), ("score", "temporal(integer)")],
    )
    db.tick()
    marks = []
    for index in range(people):
        oid = db.create_object(
            "person", {"name": f"p{index}", "score": index}
        )
        db.tick()
        db.update_attribute(oid, "score", index * 10)
        marks.append((db.journal.last_lsn, db.now))
    return db, fs, marks


class TestRefusals:
    def test_unjournaled_database_has_no_transaction_time(self):
        db = TemporalDatabase()
        with pytest.raises(BitemporalError, match="no journal"):
            asof_mod.transaction_now(db)
        with pytest.raises(BitemporalError, match="journal-backed"):
            asof_mod.as_of(db, 1)

    def test_future_lsn_is_refused(self):
        db, _, _ = grow()
        head = db.journal.last_lsn
        with pytest.raises(BitemporalError, match="in the future"):
            db.as_of(head + 1)

    def test_prehistoric_and_non_integer_lsns_are_refused(self):
        db, _, _ = grow()
        with pytest.raises(BitemporalError, match="starts at LSN 1"):
            db.as_of(0)
        with pytest.raises(BitemporalError, match="starts at LSN 1"):
            db.as_of(-3)
        with pytest.raises(BitemporalError, match="integer"):
            db.as_of(True)
        with pytest.raises(BitemporalError, match="integer"):
            db.as_of("7")

    def test_mid_transaction_read_is_refused(self):
        db, _, marks = grow()
        with pytest.raises(BitemporalError, match="open transaction"):
            with Transaction(db):
                db.as_of(marks[0][0])
        # Committed again: the same read succeeds.
        assert db.as_of(marks[0][0]).now == marks[0][1]

    def test_mid_batch_read_is_refused(self):
        db, _, marks = grow()
        with pytest.raises(BitemporalError, match="open batch"):
            with db.batch():
                db.as_of(marks[0][0])

    def test_checkpoint_truncation_bounds_history(self):
        db, _, marks = grow()
        db.checkpoint()
        db.tick()
        db.create_object("person", {"name": "late", "score": 99})
        # Transaction times before the checkpoint are unreachable now.
        with pytest.raises(BitemporalError, match="cannot reconstruct"):
            db.as_of(marks[0][0])
        # The head is always reachable.
        assert db.as_of(db.journal.last_lsn) is db


class TestHeadAndMemo:
    def test_head_read_returns_the_live_database(self):
        db, _, _ = grow()
        before = asof_mod.stats()["head_hits"]
        assert db.as_of(db.journal.last_lsn) is db
        assert asof_mod.stats()["head_hits"] == before + 1

    def test_transaction_now_is_the_last_committed_lsn(self):
        db, _, _ = grow()
        assert db.transaction_now == db.journal.last_lsn
        assert asof_mod.transaction_now(db) == db.journal.last_lsn
        assert TemporalDatabase().transaction_now is None

    def test_historical_reads_are_memoized(self):
        db, _, marks = grow()
        lsn = marks[1][0]
        baseline = asof_mod.stats()
        first = db.as_of(lsn)
        again = db.as_of(lsn)
        assert again is first
        stats = asof_mod.stats()
        assert stats["reconstructions"] == baseline["reconstructions"] + 1
        assert stats["cache_hits"] == baseline["cache_hits"] + 1
        assert stats["cache_entries"] >= 1

    def test_memo_capacity_is_bounded(self, monkeypatch):
        db, _, marks = grow(people=6)
        monkeypatch.setattr(asof_mod, "cache_capacity", 2)
        for lsn, _ in marks[:-1]:
            db.as_of(lsn)
        assert asof_mod.stats()["cache_entries"] <= 2

    def test_zero_capacity_disables_memoization(self, monkeypatch):
        db, _, marks = grow()
        monkeypatch.setattr(asof_mod, "cache_capacity", 0)
        lsn = marks[0][0]
        assert db.as_of(lsn) is not db.as_of(lsn)
        assert asof_mod.stats()["cache_entries"] == 0

    def test_same_path_on_two_disks_never_aliases(self):
        """Two databases sharing a directory name (distinct simulated
        disks) must not serve each other's reconstructions."""
        first, _, first_marks = grow(people=2)
        second, _, _ = grow(people=3)
        lsn = first_marks[0][0]
        assert first.as_of(lsn) is not second.as_of(lsn)
        assert first.as_of(lsn).now == first_marks[0][1]

    def test_believed_extent(self):
        db, _, marks = grow()
        lsn, believed_now = marks[0][0], marks[0][1]
        extent = asof_mod.believed_extent(db, lsn, "person", believed_now)
        assert len(extent) == 1
        head_extent = db.extent("person", db.now)
        assert len(head_extent) == 4


def db_names(db) -> set:
    return {
        db.get_object(oid).value["name"]
        for oid in db.extent("person", db.now)
    }


class TestQuerySurface:
    def test_as_of_clause_parses(self):
        query = parse_query("select person where score > 5 at 2 as of 9")
        assert query.as_of == 9
        assert parse_query("select person").as_of is None

    def test_as_of_requires_an_integer(self):
        with pytest.raises(QuerySyntaxError, match="integer"):
            parse_query("select person as of soon")
        with pytest.raises(QuerySyntaxError, match="integer"):
            parse_query("select person as of 1.5")

    def test_evaluate_routes_through_the_believed_state(self):
        db, _, marks = grow()
        lsn = marks[1][0]
        believed = db.as_of(lsn)
        want = evaluate(believed, parse_query("select person"))
        got = evaluate(db, parse_query(f"select person as of {lsn}"))
        assert got == want
        assert len(got) == 2

    def test_explain_pins_the_transaction_time(self):
        db, _, marks = grow()
        head = db.journal.last_lsn
        at_head = explain(db, parse_query(f"select person as of {head}"))
        rendered = at_head.render()
        assert f"txn-time as of lsn {head}" in rendered
        assert "at head, live state" in rendered
        assert at_head.est_cost_reconstruct == 0.0

        lsn = marks[0][0]
        historical = explain(db, parse_query(f"select person as of {lsn}"))
        rendered = historical.render()
        assert f"txn-time as of lsn {lsn}" in rendered
        assert "historical" in rendered
        assert historical.est_cost_reconstruct == RECONSTRUCT_COST * lsn
        assert historical.to_dict()["as_of"] == lsn

    def test_plain_explain_has_no_txn_time_line(self):
        db, _, _ = grow()
        plan = explain(db, parse_query("select person"))
        assert "txn-time" not in plan.render()
        assert plan.as_of is None


class TestServerRoundTrip:
    @pytest.fixture()
    def served(self, tmp_path):
        from repro.server import BackgroundServer, ServerClient

        db, _ = open_database(tmp_path / "db")
        with BackgroundServer(db) as bg:
            client = ServerClient.connect(bg.host, bg.port)
            try:
                yield db, client
            finally:
                client.close()

    def _seed(self, client) -> list:
        client.execute((
            "define_class", "person", [],
            [("name", "string"), ("score", "temporal(integer)")],
        ))
        client.execute(("tick", 1))
        marks = []
        for index in range(3):
            client.execute((
                "create", "person",
                {"name": f"p{index}", "score": index},
            ))
            client.execute(("tick", 1))
            marks.append(index + 1)
        return marks

    def test_as_of_field_round_trips(self, served):
        db, client = self._seed_and_marks(served)
        head = db.journal.last_lsn
        past = head - 2  # before the last create+tick pair
        full = client.query_raw("select person", as_of=head)
        assert full["count"] == 3
        assert full["as_of"] == head
        believed = client.query_raw("select person", as_of=past)
        assert believed["count"] == 2
        assert believed["as_of"] == past
        assert believed["now"] < full["now"]

    def test_in_text_clause_matches_field(self, served):
        db, client = self._seed_and_marks(served)
        past = db.journal.last_lsn - 2
        via_field = client.query_raw("select person", as_of=past)
        via_text = client.query_raw(f"select person as of {past}")
        assert via_field["oids"] == via_text["oids"]
        assert via_field["now"] == via_text["now"]
        # The explicit field wins over the in-text clause.
        both = client.query_raw("select person as of 1", as_of=past)
        assert both["as_of"] == past
        assert both["oids"] == via_field["oids"]

    def test_malformed_as_of_field_is_a_protocol_error(self, served):
        _, client = self._seed_and_marks(served)
        for bad in (True, "7", 1.5):
            with pytest.raises(ServerError, match="as_of"):
                client.request(
                    {"cmd": "query", "q": "select person", "as_of": bad}
                )

    def test_future_lsn_is_refused_over_the_wire(self, served):
        db, client = self._seed_and_marks(served)
        with pytest.raises(ServerError, match="in the future") as info:
            client.query_raw("select person", as_of=db.journal.last_lsn + 5)
        assert info.value.kind == "BitemporalError"

    def test_as_of_inside_a_session_transaction_is_refused(self, served):
        db, client = self._seed_and_marks(served)
        past = db.journal.last_lsn - 2
        client.begin()
        try:
            with pytest.raises(ServerError, match="open transaction"):
                client.query_raw("select person", as_of=past)
        finally:
            client.rollback()
        # After rollback the same read succeeds again.
        assert client.query_raw("select person", as_of=past)["count"] == 2

    def _seed_and_marks(self, served):
        db, client = served
        self._seed(client)
        return db, client


class TestCLI:
    @pytest.fixture(scope="class")
    def journaled_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("asof") / "db"
        db, _ = open_database(directory)
        db.define_class(
            "person",
            attributes=[("name", "string"), ("score", "temporal(integer)")],
        )
        db.tick()
        for index in range(3):
            db.create_object("person", {"name": f"p{index}", "score": index})
            db.tick()
        return directory, db.journal.last_lsn

    def test_summary_and_query(self, journaled_dir):
        from tests.test_cli import run_cli

        directory, head = journaled_dir
        result = run_cli("asof", str(directory), "--lsn", str(head - 2))
        assert result.returncode == 0
        assert "a reconstruction" in result.stdout
        assert f"head lsn {head}" in result.stdout

        result = run_cli(
            "asof", str(directory), "--lsn", str(head),
            "--query", "select person",
        )
        assert result.returncode == 0
        assert "3 result(s)" in result.stdout

    def test_json_summary(self, journaled_dir):
        from tests.test_cli import run_cli

        directory, head = journaled_dir
        result = run_cli(
            "asof", str(directory), "--lsn", str(head - 2), "--json"
        )
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert payload["lsn"] == head - 2
        assert payload["head_lsn"] == head
        assert payload["at_head"] is False
        assert payload["objects"] == 2

    def test_future_lsn_fails_cleanly(self, journaled_dir):
        from tests.test_cli import run_cli

        directory, head = journaled_dir
        result = run_cli("asof", str(directory), "--lsn", str(head + 9))
        assert result.returncode == 1
        assert "asof failed" in result.stderr
        assert "in the future" in result.stderr
