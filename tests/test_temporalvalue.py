"""Temporal values: partial functions from TIME (Section 3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import OverlappingHistoryError, UndefinedAtError
from repro.temporal.instants import NOW
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue

from tests.strategies import temporal_values


def paper_example() -> TemporalValue:
    """{<[5,10],12>, <[11,30],5>} from Example 3.2."""
    return TemporalValue.from_items([((5, 10), 12), ((11, 30), 5)])


class TestQueries:
    def test_at(self):
        tv = paper_example()
        assert tv.at(5) == 12 and tv.at(10) == 12
        assert tv.at(11) == 5 and tv.at(30) == 5

    def test_at_outside_domain_raises(self):
        tv = paper_example()
        with pytest.raises(UndefinedAtError):
            tv.at(4)
        with pytest.raises(UndefinedAtError):
            tv.at(31)

    def test_get_default(self):
        assert paper_example().get(4, "none") == "none"

    def test_call_syntax(self):
        assert paper_example()(7) == 12

    def test_defined_at(self):
        tv = paper_example()
        assert tv.defined_at(10) and not tv.defined_at(40)

    def test_domain(self):
        assert paper_example().domain() == IntervalSet.span(5, 30)

    def test_domain_with_gap(self):
        tv = TemporalValue.from_items([((1, 3), "a"), ((7, 9), "b")])
        assert tv.domain() == IntervalSet.from_pairs([(1, 3), (7, 9)])

    def test_first_last_instants(self):
        tv = paper_example()
        assert tv.first_instant() == 5
        assert tv.last_instant() == 30

    def test_empty(self):
        tv = TemporalValue()
        assert tv.is_empty()
        with pytest.raises(UndefinedAtError):
            tv.first_instant()

    def test_is_constant(self):
        assert TemporalValue.from_items([((1, 3), 7), ((9, 12), 7)]).is_constant()
        assert not paper_example().is_constant()
        assert TemporalValue().is_constant()

    def test_when(self):
        tv = paper_example()
        assert tv.when(lambda v: v > 10) == IntervalSet.span(5, 10)
        assert tv.when(lambda v: v < 0).is_empty

    def test_values_in_time_order(self):
        assert list(paper_example().values()) == [12, 5]

    def test_repr_matches_paper_notation(self):
        assert repr(paper_example()) == "{<[5,10],12>, <[11,30],5>}"


class TestAssignClose:
    def test_assign_builds_history(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        tv.assign(9, "b")
        assert tv.pairs() == (
            (Interval(5, 8), "a"),
            (Interval.from_now(9), "b"),
        )

    def test_assign_same_value_coalesces(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        tv.assign(9, "a")
        assert len(tv) == 1

    def test_assign_at_open_start_overwrites(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        tv.assign(5, "b")
        assert tv.pairs() == ((Interval.from_now(5), "b"),)

    def test_assign_into_past_raises(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        with pytest.raises(OverlappingHistoryError):
            tv.assign(3, "b")

    def test_assign_after_close_leaves_gap(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        tv.close(7)
        tv.assign(10, "b")
        assert not tv.defined_at(8) and not tv.defined_at(9)
        assert tv.at(10) == "b"

    def test_close(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        tv.close(9)
        assert tv.pairs() == ((Interval(5, 9), "a"),)
        assert not tv.has_open_pair()

    def test_close_before_start_removes_pair(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        tv.close(4)
        assert tv.is_empty()

    def test_close_minus_one(self):
        tv = TemporalValue()
        tv.assign(0, "a")
        tv.close(-1)
        assert tv.is_empty()

    def test_close_without_open_pair_is_noop(self):
        tv = paper_example()
        tv.close(50)
        assert tv == paper_example()

    def test_open_pair_tracks_now(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        assert tv.at(5) == "a" and tv.at(500) == "a"
        assert tv.last_instant(now=42) == 42

    def test_resolved_pairs(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        assert tv.resolved_pairs(9) == ((Interval(5, 9), "a"),)


class TestPut:
    def test_put_disjoint(self):
        tv = paper_example()
        tv.put(Interval(40, 50), 9)
        assert tv.at(45) == 9

    def test_put_overlap_rejected(self):
        tv = paper_example()
        with pytest.raises(OverlappingHistoryError):
            tv.put(Interval(8, 12), 0)

    def test_put_overwrite_carves(self):
        tv = paper_example()
        tv.put(Interval(8, 12), 0, overwrite=True)
        assert tv.at(7) == 12 and tv.at(8) == 0 and tv.at(12) == 0
        assert tv.at(13) == 5

    def test_put_adjacent_equal_coalesces(self):
        tv = TemporalValue()
        tv.put(Interval(1, 3), "x")
        tv.put(Interval(4, 6), "x")
        assert len(tv) == 1
        assert tv.pairs() == ((Interval(1, 6), "x"),)

    def test_put_second_open_pair_rejected(self):
        tv = TemporalValue()
        tv.assign(5, "a")
        with pytest.raises(OverlappingHistoryError):
            tv.put(Interval.from_now(10), "b")

    def test_put_out_of_order(self):
        tv = TemporalValue()
        tv.put(Interval(10, 20), "b")
        tv.put(Interval(1, 5), "a")
        assert [v for _i, v in tv.pairs()] == ["a", "b"]


class TestTransforms:
    def test_restrict(self):
        tv = paper_example()
        cut = tv.restrict(IntervalSet.span(8, 15))
        assert cut.domain() == IntervalSet.span(8, 15)
        assert cut.at(8) == 12 and cut.at(15) == 5

    def test_restrict_to_nothing(self):
        assert paper_example().restrict(IntervalSet.empty()).is_empty()

    def test_map(self):
        doubled = paper_example().map(lambda v: v * 2)
        assert doubled.at(7) == 24 and doubled.at(20) == 10

    def test_map_preserves_domain(self):
        tv = paper_example()
        assert tv.map(str).domain() == tv.domain()

    def test_copy_is_independent(self):
        tv = TemporalValue()
        tv.assign(1, "a")
        clone = tv.copy()
        clone.assign(5, "b")
        assert tv.get(5) == "a" and clone.get(5) == "b"

    def test_coalesced(self):
        raw = TemporalValue(coalesce=False)
        raw.put(Interval(1, 3), "x")
        raw.put(Interval(4, 6), "x")
        assert len(raw) == 2
        assert len(raw.coalesced()) == 1


class TestEquality:
    def test_structural_equality(self):
        assert paper_example() == paper_example()

    def test_coalescing_invariance(self):
        a = TemporalValue(coalesce=False)
        a.put(Interval(1, 3), "x")
        a.put(Interval(4, 6), "x")
        b = TemporalValue.from_items([((1, 6), "x")])
        assert a == b

    def test_equals_at_resolves_open_pairs(self):
        a = TemporalValue()
        a.assign(5, "v")
        b = TemporalValue.from_items([((5, 9), "v")])
        assert a.equals_at(b, now=9)
        assert not a.equals_at(b, now=10)

    def test_hashable(self):
        assert hash(paper_example()) == hash(paper_example())

    def test_constant_constructor(self):
        tv = TemporalValue.constant("IDEA", Interval(20, 90))
        assert tv.is_constant() and tv.at(20) == "IDEA" == tv.at(90)


class TestProperties:
    @given(temporal_values())
    def test_pairs_sorted_and_disjoint(self, tv):
        pairs = tv.pairs()
        for (i1, _), (i2, _) in zip(pairs, pairs[1:]):
            assert i1.end < i2.start

    @given(temporal_values())
    def test_at_agrees_with_pairs(self, tv):
        for interval, value in tv.pairs():
            for t in interval.instants():
                assert tv.at(t) == value

    @given(temporal_values())
    def test_domain_cardinality(self, tv):
        total = sum(i.duration() for i, _v in tv.pairs())
        assert tv.domain().cardinality() == total

    @given(temporal_values(), st.integers(0, 300))
    def test_defined_iff_in_domain(self, tv, t):
        assert tv.defined_at(t) == (t in tv.domain())

    @given(temporal_values())
    def test_restrict_to_domain_is_identity(self, tv):
        assert tv.restrict(tv.domain()) == tv

    @given(temporal_values(), st.integers(0, 300), st.integers(0, 300))
    def test_restrict_semantics(self, tv, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        window = IntervalSet.span(lo, hi)
        cut = tv.restrict(window)
        for t in range(lo, min(hi, 301) + 1):
            if tv.defined_at(t):
                assert cut.at(t) == tv.at(t)
        assert cut.domain() == (tv.domain() & window)

    @given(temporal_values())
    def test_map_identity(self, tv):
        assert tv.map(lambda v: v) == tv

    @given(temporal_values())
    def test_when_partitions_domain(self, tv):
        yes = tv.when(lambda v: v >= 0)
        no = tv.when(lambda v: v < 0)
        assert (yes | no) == tv.domain()
        assert (yes & no).is_empty


class TestCombine:
    def test_pairwise_join(self):
        a = TemporalValue.from_items([((0, 9), 1), ((10, 19), 2)])
        b = TemporalValue.from_items([((5, 14), 10)])
        joined = a.combine(b, lambda x, y: x + y)
        assert joined.pairs() == (
            (Interval(5, 9), 11),
            (Interval(10, 14), 12),
        )

    def test_domain_is_intersection(self):
        a = TemporalValue.from_items([((0, 4), "x")])
        b = TemporalValue.from_items([((10, 14), "y")])
        assert a.combine(b, lambda x, y: (x, y)).is_empty()

    def test_open_pairs_need_now(self):
        from repro.errors import UnresolvedNowError

        a = TemporalValue()
        a.assign(0, 1)
        b = TemporalValue.from_items([((0, 9), 2)])
        with pytest.raises(UnresolvedNowError):
            a.combine(b, lambda x, y: x + y)
        joined = a.combine(b, lambda x, y: x + y, now=5)
        assert joined.domain() == IntervalSet.span(0, 5)

    def test_per_instant_agreement(self):
        """combine(f, g)(t) == fn(f(t), g(t)) wherever both defined."""
        a = TemporalValue.from_items([((0, 3), 1), ((7, 12), 5)])
        b = TemporalValue.from_items([((2, 8), 10), ((11, 20), 20)])
        joined = a.combine(b, lambda x, y: x * y)
        for t in range(0, 21):
            both = a.defined_at(t) and b.defined_at(t)
            assert joined.defined_at(t) == both
            if both:
                assert joined.at(t) == a.at(t) * b.at(t)
