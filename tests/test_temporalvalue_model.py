"""Model-based testing of TemporalValue mutations.

The oracle is a plain ``dict[instant, value]``; a hypothesis-driven
sequence of assign / close / put(overwrite=True) operations is applied
to both the oracle and the real structure, then the two must agree on
every instant of the horizon.  This pins down the trickiest code in
the temporal substrate (the carve/split logic of overwriting ``put``).
"""

from hypothesis import given, settings, strategies as st

from repro.temporal.instants import NOW, Now
from repro.temporal.intervals import Interval
from repro.temporal.temporalvalue import TemporalValue

HORIZON = 60


class _Oracle:
    """The per-instant reference semantics."""

    def __init__(self) -> None:
        self.map: dict[int, int] = {}
        self.open_since: int | None = None
        self.open_value: int | None = None

    def _normalize(self) -> None:
        """Mirror coalescing: the open pair absorbs an adjacent closed
        stretch of the same value, so its start is the beginning of the
        maximal constant suffix -- exactly what the real structure's
        pair-merging produces."""
        if self.open_since is None:
            return
        while self.map.get(self.open_since - 1) == self.open_value:
            self.open_since -= 1
            del self.map[self.open_since]

    def materialize(self, now: int) -> dict[int, int]:
        result = dict(self.map)
        if self.open_since is not None:
            for t in range(self.open_since, now + 1):
                result[t] = self.open_value
        return result

    def assign(self, t: int, value: int) -> bool:
        """Mirror TemporalValue.assign; False = op would raise."""
        if self.open_since is not None:
            if t < self.open_since:
                return False
            if value == self.open_value:
                # Assigning the unchanged value does not change the
                # function: the open pair keeps its original start.
                return True
            # close open at t-1, open new at t
            for instant in range(self.open_since, t):
                self.map[instant] = self.open_value
            self.open_since, self.open_value = t, value
            self._normalize()
            return True
        if self.map and t <= max(self.map):
            return False
        self.open_since, self.open_value = t, value
        self._normalize()
        return True

    def close(self, t: int) -> None:
        if self.open_since is None:
            return
        if t < self.open_since:
            self.open_since = self.open_value = None
            return
        for instant in range(self.open_since, t + 1):
            self.map[instant] = self.open_value
        self.open_since = self.open_value = None

    def put_overwrite(self, start: int, end: int, value: int) -> None:
        # Carve the open pair if it overlaps.
        if self.open_since is not None and end >= self.open_since:
            for instant in range(self.open_since, start):
                self.map[instant] = self.open_value
            if self.open_since < start:
                pass
            # the open pair's tail beyond `end` stays open only in the
            # real structure when its start > end; mirror that:
            if self.open_since > end:
                pass
            else:
                # split: [open_since, start-1] materialized above;
                # [end+1, now] stays open
                new_start = end + 1
                if new_start > self.open_since:
                    self.open_since = new_start
        for instant in range(start, end + 1):
            self.map[instant] = value
        self._normalize()


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("assign"),
            st.integers(0, HORIZON),
            st.integers(0, 5),
        ),
        st.tuples(st.just("close"), st.integers(0, HORIZON), st.just(0)),
        st.tuples(
            st.just("put"),
            st.integers(0, HORIZON),
            st.integers(0, 5),
        ),
    ),
    max_size=12,
)


class TestAgainstOracle:
    @settings(max_examples=200, deadline=None)
    @given(ops, st.data())
    def test_mutation_sequences(self, operations, data):
        oracle = _Oracle()
        real = TemporalValue()
        for op, a, value in operations:
            if op == "assign":
                expected_ok = oracle.assign(a, value)
                try:
                    real.assign(a, value)
                    assert expected_ok, "real accepted, oracle refused"
                except Exception:
                    assert not expected_ok, "real refused, oracle accepted"
            elif op == "close":
                oracle.close(a)
                real.close(a)
            else:  # put overwrite over [a, b]
                b = data.draw(st.integers(a, min(a + 10, HORIZON)))
                oracle.put_overwrite(a, b, value)
                real.put(Interval(a, b), value, overwrite=True)
        now = HORIZON + 5
        expected = oracle.materialize(now)
        for t in range(0, now + 1):
            if t in expected:
                assert real.defined_at(t), f"missing at {t}"
                assert real.at(t) == expected[t], f"wrong value at {t}"
            else:
                assert not real.defined_at(t), f"spurious at {t}"

    @settings(max_examples=100, deadline=None)
    @given(ops)
    def test_structural_invariants_always_hold(self, operations):
        """Whatever happens: sorted, disjoint pairs; at most one open
        pair; coalesced neighbours differ."""
        real = TemporalValue()
        for op, a, value in operations:
            try:
                if op == "assign":
                    real.assign(a, value)
                elif op == "close":
                    real.close(a)
                else:
                    real.put(Interval(a, min(a + 7, HORIZON)), value,
                             overwrite=True)
            except Exception:
                continue
            pairs = real.pairs()
            for index, (interval, _v) in enumerate(pairs):
                if index + 1 < len(pairs):
                    nxt = pairs[index + 1][0]
                    assert isinstance(interval.end, int)
                    assert interval.end < nxt.start
            open_pairs = [p for p, _v in pairs if p.is_moving]
            assert len(open_pairs) <= 1
            if open_pairs:
                assert pairs[-1][0].is_moving
            for (i1, v1), (i2, v2) in zip(pairs, pairs[1:]):
                if isinstance(i1.end, int) and i1.end + 1 == i2.start:
                    assert v1 != v2, "uncoalesced equal neighbours"
