"""Deeper Allen-algebra properties: composition coherence.

Beyond the per-pair classification tests, these pin the algebra's
*relational* structure: the composition of two observed relations must
be consistent with the observed third relation (a R b, b S c constrain
a ? c), checked empirically over random triples -- a coherence test of
the classifier, not a full composition-table implementation.
"""

from hypothesis import given, settings

from repro.temporal.algebra import AllenRelation, allen_relation
from repro.temporal.intervals import Interval

from tests.strategies import intervals

# A few exact entries of Allen's composition table (r1 ; r2 -> allowed
# third relations), enough to catch classifier inconsistencies.
COMPOSITION_SAMPLES = {
    (AllenRelation.BEFORE, AllenRelation.BEFORE): {AllenRelation.BEFORE},
    (AllenRelation.DURING, AllenRelation.DURING): {AllenRelation.DURING},
    (AllenRelation.EQUAL, AllenRelation.EQUAL): {AllenRelation.EQUAL},
    (AllenRelation.MEETS, AllenRelation.MEETS): {AllenRelation.BEFORE},
    (AllenRelation.STARTS, AllenRelation.STARTS): {AllenRelation.STARTS},
    (AllenRelation.FINISHES, AllenRelation.FINISHES): {
        AllenRelation.FINISHES
    },
    (AllenRelation.AFTER, AllenRelation.AFTER): {AllenRelation.AFTER},
    (AllenRelation.CONTAINS, AllenRelation.CONTAINS): {
        AllenRelation.CONTAINS
    },
}


class TestCompositionCoherence:
    @settings(max_examples=300, deadline=None)
    @given(intervals(), intervals(), intervals())
    def test_sampled_composition_entries(self, a, b, c):
        r1 = allen_relation(a, b)
        r2 = allen_relation(b, c)
        allowed = COMPOSITION_SAMPLES.get((r1, r2))
        if allowed is not None:
            assert allen_relation(a, c) in allowed

    @settings(max_examples=300, deadline=None)
    @given(intervals(), intervals())
    def test_equal_relation_is_genuine_equality(self, a, b):
        if allen_relation(a, b) is AllenRelation.EQUAL:
            assert a == b

    @settings(max_examples=300, deadline=None)
    @given(intervals(), intervals())
    def test_before_is_transitively_ordered_with_meets(self, a, b):
        """before/meets imply strict precedence of endpoints."""
        relation = allen_relation(a, b)
        if relation in (AllenRelation.BEFORE, AllenRelation.MEETS):
            assert a.end < b.start  # type: ignore[operator]

    def test_exhaustive_small_domain(self):
        """All interval pairs over a small instant domain classify to
        exactly one relation, and the 13 relations all occur."""
        seen = set()
        domain = range(0, 6)
        pairs = [
            Interval(s, e) for s in domain for e in domain if e >= s
        ]
        for a in pairs:
            for b in pairs:
                seen.add(allen_relation(a, b))
        assert seen == set(AllenRelation)
