"""Schema evolution: time-indexed attribute declarations.

The paper cites Zdonik's object-oriented type evolution [22] as the
backdrop of migration; this extension evolves the *class* over time:
attributes may be added or removed after the class's creation, and the
consistency notions (Defs. 5.3-5.5) quantify over each attribute's
declaration span -- so a database remains fully consistent across
schema changes without rewriting object histories.
"""

import pytest

from repro.database.integrity import check_database
from repro.errors import LifespanError, SchemaError
from repro.objects.consistency import (
    is_consistent,
    is_historically_consistent,
)
from repro.schema.derived_types import historical_type_at
from repro.temporal.temporalvalue import TemporalValue
from repro.types.parser import parse_type
from repro.values.null import NULL


@pytest.fixture
def shop_db(empty_db):
    db = empty_db
    db.define_class(
        "item",
        attributes=[("price", "temporal(real)"), ("label", "string")],
    )
    db.define_class("discounted", parents=["item"])
    a = db.create_object("item", {"price": 10.0, "label": "plain"})
    b = db.create_object("discounted", {"price": 5.0, "label": "cheap"})
    db.tick(10)
    return db, {"a": a, "b": b}


class TestAddAttribute:
    def test_static_addition(self, shop_db):
        db, names = shop_db
        db.add_attribute("item", ("origin", "string"))
        for oid in names.values():
            assert db.get_object(oid).value["origin"] is NULL
        db.update_attribute(names["a"], "origin", "EU")
        assert db.get_object(names["a"]).value["origin"] == "EU"
        assert check_database(db).ok

    def test_temporal_addition_starts_now(self, shop_db):
        db, names = shop_db
        added_at = db.now
        db.add_attribute("item", ("stock", "temporal(integer)"))
        obj = db.get_object(names["a"])
        history = obj.value["stock"]
        assert isinstance(history, TemporalValue)
        assert history.at(added_at) is NULL
        assert not history.defined_at(added_at - 1)
        # Consistency holds across the addition boundary.
        assert is_consistent(obj, db, db, db.now)
        report = check_database(db)
        assert report.ok, report.all_violations()

    def test_h_type_is_time_indexed(self, shop_db):
        db, _ = shop_db
        added_at = db.now
        db.add_attribute("item", ("stock", "temporal(integer)"))
        cls = db.get_class("item")
        before = historical_type_at(cls, added_at - 1)
        after = historical_type_at(cls, added_at)
        assert "stock" not in before.names
        assert "stock" in after.names
        assert before.field_type("price") == parse_type("real")

    def test_pointwise_consistency_across_boundary(self, shop_db):
        db, names = shop_db
        added_at = db.now
        db.add_attribute("item", ("stock", "temporal(integer)"))
        db.tick(5)
        obj = db.get_object(names["a"])
        assert is_historically_consistent(
            obj, "item", added_at - 1, db, db, db.now
        )
        assert is_historically_consistent(
            obj, "item", db.now, db, db, db.now
        )

    def test_subclasses_inherit_the_addition(self, shop_db):
        db, names = shop_db
        db.add_attribute("item", ("stock", "temporal(integer)"))
        assert "stock" in db.get_class("discounted").attributes
        assert "stock" in db.get_object(names["b"]).value

    def test_conflict_with_subclass_rejected(self, shop_db):
        db, _ = shop_db
        db.add_attribute("discounted", ("rate", "real"))
        with pytest.raises(SchemaError):
            db.add_attribute("item", ("rate", "real"))

    def test_duplicate_rejected(self, shop_db):
        db, _ = shop_db
        with pytest.raises(SchemaError):
            db.add_attribute("item", ("price", "real"))

    def test_dropped_class_rejected(self, empty_db):
        empty_db.define_class("gone")
        empty_db.tick()
        empty_db.drop_class("gone")
        with pytest.raises(LifespanError):
            empty_db.add_attribute("gone", ("x", "integer"))


class TestRemoveAttribute:
    def test_static_removal_without_trace(self, shop_db):
        db, names = shop_db
        db.remove_attribute("item", "label")
        obj = db.get_object(names["a"])
        assert "label" not in obj.value
        assert "label" not in obj.retained
        assert "label" not in db.get_class("item").attributes
        assert check_database(db).ok

    def test_temporal_removal_retains_history(self, shop_db):
        db, names = shop_db
        removed_at = db.now
        db.remove_attribute("item", "price")
        obj = db.get_object(names["a"])
        assert "price" not in obj.value
        retained = obj.retained["price"]
        assert retained.at(0) == 10.0
        assert not retained.defined_at(removed_at)
        # Past consistency still honours the old declaration span.
        assert is_consistent(obj, db, db, db.now)
        report = check_database(db)
        assert report.ok, report.all_violations()

    def test_h_type_forgets_from_removal_on(self, shop_db):
        db, _ = shop_db
        removed_at = db.now
        db.remove_attribute("item", "price")
        cls = db.get_class("item")
        assert "price" in historical_type_at(cls, removed_at - 1).names
        assert "price" not in historical_type_at(cls, removed_at).names

    def test_inherited_attribute_must_be_removed_at_declaration(
        self, shop_db
    ):
        db, _ = shop_db
        with pytest.raises(SchemaError, match="inherited"):
            db.remove_attribute("discounted", "price")

    def test_unknown_attribute(self, shop_db):
        db, _ = shop_db
        with pytest.raises(SchemaError):
            db.remove_attribute("item", "ghost")


class TestAddRemoveCycles:
    def test_remove_then_readd_resumes_history(self, shop_db):
        db, names = shop_db
        db.remove_attribute("item", "price")
        db.tick(5)
        db.add_attribute("item", ("price", "temporal(real)"))
        obj = db.get_object(names["a"])
        history = obj.value["price"]
        assert history.at(0) == 10.0          # the old span survives
        assert not history.defined_at(12)     # the gap stays undefined
        assert history.at(db.now) is NULL     # recording resumed
        assert "price" not in obj.retained
        assert is_consistent(obj, db, db, db.now)
        report = check_database(db)
        assert report.ok, report.all_violations()

    def test_full_lifecycle_updates_keep_working(self, shop_db):
        db, names = shop_db
        db.remove_attribute("item", "price")
        db.tick(5)
        db.add_attribute("item", ("price", "temporal(real)"))
        db.tick(2)
        db.update_attribute(names["a"], "price", 12.5)
        obj = db.get_object(names["a"])
        assert obj.value["price"].at(db.now) == 12.5
        assert check_database(db).ok


class TestEvolutionPersistence:
    def test_roundtrip_preserves_declaration_spans(self, shop_db):
        from repro.database.persistence import (
            database_from_json,
            database_to_json,
        )

        db, names = shop_db
        db.remove_attribute("item", "label")
        db.add_attribute("item", ("stock", "temporal(integer)"))
        clone = database_from_json(database_to_json(db))
        cls = clone.get_class("item")
        assert cls.attributes["stock"].declared_at == db.now
        assert "label" in cls.retired_attributes
        _attr, retired_at = cls.retired_attributes["label"][-1]
        assert retired_at == db.now
        report = check_database(clone)
        assert report.ok, report.all_violations()
        # And the clone keeps evolving.
        clone.tick()
        clone.update_attribute(names["a"], "stock", 3)
        assert check_database(clone).ok


class TestRepeatedRetirement:
    """Regression: the stateful machine found that retiring the same
    attribute name twice lost the earlier declaration span, making
    objects with histories in that span spuriously inconsistent."""

    def _base(self, empty_db):
        db = empty_db
        db.define_class("person", attributes=[("name", "string")])
        db.define_class(
            "employee",
            parents=["person"],
            attributes=[("salary", "temporal(real)")],
        )
        db.create_object("employee", {"name": "A", "salary": 1.0})
        return db

    def test_retire_readd_as_static_retire(self, empty_db):
        db = self._base(empty_db)
        db.add_attribute("employee", ("extra", "temporal(integer)"))
        db.tick()
        db.remove_attribute("employee", "extra")
        db.add_attribute("employee", ("extra", "integer"))
        db.remove_attribute("employee", "extra")
        report = check_database(db)
        assert report.ok, report.all_violations()
        assert len(db.get_class("employee").retired_attributes["extra"]) == 2

    def test_two_temporal_spans_both_honoured(self, empty_db):
        db = self._base(empty_db)
        db.add_attribute("employee", ("extra", "temporal(integer)"))
        db.tick()
        db.remove_attribute("employee", "extra")
        db.tick()
        db.add_attribute("employee", ("extra", "temporal(integer)"))
        db.tick()
        db.remove_attribute("employee", "extra")
        report = check_database(db)
        assert report.ok, report.all_violations()
        cls = db.get_class("employee")
        spans = cls.retired_attributes["extra"]
        assert [a.declared_at for a, _r in spans] == [0, 2]
