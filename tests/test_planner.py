"""The cost-based query planner and the secondary attribute indexes.

Covers: access-path selection (index vs. scan, cost crossover), probe
exactness against the scan path for every atom shape and temporal
scope, incremental index maintenance off the event stream, wholesale
invalidation on transaction rollback (the PR 2 staleness discipline,
extended to the new layer), ablation switches (``REPRO_NO_PLANNER``
and the global cache switch), the EXPLAIN surface (plan rendering,
estimated vs. actual cardinalities, perf metrics), and the CLI
subcommand.
"""

import json

import pytest

from repro import perf
from repro.__main__ import main
from repro.database.attr_indexes import AttributeIndex, value_key
from repro.database.database import TemporalDatabase
from repro.database.persistence import database_to_json
from repro.database.transactions import Transaction
from repro.query import attr, const, evaluate, select
from repro.query import planner
from repro.query.ast import (
    And,
    Attr,
    Compare,
    CompareOp,
    Const,
    Contains,
    In,
    Not,
    Or,
)


def _store(n: int = 30, ticks: int = 10) -> tuple[TemporalDatabase, list]:
    db = TemporalDatabase()
    db.define_class(
        "item",
        attributes=[
            ("hot", "temporal(integer)"),
            ("label", "temporal(string)"),
            ("cold", "integer"),
            ("tags", "temporal(set-of(integer))"),
        ],
    )
    oids = [
        db.create_object(
            "item",
            {
                "hot": i % 10,
                "label": f"name-{i % 5}",
                "cold": i,
                "tags": {i % 3, 7},
            },
        )
        for i in range(n)
    ]
    for step in range(ticks):
        db.tick()
        for j, oid in enumerate(oids):
            if (step + j) % 4 == 0:
                db.update_attribute(oid, "hot", (step * 3 + j) % 10)
    return db, oids


def _agree(db, query) -> list:
    fast = evaluate(db, query)
    with planner.disabled():
        brute = evaluate(db, query)
    assert fast == brute
    return fast


# ------------------------------------------------------- access paths


def test_equality_probe_chooses_index_path():
    db, _ = _store()
    query = select("item").where(attr("hot") == const(3)).now().build()
    plan = planner.plan(db, query)
    assert plan.access_path == "index"
    assert plan.probes and plan.probes[0].attribute == "hot"
    assert not plan.residual
    _agree(db, query)


def test_unselective_probe_falls_back_to_scan():
    db = TemporalDatabase()
    db.define_class("u", attributes=[("k", "temporal(integer)")])
    for _ in range(20):
        db.create_object("u", {"k": 1})  # every object matches
    query = select("u").where(attr("k") == const(1)).now().build()
    plan = planner.plan(db, query)
    assert plan.access_path == "scan"
    assert plan.reason == "no probe selective enough"
    _agree(db, query)


def test_residual_conjunct_rides_on_index_candidates():
    db, _ = _store()
    predicate = And(
        Compare(CompareOp.EQ, Attr("hot"), Const(3)),
        Or(  # not indexable: stays residual
            Compare(CompareOp.GT, Attr("cold"), Const(5)),
            Compare(CompareOp.LT, Attr("cold"), Const(2)),
        ),
    )
    query = select("item").where(predicate).now().build()
    plan = planner.plan(db, query)
    assert plan.access_path == "index"
    assert len(plan.residual) == 1
    _agree(db, query)


def test_inequality_and_disjunction_stay_residual():
    db, _ = _store()
    for predicate in (
        Compare(CompareOp.NE, Attr("hot"), Const(3)),
        Or(
            Compare(CompareOp.EQ, Attr("hot"), Const(3)),
            Compare(CompareOp.EQ, Attr("hot"), Const(4)),
        ),
    ):
        query = select("item").where(predicate).now().build()
        plan = planner.plan(db, query)
        assert plan.access_path == "scan"
        _agree(db, query)


def test_double_negation_is_normalized():
    db, _ = _store()
    predicate = Not(Not(Compare(CompareOp.EQ, Attr("hot"), Const(3))))
    query = select("item").where(predicate).now().build()
    plan = planner.plan(db, query)
    assert plan.access_path == "index"
    _agree(db, query)


def test_flipped_comparison_probes_the_attribute():
    # Const <= Attr normalizes to Attr >= Const.
    spec = planner.atom_spec(Compare(CompareOp.LE, Const(8), Attr("hot")))
    assert spec == ("hot", ("cmp", CompareOp.GE, 8))
    db, _ = _store()
    predicate = Compare(CompareOp.EQ, Const("name-2"), Attr("label"))
    query = select("item").where(predicate).now().build()
    plan = planner.plan(db, query)
    assert plan.access_path == "index"
    assert plan.probes[0].attribute == "label"
    _agree(db, query)


def test_null_member_collection_stays_residual():
    from repro.values.null import NULL

    db, _ = _store()
    predicate = In(Attr("hot"), Const((3, NULL)))
    query = select("item").where(predicate).now().build()
    plan = planner.plan(db, query)
    assert plan.access_path == "scan"  # NULL in {NULL} is true; no index
    _agree(db, query)


# --------------------------------------------- atom shapes and scopes


@pytest.mark.parametrize(
    "build_scope",
    ["now", "sometime", "always"],
)
def test_probe_shapes_agree_with_scan(build_scope):
    db, _ = _store()
    predicates = [
        attr("hot") == const(3),
        attr("hot") >= const(7),
        attr("label") == const("name-2"),
        attr("hot").is_in(const((1, 2))),
        Contains(Attr("tags"), Const(2)),
        In(Const(7), Attr("tags")),
    ]
    for predicate in predicates:
        builder = select("item").where(predicate)
        query = getattr(builder, build_scope)().build()
        _agree(db, query)


def test_at_and_interval_scopes_agree_with_scan():
    db, _ = _store()
    predicate = attr("hot") == const(3)
    for t in (0, db.now // 2, db.now):
        _agree(db, select("item").where(predicate).at(t).build())
    _agree(
        db,
        select("item").where(predicate)
        .sometime_in(2, db.now - 1).build(),
    )
    _agree(
        db,
        select("item").where(predicate)
        .always_in(2, db.now - 1).build(),
    )


def test_static_attribute_probe_only_sees_now():
    db, _ = _store()
    query = select("item").where(attr("cold") == const(4)).at(0).build()
    assert _agree(db, query) == []  # static attrs unknown in the past
    now_query = (
        select("item").where(attr("cold") == const(4)).now().build()
    )
    assert len(_agree(db, now_query)) == 1


# ------------------------------------------------- index maintenance


def test_index_updates_incrementally_off_the_event_stream():
    db, oids = _store(n=12, ticks=4)
    query = select("item").where(attr("hot") == const(42)).now().build()
    assert _agree(db, query) == []  # builds the index
    assert "hot" in db.caches.attr_indexes.names()
    db.tick()
    db.update_attribute(oids[0], "hot", 42)
    assert _agree(db, query) == [oids[0]]
    db.tick()
    db.update_attribute(oids[0], "hot", 0)
    assert _agree(db, query) == []


def test_index_survives_migration_and_delete():
    db, oids = _store(n=12, ticks=4)
    db.define_class("special", parents=["item"])
    query = select("item").where(attr("hot") == const(3)).sometime
    query = query().build()
    before = _agree(db, query)
    db.tick()
    db.migrate(oids[0], "special")
    db.tick()
    victim = before[-1] if before else oids[3]
    if db.get_object(victim).lifespan.is_moving:
        db.delete_object(victim)
    _agree(db, query)


def test_index_rebuilds_after_schema_evolution():
    db, oids = _store(n=10, ticks=3)
    query = select("item").where(attr("hot") == const(3)).now().build()
    _agree(db, query)
    assert "hot" in db.caches.attr_indexes.names()
    db.define_class("other")  # schema evolution: bump_all
    assert db.caches.attr_indexes.names() == ()
    _agree(db, query)  # lazily rebuilt


def test_rollback_invalidates_attribute_indexes():
    """The PR 2 rollback-staleness suite, extended to the new layer:
    postings written inside an aborted transaction must not survive."""
    db, oids = _store(n=12, ticks=4)
    query = select("item").where(attr("hot") == const(42)).now().build()
    assert _agree(db, query) == []
    with pytest.raises(RuntimeError):
        with Transaction(db):
            db.tick()
            db.update_attribute(oids[0], "hot", 42)
            assert evaluate(db, query) == [oids[0]]  # indexed mid-txn
            raise RuntimeError("abort")
    # The registry was dropped wholesale; the lazily rebuilt index must
    # describe the rolled-back state.
    assert db.caches.attr_indexes.names() == ()
    assert _agree(db, query) == []


def test_planner_memo_not_stale_after_mutation():
    db, oids = _store(n=12, ticks=4)
    query = select("item").where(attr("hot") == const(5)).now().build()
    first = _agree(db, query)
    second = _agree(db, query)  # memoized probe
    assert first == second
    db.tick()
    db.update_attribute(oids[0], "hot", 5)
    assert oids[0] in _agree(db, query)


# ------------------------------------------------------------ ablation


def test_planner_ablation_switch():
    db, _ = _store(n=8, ticks=2)
    query = select("item").where(attr("hot") == const(3)).now().build()
    assert planner.is_enabled
    with planner.disabled():
        assert not planner.is_enabled
        plan = planner.plan(db, query)
        assert plan.access_path == "scan"
        assert plan.reason == "planner disabled"
    assert planner.is_enabled
    previous = planner.set_enabled(False)
    assert previous is True
    planner.set_enabled(True)


def test_cache_ablation_disables_index_probes():
    db, _ = _store(n=8, ticks=2)
    query = select("item").where(attr("hot") == const(3)).now().build()
    with perf.disabled():
        plan = planner.plan(db, query)
        assert plan.access_path == "scan"
        assert plan.reason == "caching ablated"
        brute = evaluate(db, query)
    assert evaluate(db, query) == brute


# ------------------------------------------------------------- EXPLAIN


def test_explain_reports_estimates_and_actuals():
    db, _ = _store()
    query = select("item").where(attr("hot") == const(3)).now().build()
    plan = planner.explain(db, query)
    assert plan.actual_results == len(evaluate(db, query))
    assert plan.actual_candidates is not None
    assert plan.est_candidates >= plan.actual_candidates
    text = plan.render()
    assert "INDEX" in text and "hot = 3" in text
    payload = plan.to_dict()
    assert payload["access_path"] == "index"
    assert payload["probes"][0]["attribute"] == "hot"


def test_explain_without_execution_leaves_actuals_unset():
    db, _ = _store(n=8, ticks=2)
    query = select("item").where(attr("hot") == const(3)).now().build()
    plan = planner.explain(db, query, execute_query=False)
    assert plan.actual_results is None
    assert "actual" not in plan.render()


def test_planner_metrics_move():
    db, _ = _store()
    perf.reset_stats()
    query = select("item").where(attr("hot") == const(3)).now().build()
    evaluate(db, query)
    stats = perf.stats()
    assert stats["planner.index_probes"]["count"] >= 1
    assert stats["planner.rows_pruned"]["count"] >= 1
    with planner.disabled():
        evaluate(db, query)
    assert perf.stats()["planner.fallback_scans"]["count"] >= 1


def test_explain_cli_subcommand(tmp_path, capsys):
    db, _ = _store(n=10, ticks=3)
    path = tmp_path / "db.json"
    path.write_text(database_to_json(db))
    assert main(
        ["explain", str(path), "select item where hot = 3"]
    ) == 0
    out = capsys.readouterr().out
    assert "path" in out and "extent" in out
    assert main(
        ["explain", str(path), "select item where hot = 3", "--json",
         "--no-exec"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["class"] == "item"
    assert payload["actual_results"] is None


# ------------------------------------------------------------ keying


def test_value_keys_follow_values_equal():
    assert value_key(1) == value_key(1.0)  # 1 == 1.0
    assert value_key(True) != value_key(1)  # bool is not a number
    assert value_key("a") == value_key("a")
    assert value_key({1, 2}) is None  # collections are unkeyable
    assert value_key(None) is None


def test_index_exactness_with_mixed_carriers():
    """Unkeyable stored values cannot match a keyable constant, so the
    index stays exact even when value_ok is lost."""
    db = TemporalDatabase()
    db.define_class("m", attributes=[("v", "temporal(integer)")])
    a = db.create_object("m", {"v": 3})
    db.tick()
    b = db.create_object("m", {"v": 5})
    index = AttributeIndex("v")
    for obj in db.objects():
        index.cover(obj)
    spec = ("cmp", CompareOp.EQ, 3)
    assert index.matching_at(spec, db.now, db.now) == {a}
    spec = ("cmp", CompareOp.GE, 4)
    assert index.matching_at(spec, db.now, db.now) == {b}
    # The when-probe resolves open pairs against the clock.
    holds = index.matching_when(("cmp", CompareOp.EQ, 3), db.now)
    assert a in holds and holds[a].contains(0)
