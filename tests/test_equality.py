"""The four equality notions (Definitions 5.7-5.10)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.objects.equality import (
    deep_value_equal,
    equal_by_identity,
    equal_by_value,
    instantaneous_value_equal,
    snapshot_segments,
    weak_value_equal,
)
from repro.objects.object import TemporalObject
from repro.temporal.temporalvalue import TemporalValue
from repro.values.oid import OID


def historical(oid, created, pairs, extra=None):
    """An all-temporal object with one attribute 'score'."""
    score = TemporalValue.from_items(pairs)
    attrs = {"score": score}
    if extra:
        attrs.update(extra)
    return TemporalObject(oid, created, "player", attrs)


class TestIdentity:
    def test_definition_5_7(self):
        a = historical(OID(1), 0, [((0, 5), 10)])
        b = historical(OID(1), 0, [((0, 5), 10)])
        c = historical(OID(2), 0, [((0, 5), 10)])
        assert equal_by_identity(a, b)
        assert not equal_by_identity(a, c)

    def test_applies_to_static_objects(self):
        a = TemporalObject(OID(1), 0, "person", {"name": "Ann"})
        b = TemporalObject(OID(1), 0, "person", {"name": "Ann"})
        assert equal_by_identity(a, b)


class TestValueEquality:
    def test_definition_5_8(self):
        a = historical(OID(1), 0, [((0, 5), 10), ((6, 9), 20)])
        b = historical(OID(2), 0, [((0, 5), 10), ((6, 9), 20)])
        assert equal_by_value(a, b)

    def test_requires_whole_history(self):
        a = historical(OID(1), 0, [((0, 5), 10), ((6, 9), 20)])
        b = historical(OID(2), 0, [((0, 9), 20)])
        assert not equal_by_value(a, b)

    def test_requires_same_attribute_names(self):
        a = TemporalObject(OID(1), 0, "c", {"x": 1})
        b = TemporalObject(OID(2), 0, "c", {"y": 1})
        assert not equal_by_value(a, b)

    def test_static_objects_reduce_to_plain_equality(self):
        a = TemporalObject(OID(1), 0, "person", {"name": "Ann"})
        b = TemporalObject(OID(2), 0, "person", {"name": "Ann"})
        c = TemporalObject(OID(3), 0, "person", {"name": "Bob"})
        assert equal_by_value(a, b)
        assert not equal_by_value(a, c)


class TestInstantaneousValueEquality:
    def test_definition_5_9(self):
        # Same value during the overlap [6,9]: snapshots agree at 6.
        a = historical(OID(1), 0, [((0, 5), 10), ((6, 9), 20)])
        b = historical(OID(2), 0, [((0, 5), 99), ((6, 9), 20)])
        assert instantaneous_value_equal(a, b, now=9)
        assert not equal_by_value(a, b)

    def test_needs_common_instant(self):
        a = historical(OID(1), 0, [((0, 4), 10)])
        b = historical(OID(2), 0, [((6, 9), 10)])
        a.end_lifespan(5)
        # Lifespans [0,4] and [0,now] overlap but snapshots never agree
        # at a COMMON instant (a holds 10 on [0,4]; b is undefined
        # there).
        assert not instantaneous_value_equal(a, b, now=9)
        # ...yet they are weakly equal: 10 at t'=2 vs t''=7.
        assert weak_value_equal(a, b, now=9)

    def test_static_objects_compared_at_now_only(self):
        a = TemporalObject(OID(1), 0, "person", {"name": "Ann"})
        b = TemporalObject(OID(2), 3, "person", {"name": "Ann"})
        assert instantaneous_value_equal(a, b, now=10)
        b.value["name"] = "Bob"
        assert not instantaneous_value_equal(a, b, now=10)


class TestWeakValueEquality:
    def test_definition_5_10(self):
        a = historical(OID(1), 0, [((0, 5), 10)])
        b = historical(OID(2), 0, [((20, 30), 10)])
        b.lifespan = __import__(
            "repro.temporal.intervals", fromlist=["Interval"]
        ).Interval(20, 30)
        assert weak_value_equal(a, b, now=40)

    def test_never_equal(self):
        a = historical(OID(1), 0, [((0, 5), 10)])
        b = historical(OID(2), 0, [((0, 5), 99)])
        a.end_lifespan(6)
        b.end_lifespan(6)
        assert not weak_value_equal(a, b, now=9)

    def test_gap_instants_have_empty_snapshots(self):
        """Degenerate case: at instants where no temporal attribute is
        meaningful the snapshot is the empty record, and two empty
        snapshots compare equal -- the objects look alike at times
        where nothing is recorded about either."""
        a = historical(OID(1), 0, [((0, 5), 10)])
        b = historical(OID(2), 0, [((0, 5), 99)])
        # Lifespans still open at now=9; [6,9] is a gap for both.
        assert weak_value_equal(a, b, now=9)
        assert instantaneous_value_equal(a, b, now=9)


class TestImplicationChain:
    """value => instantaneous => weak (Section 5.3)."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_chain_on_random_histories(self, data):
        def draw_pairs(label):
            n = data.draw(st.integers(1, 4), label=label)
            pairs, t = [], 0
            for _ in range(n):
                length = data.draw(st.integers(1, 5))
                pairs.append(((t, t + length - 1), data.draw(
                    st.integers(0, 2))))
                t += length
            return pairs

        a = historical(OID(1), 0, draw_pairs("a"))
        b = historical(OID(2), 0, draw_pairs("b"))
        now = 40
        if equal_by_value(a, b):
            assert instantaneous_value_equal(a, b, now)
        if instantaneous_value_equal(a, b, now):
            assert weak_value_equal(a, b, now)

    def test_identity_implies_all(self):
        a = historical(OID(1), 0, [((0, 5), 10)])
        b = historical(OID(1), 0, [((0, 5), 10)])
        assert equal_by_identity(a, b)
        assert equal_by_value(a, b)
        assert instantaneous_value_equal(a, b, now=9)
        assert weak_value_equal(a, b, now=9)


class TestSnapshotSegments:
    def test_piecewise_constant_partition(self):
        obj = historical(OID(1), 0, [((0, 5), 10), ((6, 9), 20)])
        obj.end_lifespan(10)
        segments = list(snapshot_segments(obj, now=20))
        starts = [segment.start for segment, _snap in segments]
        assert starts == [0, 6]
        # Each segment's snapshot is constant throughout it.
        from repro.objects.state import snapshot
        from repro.values.structure import values_equal

        for segment, snap in segments:
            for t in segment.instants():
                assert values_equal(snapshot(obj, t, 20), snap)


class TestExample54:
    def test_projects_story(self, project_db):
        """Example 5.4: same current state + same histories => value
        equal; same current values only => instantaneous equal."""
        db, names = project_db
        from repro.objects.equality import equal_by_value

        i1 = db.get_object(names["i1"])
        import copy

        twin = copy.deepcopy(i1)
        twin.oid = OID(999, "project")
        assert equal_by_value(i1, twin)
        assert instantaneous_value_equal(i1, twin, db.now)


class TestDeepEquality:
    def test_dereferences_oids(self):
        ann1 = TemporalObject(OID(10), 0, "person", {"name": "Ann"})
        ann2 = TemporalObject(OID(20), 0, "person", {"name": "Ann"})
        a = TemporalObject(OID(1), 0, "team", {"lead": OID(10)})
        b = TemporalObject(OID(2), 0, "team", {"lead": OID(20)})
        world = {o.oid: o for o in (ann1, ann2, a, b)}
        assert not equal_by_value(a, b)  # different oids shallowly
        assert deep_value_equal(a, b, world.get)

    def test_detects_deep_difference(self):
        ann = TemporalObject(OID(10), 0, "person", {"name": "Ann"})
        bob = TemporalObject(OID(20), 0, "person", {"name": "Bob"})
        a = TemporalObject(OID(1), 0, "team", {"lead": OID(10)})
        b = TemporalObject(OID(2), 0, "team", {"lead": OID(20)})
        world = {o.oid: o for o in (ann, bob, a, b)}
        assert not deep_value_equal(a, b, world.get)

    def test_cyclic_references_bisimulate(self):
        a = TemporalObject(OID(1), 0, "node", {"next": OID(2)})
        b = TemporalObject(OID(2), 0, "node", {"next": OID(1)})
        world = {OID(1): a, OID(2): b}
        assert deep_value_equal(a, b, world.get)

    def test_dangling_compares_by_oid(self):
        a = TemporalObject(OID(1), 0, "t", {"r": OID(9)})
        b = TemporalObject(OID(2), 0, "t", {"r": OID(9)})
        assert deep_value_equal(a, b, lambda _oid: None)
