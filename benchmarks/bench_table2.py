"""E2 -- regenerate Table 2 of the paper.

"Comparison among the existing temporal object-oriented data models
(II)": eight models x {what is timestamped, temporal attribute values,
kinds of attributes, histories of object types}.
"""

from repro.survey.models import MODELS, t_chimera_row_from_code
from repro.survey.tables import render_table2, table2_rows

from benchmarks.conftest import emit


def test_table2_reproduction(benchmark):
    rendered = benchmark(render_table2)

    rows = table2_rows()
    assert rows[0] == (
        "", "what is timestamped", "temporal attribute values",
        "kinds of attributes", "histories of object types",
    )
    assert rows[-1] == (
        "Our model", "attributes", "functions^1",
        "temporal + immutable + non-temporal", "YES",
    )
    # Distinguishing claim: only T_Chimera models non-temporal
    # attributes.
    assert sum(
        "non-temporal" in m.kinds_of_attributes for m in MODELS
    ) == 1
    assert t_chimera_row_from_code() == MODELS[-1]

    emit("table2", rendered)
