"""E16 -- WAL shipping: replication lag, catch-up, replay throughput.

Three measured series over a journaled primary on a real filesystem
and in-process :class:`~repro.replication.Replica` instances fed by
:class:`~repro.replication.LogShipper`:

* **lag vs write rate** -- the primary writes one round of N ops
  between shipper polls; replication lag (LSNs behind) observed just
  before the poll, and the time one ``sync`` takes to drain it;
* **catch-up time vs backlog** -- a *fresh* replica attaches to a
  primary that already holds a backlog of M committed frames (with a
  mid-stream checkpoint, so catch-up exercises the checkpoint fetch +
  tail-replay path), and we time how long ``sync`` takes to reach the
  head;
* **replay throughput vs primary write throughput** -- the same op
  stream timed on the primary (write + per-op fsync) and on the
  replica (apply + per-unit fsync).  A replica that cannot replay at
  least half as fast as the primary writes can never converge under
  sustained load, so the CI gate fails below 0.5x.

Every series ends with the replica verified at zero lag and the same
clock as the primary -- a fast replica that diverges is not a replica.

Run directly (not under pytest -- the ``bench_`` prefix keeps it out
of collection)::

    python benchmarks/bench_replication.py           # full run + artifacts
    python benchmarks/bench_replication.py --smoke   # quick sanity run
    python benchmarks/bench_replication.py --ci      # reduced sizes, exit 1
                                                     # unless replay >= 0.5x

The full run writes ``benchmarks/results/e16_replication.txt`` and the
machine-readable ``BENCH_replication.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from repro.database.recovery import open_database  # noqa: E402
from repro.replication import LogShipper, Replica  # noqa: E402

from benchmarks.conftest import emit, format_series  # noqa: E402


def _primary(directory: str):
    """A journaled primary with the bench schema (sync=always)."""
    db, _report = open_database(directory, sync="always")
    db.define_class(
        "person",
        attributes=[("name", "string"), ("salary", "temporal(real)")],
    )
    return db


def _write_ops(db, n_ops: int, seed: int) -> None:
    """n_ops journaled records: creates, temporal updates, ticks."""
    rng = random.Random(seed)
    oids = [obj.oid for obj in db.objects()]
    for index in range(n_ops):
        roll = rng.random()
        if not oids or roll < 0.25:
            oids.append(
                db.create_object(
                    "person",
                    {"name": f"p{index}", "salary": float(index)},
                )
            )
        elif roll < 0.35:
            db.tick()
        else:
            db.update_attribute(rng.choice(oids), "salary", index * 1.0)


def _assert_converged(db, shipper, replica) -> None:
    if shipper.lag(replica) != 0 or replica.applied_tick != db.now:
        raise SystemExit(
            f"CONVERGENCE FAILURE: replica {replica.name!r} at "
            f"lsn={replica.applied_lsn} tick={replica.applied_tick}, "
            f"primary at lsn={shipper.committed_lsn()} tick={db.now}"
        )


def bench_lag_vs_write_rate(rates: tuple[int, ...]) -> list[dict]:
    """One write round per rate; lag right before the poll, drain time."""
    rows = []
    for rate in rates:
        with tempfile.TemporaryDirectory() as tmp:
            db = _primary(f"{tmp}/primary")
            shipper = LogShipper(f"{tmp}/primary")
            replica = shipper.attach(
                Replica("lag", directory=f"{tmp}/replica")
            )
            shipper.sync(replica)  # ship the schema; start at zero lag
            start = time.perf_counter()
            _write_ops(db, rate, seed=rate)
            write_s = time.perf_counter() - start
            lag = shipper.lag(replica)
            start = time.perf_counter()
            shipper.sync(replica)
            sync_s = time.perf_counter() - start
            _assert_converged(db, shipper, replica)
        rows.append(
            {
                "write_rate": rate,
                "write_s": round(write_s, 3),
                "lag_before_sync": lag,
                "sync_s": round(sync_s, 3),
            }
        )
    return rows


def bench_catchup_vs_backlog(backlogs: tuple[int, ...]) -> list[dict]:
    """A fresh replica against an existing backlog (checkpoint + tail)."""
    rows = []
    for backlog in backlogs:
        with tempfile.TemporaryDirectory() as tmp:
            db = _primary(f"{tmp}/primary")
            _write_ops(db, backlog // 2, seed=backlog)
            db.checkpoint()  # catch-up must fetch this, then tail-replay
            _write_ops(db, backlog - backlog // 2, seed=backlog + 1)
            shipper = LogShipper(f"{tmp}/primary")
            replica = shipper.attach(
                Replica("catchup", directory=f"{tmp}/replica")
            )
            start = time.perf_counter()
            shipper.sync(replica)
            catchup_s = time.perf_counter() - start
            _assert_converged(db, shipper, replica)
        rows.append(
            {
                "backlog_frames": backlog,
                "catchup_s": round(catchup_s, 3),
                "frames_per_s": round(backlog / catchup_s),
            }
        )
    return rows


def bench_replay_throughput(n_ops: int) -> dict:
    """Primary write throughput vs replica replay throughput."""
    with tempfile.TemporaryDirectory() as tmp:
        db = _primary(f"{tmp}/primary")
        start = time.perf_counter()
        _write_ops(db, n_ops, seed=7)
        write_s = time.perf_counter() - start
        shipper = LogShipper(f"{tmp}/primary")
        replica = shipper.attach(
            Replica("replay", directory=f"{tmp}/replica")
        )
        start = time.perf_counter()
        applied = shipper.sync(replica)
        replay_s = time.perf_counter() - start
        _assert_converged(db, shipper, replica)
    write_tput = n_ops / write_s
    replay_tput = applied / replay_s
    return {
        "workload": f"replay n={n_ops} ops",
        "write_ops_per_s": round(write_tput),
        "replay_frames_per_s": round(replay_tput),
        "ratio": round(replay_tput / write_tput, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, no artifacts (sanity check)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="reduced sizes; exit 1 unless replay >= 0.5x write rate",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rates, backlogs, n_ops = (5, 20), (30,), 50
    elif args.ci:
        rates, backlogs, n_ops = (50, 200), (200, 800), 800
    else:
        rates, backlogs, n_ops = (50, 200, 800), (250, 1000, 3000), 1500

    lag_rows = bench_lag_vs_write_rate(rates)
    catchup_rows = bench_catchup_vs_backlog(backlogs)
    throughput = bench_replay_throughput(n_ops)

    table = format_series(
        "E16: replication lag vs write rate (one round between polls)",
        ("write rate", "write s", "lag (LSNs)", "sync s"),
        [
            (
                r["write_rate"],
                f"{r['write_s']:.3f}",
                r["lag_before_sync"],
                f"{r['sync_s']:.3f}",
            )
            for r in lag_rows
        ],
    )
    table += "\n\n" + format_series(
        "catch-up time vs backlog (fresh replica, checkpoint + tail)",
        ("backlog", "catch-up s", "frames/s"),
        [
            (r["backlog_frames"], f"{r['catchup_s']:.3f}", r["frames_per_s"])
            for r in catchup_rows
        ],
    )
    table += "\n\n" + format_series(
        "replay throughput vs primary write throughput",
        ("workload", "write ops/s", "replay frames/s", "ratio"),
        [
            (
                throughput["workload"],
                throughput["write_ops_per_s"],
                throughput["replay_frames_per_s"],
                f"{throughput['ratio']:.2f}x",
            )
        ],
    )

    if args.smoke:
        print(table)
        print("smoke ok (all replicas converged)")
        return 0

    payload = {
        "experiment": "E16 WAL shipping",
        "lag_vs_write_rate": lag_rows,
        "catchup_vs_backlog": catchup_rows,
        "replay_throughput": throughput,
        "target": "replay throughput >= 0.5x primary write throughput",
    }
    (REPO_ROOT / "BENCH_replication.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if args.ci:
        print(table)
        if throughput["ratio"] < 0.5:
            print(
                f"CI GATE FAILURE: replay only {throughput['ratio']}x "
                f"primary write throughput (need >= 0.5x)"
            )
            return 1
        print(f"ci gate ok: {throughput['ratio']}x >= 0.5x")
        return 0

    emit("e16_replication", table)
    print(f"wrote {REPO_ROOT / 'BENCH_replication.json'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
