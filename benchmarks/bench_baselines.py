"""E8 -- T_Chimera's attribute timestamping vs the relational designs.

The paper's introduction positions object models with
attribute-timestamped state against tuple timestamping (1NF) and plain
snapshot databases.  This bench replays one update log -- with a
configurable *update skew* (how unevenly changes concentrate on few
attributes) -- into all three baseline stores and the T_Chimera engine,
and reports:

* storage cells (the space story);
* update cost;
* one-attribute history queries (native for attribute timestamping,
  scan-and-coalesce for tuple timestamping, impossible for snapshot);
* full-state reconstruction at a past instant (native for tuple
  timestamping, per-attribute searches for attribute timestamping).

Expected shape (recorded in EXPERIMENTS.md): attribute timestamping
stores ~1/k of tuple timestamping's cells with k attributes per row and
skewed updates, and wins attribute-history queries; tuple timestamping
wins point snapshots; the snapshot store is smallest and fastest but
answers no history query at all (reported as n/a).
"""

import random

import pytest

from repro.baselines import (
    AttributeTimestampedStore,
    HistoryUnsupported,
    Operation,
    SnapshotStore,
    TupleTimestampedStore,
    replay,
    stores_agree,
)
from repro.database.database import TemporalDatabase

from benchmarks.conftest import emit, format_series

N_KEYS = 20
N_ATTRS = 8
N_UPDATES = 2000
ATTRS = [f"a{i}" for i in range(N_ATTRS)]


def _log(skew: float, seed: int = 5) -> list[Operation]:
    """An update log; *skew* in [0,1): 0 = uniform across attributes,
    high = concentrated on attribute a0 (the "hot column")."""
    rng = random.Random(seed)
    ops = [
        Operation(
            "insert", key, 0, row={a: rng.randrange(100) for a in ATTRS}
        )
        for key in range(N_KEYS)
    ]
    t = 1
    for _ in range(N_UPDATES):
        key = rng.randrange(N_KEYS)
        attribute = (
            ATTRS[0]
            if rng.random() < skew
            else rng.choice(ATTRS)
        )
        ops.append(
            Operation(
                "update", key, t, attribute=attribute,
                value=rng.randrange(100),
            )
        )
        t += rng.randint(0, 1)
    return ops


def _model_replay(ops: list[Operation]) -> TemporalDatabase:
    """The same log through the T_Chimera engine (all attributes
    temporal: the model's analogue of attribute timestamping)."""
    db = TemporalDatabase()
    db.define_class(
        "row", attributes=[(a, "temporal(integer)") for a in ATTRS]
    )
    keys = {}
    for op in ops:
        if op.at > db.now:
            db.tick(op.at - db.now)
        if op.kind == "insert":
            keys[op.key] = db.create_object("row", op.row)
        elif op.kind == "update":
            db.update_attribute(keys[op.key], op.attribute, op.value)
    return db, keys


@pytest.mark.parametrize(
    "store_cls",
    [SnapshotStore, TupleTimestampedStore, AttributeTimestampedStore],
    ids=["snapshot", "tuple-ts", "attribute-ts"],
)
def test_update_throughput(benchmark, store_cls):
    ops = _log(skew=0.5)

    def run():
        store = store_cls(ATTRS)
        replay(store, ops)
        return store

    benchmark(run)


def test_model_update_throughput(benchmark):
    ops = _log(skew=0.5)[: N_KEYS + 400]  # engine does full typing
    benchmark(lambda: _model_replay(ops))


@pytest.mark.parametrize(
    "store_cls",
    [TupleTimestampedStore, AttributeTimestampedStore],
    ids=["tuple-ts", "attribute-ts"],
)
def test_attribute_history_query(benchmark, store_cls):
    store = store_cls(ATTRS)
    replay(store, _log(skew=0.5))
    benchmark(store.attribute_history, 3, "a0")


@pytest.mark.parametrize(
    "store_cls",
    [TupleTimestampedStore, AttributeTimestampedStore],
    ids=["tuple-ts", "attribute-ts"],
)
def test_point_snapshot_query(benchmark, store_cls):
    store = store_cls(ATTRS)
    ops = _log(skew=0.5)
    replay(store, ops)
    mid = max(op.at for op in ops) // 2
    benchmark(store.snapshot_at, 3, mid)


def test_e8_summary(benchmark, results_dir):
    def _run():
        import timeit

        rows = []
        for skew in (0.0, 0.5, 0.9):
            ops = _log(skew=skew)
            mid = max(op.at for op in ops) // 2
            stores = {
                "snapshot": SnapshotStore(ATTRS),
                "tuple-ts": TupleTimestampedStore(ATTRS),
                "attribute-ts": AttributeTimestampedStore(ATTRS),
            }
            for store in stores.values():
                replay(store, ops)
            assert stores_agree(
                stores["tuple-ts"], stores["attribute-ts"],
                range(N_KEYS), [0, mid, mid * 2],
            )
            for name, store in stores.items():
                try:
                    history = timeit.timeit(
                        lambda: store.attribute_history(3, "a0"), number=200
                    ) / 200
                    history_cell = f"{history * 1e6:.1f}"
                except HistoryUnsupported:
                    history_cell = "n/a"
                try:
                    snap = timeit.timeit(
                        lambda: store.snapshot_at(3, mid), number=200
                    ) / 200
                    snap_cell = f"{snap * 1e6:.1f}"
                except HistoryUnsupported:
                    snap_cell = "n/a"
                rows.append(
                    (
                        f"{skew:.1f}",
                        name,
                        store.storage_cells(),
                        history_cell,
                        snap_cell,
                    )
                )
        emit(
            "e8_baselines",
            format_series(
                "E8: storage & query cost, by update skew "
                f"({N_KEYS} rows x {N_ATTRS} attrs, {N_UPDATES} updates)",
                ("skew", "store", "cells", "attr-history us", "snapshot us"),
                rows,
            ),
        )

        # The paper's qualitative claims, asserted:
        by = {}
        for skew_label, name, cells, _h, _s in rows:
            by[(skew_label, name)] = cells
        for skew_label in ("0.0", "0.5", "0.9"):
            assert (
                by[(skew_label, "attribute-ts")]
                < by[(skew_label, "tuple-ts")]
            )
            assert (
                by[(skew_label, "snapshot")]
                < by[(skew_label, "attribute-ts")]
            )


    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_model_agrees_with_attribute_store():
    """The engine's temporal attributes and the N1NF baseline describe
    the same function of time for the same log."""
    ops = _log(skew=0.5)[: N_KEYS + 300]
    store = AttributeTimestampedStore(ATTRS)
    replay(store, ops)
    db, keys = _model_replay(ops)
    horizon = db.now
    for key in (0, 3, 7):
        obj = db.get_object(keys[key])
        for attribute in ("a0", "a3"):
            history = obj.value[attribute]
            base = store.attribute_history(key, attribute)
            model_changes = [
                (interval.start, carried)
                for interval, carried in history.pairs()
            ]
            base_changes = [(start, v) for (start, _e), v in base]
            assert model_changes == base_changes
