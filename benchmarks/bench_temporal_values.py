"""E4 -- temporal value operations vs. history length.

The paper argues (Section 3.2) that the value of a temporal variable
"can be represented more efficiently as a set of pairs" <interval,
value> than as per-instant pairs.  This bench quantifies that claim and
the implementation's other representation choices (DESIGN.md Section
6):

* ``at(t)`` via bisect over pairs is O(log H) -- vs a linear scan;
* coalescing: adjacent equal-valued pairs are merged, shrinking both
  storage and lookup structures (ablated with ``coalesce=False``);
* the interval-pair encoding stores one pair per *change*, the naive
  per-instant encoding one entry per *instant* -- the paper's
  efficiency claim, measured as a storage ratio.

Expected shape: bisect flat-ish in H, scan linear in H; pair encoding
smaller than instant encoding by the mean pair duration.
"""

import pytest

from repro.workloads import synthetic_history

from benchmarks.conftest import emit, format_series

LENGTHS = [10, 100, 1000, 10000]


def _linear_scan_at(history, t):
    """The naive O(H) lookup, for the ablation."""
    for interval, value in history.pairs():
        if interval.start <= t <= interval.end:  # type: ignore[operator]
            return value
    raise KeyError(t)


@pytest.mark.parametrize("length", LENGTHS)
def test_at_bisect(benchmark, length):
    history = synthetic_history(length, seed=1)
    probe = history.last_instant() // 2
    while not history.defined_at(probe):
        probe += 1
    benchmark(history.at, probe)


@pytest.mark.parametrize("length", LENGTHS)
def test_at_linear_scan_ablation(benchmark, length):
    history = synthetic_history(length, seed=1)
    probe = history.last_instant() // 2
    while not history.defined_at(probe):
        probe += 1
    benchmark(_linear_scan_at, history, probe)


@pytest.mark.parametrize("length", [100, 1000])
def test_assign_append(benchmark, length):
    """Appending at the history's end (the engine's hot update path)."""
    base = synthetic_history(length, seed=2)
    end = base.last_instant()

    def run():
        history = base.copy()
        history.assign(end + 1, -1)
        history.assign(end + 5, -2)

    benchmark(run)


@pytest.mark.parametrize("length", [100, 1000])
def test_domain_computation(benchmark, length):
    history = synthetic_history(length, seed=3)
    benchmark(history.domain)


@pytest.mark.parametrize("length", [100, 1000])
def test_restrict(benchmark, length):
    from repro.temporal.intervalsets import IntervalSet

    history = synthetic_history(length, seed=4)
    window = IntervalSet.span(
        history.first_instant(), history.last_instant() // 2
    )
    benchmark(history.restrict, window)


def test_e4_summary(benchmark, results_dir):
    """The E4 artifact: storage and lookup cost of the encodings."""
    def _run():
        rows = []
        for length in LENGTHS:
            pairs = synthetic_history(length, seed=1)
            uncoalesced = synthetic_history(length, seed=1, coalesce=False)
            instants = pairs.domain().cardinality()
            rows.append(
                (
                    length,
                    len(pairs),
                    len(uncoalesced),
                    instants,
                    f"{instants / max(len(pairs), 1):.1f}x",
                )
            )
        emit(
            "e4_temporal_values",
            format_series(
                "E4: temporal value encodings (storage entries)",
                ("changes", "coalesced pairs", "raw pairs",
                 "per-instant entries", "pair-encoding saving"),
                rows,
            ),
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)