"""E11 -- hot-path caches: cached vs ablated micro-benchmarks.

Measures the three read paths the caching layer (PR 1) accelerates,
each with caching enabled and with caching ablated via
``repro.perf.disabled()``:

* ``snapshot(i, t)`` on an object with a deep attribute history (the
  seed's E7 workload: 16 attributes, history 1000 -- 303.4 us/op in
  the seed, where every ``at()`` rebuilt the start-key list);
* repeated ``pi(c, t)`` / anchor-extent stabs across a sweep of
  instants over a churning population (exercises the extent cache and
  the interval-stabbing index);
* AT-, NOW- and SOMETIME-scoped query evaluation over objects with
  deep per-attribute histories (exercises the start-key cache under
  the evaluator's per-candidate reads; the quantified SOMETIME scope
  additionally drives the ``database.membership_times`` cache, which
  NOW/AT never touch).

Ablated runs recompute every answer from first principles but still
run the *current* algorithms; the seed reference column in the JSON
records the pre-PR numbers for the snapshot workload where the seed's
E7 artifact provides one.

Run directly (not under pytest -- the ``bench_`` prefix keeps it out
of collection)::

    python benchmarks/bench_hotpath.py           # full run + artifacts
    python benchmarks/bench_hotpath.py --smoke   # quick CI sanity run

The full run writes ``benchmarks/results/e11_hotpath.txt`` and the
machine-readable ``BENCH_hotpath.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
import timeit
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from repro import perf  # noqa: E402
from repro.database.database import TemporalDatabase  # noqa: E402
from repro.query import attr, select  # noqa: E402

from benchmarks.conftest import emit, format_series  # noqa: E402

#: The seed's E7 artifact (benchmarks/results/e7_snapshot.txt before
#: this PR): snapshot at 16 attributes, history 1000.
SEED_SNAPSHOT_16_1000_US = 303.4


def _timeit_us(fn, number: int) -> float:
    """Best-of-3 mean, in microseconds per call."""
    best = min(timeit.timeit(fn, number=number) for _ in range(3))
    return best / number * 1e6


def _build_snapshot_db(n_attrs: int, history: int):
    db = TemporalDatabase()
    half = n_attrs // 2
    attrs = [(f"t{i}", "temporal(integer)") for i in range(half)]
    attrs += [(f"s{i}", "integer") for i in range(half)]
    db.define_class("rich", attributes=attrs)
    oid = db.create_object(
        "rich",
        {f"t{i}": 0 for i in range(half)}
        | {f"s{i}": 0 for i in range(half)},
    )
    for step in range(history):
        db.tick()
        for i in range(half):
            db.update_attribute(oid, f"t{i}", step)
    return db, oid


def bench_snapshot(history: int, number: int) -> dict:
    """snapshot(i, now) with deep per-attribute histories."""
    db, oid = _build_snapshot_db(16, history)
    run = lambda: db.snapshot_at(oid)  # noqa: E731
    run()  # warm the cache once; steady-state is what the cache serves
    cached = _timeit_us(run, number)
    with perf.disabled():
        ablated = _timeit_us(run, max(number // 10, 5))
    return {
        "workload": f"snapshot history={history}",
        "cached_us": round(cached, 2),
        "ablated_us": round(ablated, 2),
        "speedup": round(ablated / cached, 1),
    }


def _build_extent_db(n_objects: int, ticks: int):
    db = TemporalDatabase()
    db.define_class("thing", attributes=[("score", "temporal(integer)")])
    oids = [db.create_object("thing", {"score": i}) for i in range(n_objects)]
    for step in range(ticks):
        db.tick()
        # Churn: a rolling window of deletions keeps membership
        # intervals non-trivial so the stabbing index has work to do.
        if step % 10 == 5 and oids:
            db.delete_object(oids.pop(), force=True)
    return db


def bench_extent(n_objects: int, ticks: int, number: int) -> dict:
    """Repeated pi/anchor-extent stabs across a sweep of instants."""
    db = _build_extent_db(n_objects, ticks)
    instants = list(range(0, db.now + 1, max(db.now // 50, 1)))

    def sweep():
        for t in instants:
            db.anchor_extent("thing", t)

    sweep()
    cached = _timeit_us(sweep, number)
    with perf.disabled():
        ablated = _timeit_us(sweep, max(number // 10, 3))
    return {
        "workload": f"extent sweep n={n_objects} ticks={ticks}",
        "cached_us": round(cached, 2),
        "ablated_us": round(ablated, 2),
        "speedup": round(ablated / cached, 1),
    }


def _build_query_db(n_objects: int, ticks: int):
    db = TemporalDatabase()
    db.define_class("thing", attributes=[("score", "temporal(integer)")])
    oids = [db.create_object("thing", {"score": i}) for i in range(n_objects)]
    for step in range(ticks):
        db.tick()
        for i, oid in enumerate(oids):
            db.update_attribute(oid, "score", (step * (i + 3)) % 997)
    return db


def bench_query(
    scope: str, n_objects: int, ticks: int, number: int
) -> dict:
    """AT/NOW-scoped query over deep per-object histories."""
    db = _build_query_db(n_objects, ticks)
    query = select("thing").where(attr("score") > 400)
    if scope == "AT":
        query = query.at(db.now // 2)
    elif scope == "SOMETIME":
        # Quantified scope: ranges over each candidate's membership
        # lifespan, the only read path through the membership_times
        # cache -- without this workload that cache shows 0/0 in the
        # artifact.
        query = query.sometime()
    run = lambda: query.run(db)  # noqa: E731
    run()
    cached = _timeit_us(run, number)
    with perf.disabled():
        ablated = _timeit_us(run, max(number // 10, 3))
    return {
        "workload": f"query {scope} n={n_objects} history={ticks}",
        "cached_us": round(cached, 2),
        "ablated_us": round(ablated, 2),
        "speedup": round(ablated / cached, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads, no artifacts (CI sanity check)",
    )
    args = parser.parse_args(argv)

    perf.reset_stats()
    if args.smoke:
        results = [
            bench_snapshot(history=100, number=50),
            bench_extent(n_objects=64, ticks=40, number=10),
            bench_query("AT", n_objects=40, ticks=40, number=5),
            bench_query("SOMETIME", n_objects=24, ticks=24, number=3),
        ]
    else:
        results = [
            bench_snapshot(history=100, number=500),
            bench_snapshot(history=1000, number=500),
            bench_extent(n_objects=300, ticks=120, number=30),
            bench_query("AT", n_objects=200, ticks=200, number=20),
            bench_query("NOW", n_objects=200, ticks=200, number=20),
            bench_query("SOMETIME", n_objects=100, ticks=100, number=5),
        ]

    rows = [
        (
            r["workload"],
            f"{r['cached_us']:.1f}",
            f"{r['ablated_us']:.1f}",
            f"{r['speedup']:.1f}x",
        )
        for r in results
    ]
    table = format_series(
        "E11: hot-path caches, cached vs ablated (us/op)",
        ("workload", "cached", "ablated", "speedup"),
        rows,
    )

    if args.smoke:
        print(table)
        slow = [r for r in results if r["speedup"] < 1.0]
        if slow:
            print(f"SMOKE WARNING: cache slower than ablated on {slow}")
        print("smoke ok")
        return 0

    emit("e11_hotpath", table)
    payload = {
        "experiment": "E11 hot-path caches",
        "results": results,
        "seed_reference": {
            "snapshot history=1000": {
                "seed_us": SEED_SNAPSHOT_16_1000_US,
                "source": "seed E7 artifact (pre-PR _starts rebuild)",
            }
        },
        "stats": perf.stats(),
    }
    (REPO_ROOT / "BENCH_hotpath.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"wrote {REPO_ROOT / 'BENCH_hotpath.json'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
