"""E14 -- observability overhead: enabled vs disabled vs uninstrumented.

Measures what the tracing layer (PR 5) costs on the bench_hotpath
workloads, in three configurations per workload:

* **baseline** -- an *uninstrumented clone* of the traced code path
  (the method bodies below replicate ``snapshot_at`` /
  ``anchor_extent`` / the planner chain exactly, minus the
  ``obs.is_enabled`` guard), i.e. what the code cost before the
  instrumentation existed;
* **disabled** -- the real code with ``obs.set_enabled(False)``: the
  per-call cost is one module-attribute load and a branch.  This is
  the number the CI gate holds under 5%;
* **enabled** -- tracing on: span allocation, ``perf_counter_ns``
  pairs, histogram record, sink dispatch on roots.

The cache-miss paths are measured under ``perf.disabled()`` (cache
ablation) because that is where the guards live -- a warm cache hit
never reaches the instrumentation and costs exactly 0 either way.

Configurations are interleaved round-robin and the best (min) time per
configuration is kept, so a background-load blip cannot bias one side
of the comparison.

Run directly (not under pytest)::

    python benchmarks/bench_obs.py          # full run + artifacts
    python benchmarks/bench_obs.py --ci     # smaller run, gate <5%

Both modes write ``BENCH_obs.json`` at the repo root; the full run
also writes ``benchmarks/results/e14_obs.txt``.
"""

from __future__ import annotations

import argparse
import json
import sys
import timeit
import types
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from repro import obs, perf  # noqa: E402
from repro.database.database import INDEX_MIN_POPULATION  # noqa: E402
from repro.query import attr, evaluator, planner, select  # noqa: E402

from benchmarks.bench_hotpath import (  # noqa: E402
    _build_extent_db,
    _build_query_db,
    _build_snapshot_db,
)
from benchmarks.conftest import emit, format_series  # noqa: E402

GATE_PCT = 5.0

# ---------------------------------------------------------------------------
# Uninstrumented clones.  These replicate the traced bodies in
# src/repro/database/database.py minus the obs guard -- keep in sync.


def _plain_snapshot_at(self, oid, t=None):
    from repro.objects.state import snapshot as take_snapshot

    instant = self.now if t is None else t
    obj = self.get_object(oid)
    cached = self.caches.get_snapshot(oid, instant, self.now)
    if cached is not None:
        return cached
    result = take_snapshot(obj, instant, self.now)
    self.caches.put_snapshot(oid, instant, self.now, result)
    return result


def _plain_anchor_extent(self, class_name, t):
    cached = self.caches.get_pi(class_name, t)
    if cached is not None:
        return cached
    cls = self.get_class(class_name)
    use_index = (
        perf.is_enabled
        and not self.caches.suspended
        and 0 <= t <= self.now
        and len(cls.history.ever_members()) >= INDEX_MIN_POPULATION
    )
    result = self._compute_anchor_extent(cls, class_name, t, use_index)
    self.caches.put_pi(class_name, t, result)
    return result


# ---------------------------------------------------------------------------


def _interleaved_us(configs, number: int, rounds: int = 5) -> dict:
    """Best (min) µs/call per named config, measured round-robin.

    *configs* is ``[(name, setup, op, teardown), ...]``; setup/teardown
    run outside the timed region.
    """
    best = {name: float("inf") for name, *_ in configs}
    for _ in range(rounds):
        for name, setup, op, teardown in configs:
            setup()
            try:
                elapsed = timeit.timeit(op, number=number)
            finally:
                teardown()
            best[name] = min(best[name], elapsed)
    return {name: t / number * 1e6 for name, t in best.items()}


def _result(workload: str, times: dict) -> dict:
    baseline = times["baseline"]
    return {
        "workload": workload,
        "baseline_us": round(baseline, 3),
        "disabled_us": round(times["disabled"], 3),
        "enabled_us": round(times["enabled"], 3),
        "disabled_overhead_pct": round(
            (times["disabled"] - baseline) / baseline * 100, 2
        ),
        "enabled_overhead_pct": round(
            (times["enabled"] - baseline) / baseline * 100, 2
        ),
    }


def bench_snapshot_miss(history: int, number: int) -> dict:
    """The db.snapshot guard, forced onto the miss path every call."""
    db, oid = _build_snapshot_db(16, history)
    plain = types.MethodType(_plain_snapshot_at, db)
    real = db.snapshot_at
    state = {}

    def setup_common():
        state["perf"] = perf.set_enabled(False)  # every call recomputes

    def teardown_common():
        perf.set_enabled(state["perf"])
        obs.set_enabled(state.get("obs", True))

    def with_obs(flag):
        def setup():
            setup_common()
            state["obs"] = obs.set_enabled(flag)

        return setup

    times = _interleaved_us(
        [
            ("baseline", setup_common, lambda: plain(oid), teardown_common),
            ("disabled", with_obs(False), lambda: real(oid), teardown_common),
            ("enabled", with_obs(True), lambda: real(oid), teardown_common),
        ],
        number,
    )
    return _result(f"snapshot miss path (history={history})", times)


def bench_extent_miss(n_objects: int, ticks: int, number: int) -> dict:
    """The db.extent guard, forced onto the miss path every stab."""
    db = _build_extent_db(n_objects, ticks)
    instants = list(range(0, db.now + 1, max(db.now // 50, 1)))
    plain = types.MethodType(_plain_anchor_extent, db)
    real = db.anchor_extent
    state = {}

    def sweep_plain():
        for t in instants:
            plain("thing", t)

    def sweep_real():
        for t in instants:
            real("thing", t)

    def setup_common():
        state["perf"] = perf.set_enabled(False)

    def teardown_common():
        perf.set_enabled(state["perf"])
        obs.set_enabled(state.get("obs", True))

    def with_obs(flag):
        def setup():
            setup_common()
            state["obs"] = obs.set_enabled(flag)

        return setup

    times = _interleaved_us(
        [
            ("baseline", setup_common, sweep_plain, teardown_common),
            ("disabled", with_obs(False), sweep_real, teardown_common),
            ("enabled", with_obs(True), sweep_real, teardown_common),
        ],
        number,
    )
    times = {k: t / len(instants) for k, t in times.items()}  # per stab
    return _result(f"extent miss stab (n={n_objects})", times)


def bench_query(n_objects: int, ticks: int, number: int) -> dict:
    """The query.evaluate/planner.plan/planner.execute guards.

    Caches stay enabled (the planner path is traced on every call, not
    just misses); the baseline swaps in the unwrapped ``_plan`` /
    ``_run`` / ``_evaluate`` internals.
    """
    db = _build_query_db(n_objects, ticks)
    query = select("thing").where(attr("score") > 400).build()
    state = {}

    def run_real():
        evaluator.evaluate(db, query)

    def run_plain():
        evaluator._evaluate(db, query)

    def setup_baseline():
        state["plan"], state["run"] = planner.plan, planner.run
        planner.plan, planner.run = planner._plan, planner._run

    def teardown_baseline():
        planner.plan, planner.run = state["plan"], state["run"]

    def with_obs(flag):
        def setup():
            state["obs"] = obs.set_enabled(flag)

        return setup

    def teardown_obs():
        obs.set_enabled(state["obs"])

    run_real()  # warm caches/indexes once for every configuration
    times = _interleaved_us(
        [
            ("baseline", setup_baseline, run_plain, teardown_baseline),
            ("disabled", with_obs(False), run_real, teardown_obs),
            ("enabled", with_obs(True), run_real, teardown_obs),
        ],
        number,
    )
    return _result(f"query NOW (n={n_objects}, warm)", times)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ci",
        action="store_true",
        help="smaller workloads; exit 1 if disabled-mode overhead "
        f">= {GATE_PCT}%% on any workload",
    )
    args = parser.parse_args(argv)

    perf.reset_stats()
    obs.reset()
    if args.ci:
        results = [
            bench_snapshot_miss(history=100, number=400),
            bench_extent_miss(n_objects=64, ticks=40, number=30),
            bench_query(n_objects=60, ticks=40, number=40),
        ]
    else:
        results = [
            bench_snapshot_miss(history=100, number=1000),
            bench_snapshot_miss(history=1000, number=300),
            bench_extent_miss(n_objects=300, ticks=120, number=40),
            bench_query(n_objects=200, ticks=100, number=60),
        ]

    rows = [
        (
            r["workload"],
            f"{r['baseline_us']:.2f}",
            f"{r['disabled_us']:.2f}",
            f"{r['enabled_us']:.2f}",
            f"{r['disabled_overhead_pct']:+.1f}%",
            f"{r['enabled_overhead_pct']:+.1f}%",
        )
        for r in results
    ]
    table = format_series(
        "E14: observability overhead (us/op; overhead vs uninstrumented)",
        ("workload", "baseline", "disabled", "enabled", "off-ovh", "on-ovh"),
        rows,
    )
    print(table)

    worst = max(r["disabled_overhead_pct"] for r in results)
    payload = {
        "experiment": "E14 observability overhead",
        "gate_pct": GATE_PCT,
        "worst_disabled_overhead_pct": worst,
        "gate_ok": worst < GATE_PCT,
        "results": results,
        "histograms": obs.histogram_stats(),
    }
    (REPO_ROOT / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"wrote {REPO_ROOT / 'BENCH_obs.json'}")
    if not args.ci:
        emit("e14_obs", table)
    if args.ci and worst >= GATE_PCT:
        print(
            f"GATE FAILED: disabled-mode overhead {worst:.1f}% "
            f">= {GATE_PCT}%"
        )
        return 1
    print(f"gate ok: worst disabled-mode overhead {worst:+.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
