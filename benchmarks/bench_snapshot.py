"""E7 -- snapshot projection and substitutability coercion.

Measures ``snapshot(i, t)`` (Section 5.3) and the Section 6.1 coercion
view (``view_as``) against the number of attributes and the temporal
fraction of the object's state.

Expected shape: both linear in attribute count; per-attribute cost of
temporal attributes is one bisect into the history, so history length
only enters logarithmically.
"""

import pytest

from repro.database.database import TemporalDatabase
from repro.inheritance.coercion import as_member_of
from repro.objects.state import h_state, snapshot

from benchmarks.conftest import emit, format_series


def _build(n_temporal: int, n_static: int, history: int):
    db = TemporalDatabase()
    attrs = [(f"t{i}", "temporal(integer)") for i in range(n_temporal)]
    attrs += [(f"s{i}", "integer") for i in range(n_static)]
    db.define_class("base", attributes=[(f"t{i}", "integer")
                                        for i in range(n_temporal)]
                    + [(f"s{i}", "integer") for i in range(n_static)])
    db.define_class("rich", parents=["base"], attributes=attrs)
    oid = db.create_object(
        "rich",
        {f"t{i}": 0 for i in range(n_temporal)}
        | {f"s{i}": 0 for i in range(n_static)},
    )
    for step in range(history):
        db.tick()
        for i in range(n_temporal):
            db.update_attribute(oid, f"t{i}", step)
    return db, oid


@pytest.mark.parametrize("n_attrs", [4, 16, 64])
def test_snapshot_vs_attribute_count(benchmark, n_attrs):
    db, oid = _build(n_attrs // 2, n_attrs // 2, history=50)
    obj = db.get_object(oid)
    benchmark(snapshot, obj, db.now, db.now)


@pytest.mark.parametrize("history", [10, 100, 1000])
def test_snapshot_vs_history_length(benchmark, history):
    db, oid = _build(4, 4, history=history)
    obj = db.get_object(oid)
    benchmark(snapshot, obj, db.now, db.now)


@pytest.mark.parametrize("history", [10, 100])
def test_h_state_past_instant(benchmark, history):
    db, oid = _build(8, 0, history=history)
    obj = db.get_object(oid)
    benchmark(h_state, obj, db.now // 2, db.now)


@pytest.mark.parametrize("n_attrs", [4, 16, 64])
def test_coercion_view(benchmark, n_attrs):
    """Seeing a 'rich' instance as its 'base' superclass coerces every
    temporally-refined attribute with snapshot (Section 6.1)."""
    db, oid = _build(n_attrs // 2, n_attrs // 2, history=50)
    obj = db.get_object(oid)
    base = db.get_class("base")
    benchmark(as_member_of, obj, base, db.now)


def test_e7_summary(benchmark, results_dir):
    def _run():
        import timeit

        rows = []
        for n_attrs, history in [(4, 50), (16, 50), (64, 50), (16, 1000)]:
            db, oid = _build(n_attrs // 2, n_attrs // 2, history=history)
            obj = db.get_object(oid)
            snap = timeit.timeit(
                lambda: snapshot(obj, db.now, db.now), number=500
            ) / 500
            coerce = timeit.timeit(
                lambda: as_member_of(obj, db.get_class("base"), db.now),
                number=500,
            ) / 500
            rows.append(
                (
                    n_attrs,
                    history,
                    f"{snap * 1e6:.1f}",
                    f"{coerce * 1e6:.1f}",
                )
            )
        emit(
            "e7_snapshot",
            format_series(
                "E7: snapshot & coercion (us/op)",
                ("attributes", "history length", "snapshot", "view-as-super"),
                rows,
            ),
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)