"""E19 -- bitemporal reads: AS OF transaction-time cost vs plain reads.

The transaction-time claim: pinning a query at the *current* commit
LSN is free (the head fast path returns the live database after a
validation check), so audit-grade queries cost nothing until they
actually reach into history -- and historical reconstructions are
(a) linear in the pinned LSN, matching the planner's
``RECONSTRUCT_COST`` surcharge, and (b) amortized by the LRU memo
(``REPRO_ASOF_CACHE``) when an audit session revisits the same
transaction time.

Four phases over the embedded API (no sockets -- E19 measures the
read path, not the serving layer), on a journal-backed database grown
by the audit workload:

1. **plain reads at head** -- the baseline: ``select employee where
   salary > X`` with no ``as of`` clause;
2. **AS OF-at-head reads** -- the same queries pinned at the head
   LSN: measures the fast-path validation overhead (the 1.1x gate);
3. **cold historical reads** -- distinct LSNs at increasing depth,
   memo cleared before each: the reconstruction cost curve;
4. **warm historical reads** -- one past LSN revisited: the memo
   hit path.

Every AS OF result in phases 2-4 is checked value-equal against the
``restore_to(lsn)`` oracle (Definition 5.10 on the believed extent).

Run directly::

    python benchmarks/bench_bitemporal.py            # full + artifacts
    python benchmarks/bench_bitemporal.py --smoke    # tiny sanity run
    python benchmarks/bench_bitemporal.py --ci       # full + CI gates

Artifacts: ``benchmarks/results/bitemporal.txt`` and
``BENCH_bitemporal.json`` at the repo root.

CI gates (``--ci``):

* AS OF-at-head median latency <= 1.1x plain-read median latency;
* warm (memoized) historical reads <= 0.5x cold reconstruction;
* every AS OF result matches the ``restore_to`` oracle (always).
"""

import argparse
import json
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from benchmarks.conftest import emit, format_series

SALARY_SPAN = 3000


def _build(n_objects: int, n_ticks: int):
    from repro.database.recovery import open_database
    from repro.workloads import WorkloadSpec, audit_workload

    directory = tempfile.mkdtemp(prefix="bench_bitemporal_")
    db, _ = open_database(directory)
    spec = WorkloadSpec(n_objects=n_objects, n_ticks=n_ticks, seed=19)
    marks = audit_workload(db, spec)
    return directory, db, marks


def _oracle_check(directory, db, query_text: str, lsn: int) -> bool:
    """One AS OF read vs the restore_to(lsn) oracle (value equality
    on the returned extent, Definition 5.10)."""
    from repro.query.evaluator import evaluate
    from repro.query.parser import parse_query
    from repro.replication.pitr import restore_to

    got = evaluate(db, parse_query(f"{query_text} as of {lsn}"))
    restored, _ = restore_to(directory, lsn=lsn)
    want = evaluate(restored, parse_query(query_text))
    return sorted(map(str, got)) == sorted(map(str, want))


def run_bench(n_objects: int, n_ticks: int, n_reads: int) -> dict:
    from repro.bitemporal import asof as asof_mod
    from repro.query.evaluator import evaluate
    from repro.query.parser import parse_query

    directory, db, marks = _build(n_objects, n_ticks)
    head = db.journal.last_lsn
    rng = random.Random(191)
    thresholds = [rng.randrange(SALARY_SPAN) for _ in range(n_reads)]
    plain = [
        f"select employee where salary > {value}" for value in thresholds
    ]
    pinned = [f"{text} as of {head}" for text in plain]

    def read(text):
        return evaluate(db, parse_query(text))

    # Warm the parser/planner path once so phase 1 isn't charged for
    # it, then interleave the two phases read-by-read so clock drift,
    # cache warming and allocator noise land on both sides equally.
    read(plain[0])
    read(pinned[0])
    plain_us, pinned_us = [], []
    for plain_text, pinned_text in zip(plain, pinned):
        for text, samples in (
            (plain_text, plain_us), (pinned_text, pinned_us)
        ):
            begun = time.perf_counter()
            read(text)
            samples.append((time.perf_counter() - begun) * 1e6)

    def summarize(samples_us):
        ordered = sorted(samples_us)
        return {
            "reads": len(ordered),
            "mean_us": round(statistics.fmean(ordered), 1),
            "p50_us": round(ordered[len(ordered) // 2], 1),
            "max_us": round(ordered[-1], 1),
        }

    phases = []
    phase_plain = {"phase": "plain reads at head", **summarize(plain_us)}
    phases.append(phase_plain)
    phase_head = {
        "phase": f"as of {head} (head pin)", **summarize(pinned_us)
    }
    phases.append(phase_head)

    # Cold reconstructions at increasing depth (memo cleared each time).
    depth_rows = []
    past = [m for m in marks if m.lsn < head]
    picks = past[:: max(1, len(past) // 4)][:4] or past[:1]
    for mark in picks:
        asof_mod.clear_cache()
        begun = time.perf_counter()
        believed = asof_mod.as_of(db, mark.lsn)
        cold_us = (time.perf_counter() - begun) * 1e6
        begun = time.perf_counter()
        asof_mod.as_of(db, mark.lsn)
        warm_us = (time.perf_counter() - begun) * 1e6
        depth_rows.append({
            "lsn": mark.lsn,
            "believed_now": believed.now,
            "cold_us": round(cold_us, 1),
            "warm_us": round(warm_us, 1),
        })
    cold_mean = statistics.fmean(r["cold_us"] for r in depth_rows)
    warm_mean = statistics.fmean(r["warm_us"] for r in depth_rows)
    phases.append({
        "phase": "cold reconstruction",
        "reads": len(depth_rows),
        "mean_us": round(cold_mean, 1),
        "p50_us": round(sorted(
            r["cold_us"] for r in depth_rows
        )[len(depth_rows) // 2], 1),
        "max_us": round(max(r["cold_us"] for r in depth_rows), 1),
    })
    phases.append({
        "phase": "warm (memoized)",
        "reads": len(depth_rows),
        "mean_us": round(warm_mean, 1),
        "p50_us": round(sorted(
            r["warm_us"] for r in depth_rows
        )[len(depth_rows) // 2], 1),
        "max_us": round(max(r["warm_us"] for r in depth_rows), 1),
    })

    # Correctness: a seeded audit mix, each query vs the oracle.
    from repro.workloads import audit_queries

    mismatches = 0
    for query in audit_queries(marks, n_queries=8, seed=192):
        text, _, lsn = query.rpartition(" as of ")
        if not _oracle_check(directory, db, text, int(lsn)):
            mismatches += 1

    return {
        "head_lsn": head,
        "marks": len(marks),
        "phases": phases,
        "depth_series": depth_rows,
        "asof_overhead_at_head": round(
            phase_head["p50_us"] / phase_plain["p50_us"], 3
        ) if phase_plain["p50_us"] else None,
        "warm_over_cold": round(warm_mean / cold_mean, 3)
        if cold_mean else None,
        "oracle_mismatches": mismatches,
        "stats": asof_mod.stats(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="bitemporal AS OF read benchmark (E19)"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload, no artifacts (CI sanity check)",
    )
    parser.add_argument(
        "--ci", action="store_true",
        help="full run; exit 1 when a gate fails",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        result = run_bench(n_objects=15, n_ticks=10, n_reads=40)
    else:
        result = run_bench(n_objects=60, n_ticks=60, n_reads=400)

    rows = [
        (
            p["phase"], str(p["reads"]), f"{p['mean_us']:.1f}",
            f"{p['p50_us']:.1f}", f"{p['max_us']:.1f}",
        )
        for p in result["phases"]
    ]
    table = format_series(
        f"E19: AS OF transaction-time reads vs plain reads "
        f"(head lsn {result['head_lsn']}, {result['marks']} commit marks)",
        ("phase", "reads", "mean us", "p50 us", "max us"),
        rows,
    )
    print(table)
    print(
        f"as-of-at-head overhead: {result['asof_overhead_at_head']}x; "
        f"warm/cold: {result['warm_over_cold']}x; "
        f"oracle mismatches: {result['oracle_mismatches']}"
    )

    failures = []
    if result["oracle_mismatches"]:
        failures.append(
            f"{result['oracle_mismatches']} AS OF read(s) disagreed "
            "with the restore_to oracle"
        )

    if args.smoke:
        if failures:
            print(f"SMOKE FAILED: {failures[0]}")
            return 1
        print("smoke ok")
        return 0

    emit("bitemporal", table)
    payload = {
        "experiment": "E19 bitemporal reads: AS OF cost vs plain reads",
        **result,
        "gates": {
            "head_overhead": "AS OF-at-head p50 <= 1.1x plain-read p50",
            "memo": "warm (memoized) mean <= 0.5x cold reconstruction",
            "correctness": "every AS OF read matches restore_to(lsn)",
        },
    }
    (REPO_ROOT / "BENCH_bitemporal.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"wrote {REPO_ROOT / 'BENCH_bitemporal.json'}")

    if not args.ci:
        return 0

    overhead = result["asof_overhead_at_head"]
    if overhead is not None and overhead > 1.1:
        failures.append(
            f"head overhead: AS OF-at-head {overhead}x plain > 1.1x"
        )
    warm_over_cold = result["warm_over_cold"]
    if warm_over_cold is not None and warm_over_cold > 0.5:
        failures.append(
            f"memo: warm reads {warm_over_cold}x cold > 0.5x"
        )
    if failures:
        for failure in failures:
            print(f"CI GATE FAILED: {failure}")
        return 1
    print("CI gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
