"""E5 -- the type system's executable judgments.

Measures the three judgments of Section 3 against value size:

* ``is_deducible`` (the Definition 3.6 rules, checking mode);
* ``in_extension`` (Definition 3.5 membership, including the
  per-pair temporal clause);
* ``infer_type`` (lub-based synthesis);

plus the throughput of the soundness/completeness theorem checkers the
property tests run.  Expected shape: all three linear in the size of
the value term; extension checking of object-valued temporal values
dominated by interval-set inclusion, not by history length.
"""

import pytest

from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.temporalvalue import TemporalValue
from repro.types.context import DictTypeContext
from repro.types.deduction import infer_type, is_deducible
from repro.types.extension import in_extension
from repro.types.grammar import ObjectType, RecordOf, SetOf, TemporalType
from repro.types.parser import parse_type
from repro.types.theorems import completeness_holds, soundness_holds
from repro.values.oid import OID
from repro.values.records import RecordValue

from benchmarks.conftest import emit, format_series

SIZES = [10, 100, 1000]


def _wide_record(n: int) -> tuple:
    value = RecordValue({f"a{i}": i for i in range(n)})
    t = RecordOf({f"a{i}": parse_type("integer") for i in range(n)})
    return value, t


def _big_set(n: int) -> tuple:
    return frozenset(range(n)), parse_type("set-of(integer)")


def _long_temporal(n: int) -> tuple:
    history = TemporalValue()
    for i in range(n):
        history.put(Interval(3 * i, 3 * i + 2), i)
    return history, parse_type("temporal(integer)")


SHAPES = {
    "record": _wide_record,
    "set": _big_set,
    "temporal": _long_temporal,
}


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("size", SIZES)
def test_is_deducible(benchmark, shape, size):
    value, t = SHAPES[shape](size)
    assert is_deducible(value, t)
    benchmark(is_deducible, value, t)


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("size", SIZES)
def test_in_extension(benchmark, shape, size):
    value, t = SHAPES[shape](size)
    assert in_extension(value, t, 0)
    benchmark(in_extension, value, t, 0)


@pytest.mark.parametrize("size", SIZES)
def test_infer_type(benchmark, size):
    value, _t = _wide_record(size)
    benchmark(infer_type, value)


@pytest.mark.parametrize("pairs", [10, 100, 1000])
def test_object_valued_temporal_membership(benchmark, pairs):
    """The fast path: per-pair interval-set inclusion, not a time loop."""
    oid = OID(1)
    horizon = pairs * 4
    ctx = DictTypeContext({"person": {oid: IntervalSet.span(0, horizon)}},
                          now=horizon)
    history = TemporalValue()
    for i in range(pairs):
        history.put(Interval(3 * i, 3 * i + 2), oid)
    t = TemporalType(ObjectType("person"))
    assert in_extension(history, t, 0, ctx)
    benchmark(in_extension, history, t, 0, ctx)


def test_theorem_checker_throughput(benchmark):
    value, t = _wide_record(50)

    def both():
        soundness_holds(value, t, horizon=4)
        completeness_holds(value, t, 0)

    benchmark(both)


def test_e5_summary(benchmark, results_dir):
    def _run():
        import timeit

        rows = []
        for size in SIZES:
            value, t = _wide_record(size)
            deducible = timeit.timeit(
                lambda: is_deducible(value, t), number=200
            ) / 200
            member = timeit.timeit(
                lambda: in_extension(value, t, 0), number=200
            ) / 200
            inferred = timeit.timeit(
                lambda: infer_type(value), number=200
            ) / 200
            rows.append(
                (
                    size,
                    f"{deducible * 1e6:.1f}",
                    f"{member * 1e6:.1f}",
                    f"{inferred * 1e6:.1f}",
                )
            )
        emit(
            "e5_typing",
            format_series(
                "E5: typing judgments on n-field records (us/op)",
                ("fields", "is_deducible", "in_extension", "infer_type"),
                rows,
            ),
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)