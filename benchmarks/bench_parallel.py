"""E15 -- parallel scatter-gather over hash-partitioned extents.

The planner's 0.1%-selectivity win (E10/BENCH_query.json) evaporates
where selectivity is high and a scan is forced; this experiment
measures what the scatter-gather executor buys back there, and what
it must *not* cost where the planner correctly stays serial:

* **100%-selectivity extent sweep** (``ball = 1`` NOW): every object
  evaluated, scan path, parallel degree = workers;
* **ALWAYS-scope quantified query** (``noise >= 0 always``): per-object
  segment walks -- the heaviest per-tuple work the evaluator has;
* **0.1%-selectivity probe** (``b1000 = 1`` NOW): the planner takes
  the index path, so parallel-on vs parallel-off must be within noise
  (the <= 1.1x regression gate).

Run directly::

    python benchmarks/bench_parallel.py            # full run + artifacts
    python benchmarks/bench_parallel.py --smoke    # tiny correctness run
    python benchmarks/bench_parallel.py --ci       # full run + CI gates
    python benchmarks/bench_parallel.py --workers 4

Artifacts: ``benchmarks/results/parallel.txt`` and ``BENCH_parallel.json``
at the repo root.  The JSON records ``cores`` (``os.cpu_count()``)
because the speedup is physically bounded by it: the >= 2.5x gates are
meaningful only on a >= 4-core machine (the CI job provides one) --
on fewer cores a honest run reports the slowdown and only the
correctness and spawn-count gates apply.

CI gates (``--ci``, 4 workers):

* >= 2.5x on the 100% sweep and the ALWAYS query (>= 4 cores only);
* <= 1.1x regression at 0.1% selectivity;
* exactly **one** worker-pool spawn across the whole run (fork-once:
  a fork-per-query regression shows up as ``parallel.spawns`` > 1);
* parallel results == serial results on every workload (always).
"""

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from benchmarks.bench_query import _build_sweep_db, _timeit_us
from benchmarks.conftest import emit, format_series

WORKLOADS = (
    ("100% sweep", "ball", "now"),
    ("always", "noise", "always"),
    ("0.1% probe", "b1000", "now"),
)


def _query(bucket: str, scope: str):
    from repro.query import attr, select

    builder = select("g")
    if bucket == "noise":
        builder = builder.where(attr(bucket) >= 0)
    else:
        builder = builder.where(attr(bucket) == 1)
    return getattr(builder, scope)().build()


def run_parallel_sweep(
    n_objects: int, ticks: int, workers: int, number: int
) -> tuple[list[dict], dict]:
    from repro import perf
    from repro.database import parallel
    from repro.query import evaluate, planner

    db = _build_sweep_db(n_objects, ticks, n_partitions=workers)
    perf.reset_stats()  # count pool spawns from here
    results = []
    degrees = {}
    try:
        for label, bucket, scope in WORKLOADS:
            query = _query(bucket, scope)
            run = lambda: evaluate(db, query)  # noqa: E731
            with parallel.disabled():
                serial_rows = run()  # warm extents + indexes
                serial, serial_std = _timeit_us(run, number)
            parallel_rows = run()  # forks the pool (first workload)
            assert parallel_rows == serial_rows, label
            timed, timed_std = _timeit_us(run, number)
            degrees[label] = planner.plan(db, query).degree
            results.append(
                {
                    "workload": label,
                    "attribute": bucket,
                    "scope": scope,
                    "rows": len(serial_rows),
                    "n_objects": n_objects,
                    "history": ticks,
                    "degree": degrees[label],
                    "parallel_us": round(timed, 2),
                    "parallel_std_us": round(timed_std, 2),
                    "serial_us": round(serial, 2),
                    "serial_std_us": round(serial_std, 2),
                    "speedup": round(serial / timed, 2),
                }
            )
        spawns = perf.counters.metric("parallel.spawns").count
        stats = {
            "spawns": spawns,
            "stats": perf.stats(),
        }
    finally:
        parallel.shutdown(db)
    return results, stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="parallel scatter-gather sweep (E15)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, no artifacts (CI sanity check)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="full run; exit 1 when a gate fails (speedup gates "
        "require >= 4 cores)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="partition/worker count (default 4, the CI shape)",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if args.smoke:
        results, stats = run_parallel_sweep(
            n_objects=300, ticks=20, workers=args.workers, number=3
        )
    else:
        # number=1: the ALWAYS workload is O(seconds) per serial call;
        # min-of-5 single shots bounds the run without hurting the
        # estimate (stdev is reported alongside).
        results, stats = run_parallel_sweep(
            n_objects=6000, ticks=80, workers=args.workers, number=1
        )

    rows = [
        (
            r["workload"],
            str(r["rows"]),
            str(r["degree"]),
            f"{r['parallel_us']:.0f}",
            f"{r['parallel_std_us']:.0f}",
            f"{r['serial_us']:.0f}",
            f"{r['serial_std_us']:.0f}",
            f"{r['speedup']:.2f}x",
        )
        for r in results
    ]
    table = format_series(
        f"E15: scatter-gather vs serial scan (min us/op of 5 runs, "
        f"+-stdev, n={results[0]['n_objects']}, "
        f"history={results[0]['history']}, workers={args.workers}, "
        f"cores={cores}, pool spawns={stats['spawns']})",
        (
            "workload", "rows", "deg", "parallel", "+-", "serial",
            "+-", "speedup",
        ),
        rows,
    )
    print(table)

    if args.smoke:
        if stats["spawns"] != 1:
            print(f"SMOKE FAILED: {stats['spawns']} pool spawns != 1")
            return 1
        print("smoke ok")
        return 0

    emit("parallel", table)
    payload = {
        "experiment": "E15 parallel scatter-gather sweep",
        "workers": args.workers,
        "cores": cores,
        "results": results,
        "pool_spawns": stats["spawns"],
        "gates": {
            "sweep_and_always_speedup": ">= 2.5x at 4 workers "
            "(requires >= 4 cores; informative below that)",
            "selective_regression": "<= 1.1x at 0.1% selectivity",
            "pool_spawns": "exactly 1 per run (fork-once)",
            "equivalence": "parallel results == serial results",
        },
        "stats": stats["stats"],
    }
    (REPO_ROOT / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"wrote {REPO_ROOT / 'BENCH_parallel.json'}")

    if not args.ci:
        return 0

    failures = []
    by_label = {r["workload"]: r for r in results}
    if stats["spawns"] != 1:
        failures.append(
            f"pool spawned {stats['spawns']} times (fork-once gate)"
        )
    probe = by_label["0.1% probe"]
    if probe["parallel_us"] > probe["serial_us"] * 1.1:
        failures.append(
            "0.1%-selectivity regression over 1.1x: "
            f"{probe['parallel_us']}us vs {probe['serial_us']}us"
        )
    if probe["degree"] != 1:
        failures.append(f"0.1% probe planned degree {probe['degree']}")
    if cores >= 4:
        for label in ("100% sweep", "always"):
            r = by_label[label]
            if r["speedup"] < 2.5:
                failures.append(
                    f"{label}: {r['speedup']}x < 2.5x at "
                    f"{args.workers} workers on {cores} cores"
                )
    else:
        print(
            f"NOTE: {cores} core(s) -- speedup gates skipped "
            "(physically unattainable); correctness gates applied."
        )
    if failures:
        for failure in failures:
            print(f"CI GATE FAILED: {failure}")
        return 1
    print("ci gates ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
