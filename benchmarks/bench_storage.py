"""E17 -- paged storage: larger-than-RAM histories under a byte budget.

The cold-segment tier (:mod:`repro.database.segments`) spills each long
temporal history's cold prefix into on-disk segment pages at checkpoint
time, keeping only a hot tail resident; reads past the tail fault pages
back in through the byte-budgeted LRU cache
(:mod:`repro.database.pagecache`).  This bench measures the deal that
tier offers:

* **hot reads stay hot** -- per-object ``snapshot_at(now)`` latency on
  the paged database vs an all-resident build of the identical state;
  the CI gate fails when the paged p99 exceeds **1.2x** the resident
  baseline (snapshots at ``now`` read only the in-memory tail, so the
  tier must be invisible there);
* **the budget binds** -- the page-cache budget is set to one tenth of
  the spilled bytes (so cold history is ~10x larger than the cache,
  capped by ``REPRO_PAGE_CACHE_BYTES``), and resident cache bytes must
  stay under it through a random cold-read storm;
* **cold reads stay correct** -- random ``AT``-style point reads deep
  in the cold region are checked value-for-value against the
  all-resident oracle; the artifact records the page-cache hit rate
  those faults produced.

Run directly (not under pytest -- the ``bench_`` prefix keeps it out
of collection)::

    python benchmarks/bench_storage.py           # full run + artifacts
    python benchmarks/bench_storage.py --smoke   # quick sanity run
    python benchmarks/bench_storage.py --ci      # reduced sizes, exit 1
                                                 # on any gate failure

The full run writes ``benchmarks/results/e17_paged_storage.txt`` and
the machine-readable ``BENCH_storage.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from repro.database import pagecache, segments  # noqa: E402
from repro.database.recovery import open_database, recover  # noqa: E402

from benchmarks.conftest import emit, format_series  # noqa: E402

#: The budget never drops below one page's worth of bytes.
BUDGET_FLOOR = 4096


def build_workload(directory: str, n_objects: int, n_waves: int):
    """A journaled population of long temporal histories.

    Each wave ticks the clock and rewrites every object's temporal
    attribute inside one ``db.batch()`` (group commit), so the journal
    grows fast and every history ends up ``n_waves`` pairs long.
    """
    db, _report = open_database(directory, sync="always")
    db.define_class(
        "reading",
        attributes=[
            ("sensor", "string"),
            ("value", "temporal(integer)"),
        ],
    )
    rng = random.Random(7)
    with db.batch():
        oids = [
            db.create_object(
                "reading", {"sensor": f"s{i}", "value": 0}
            )
            for i in range(n_objects)
        ]
    for _wave in range(1, n_waves):
        db.tick(1)
        with db.batch():
            for oid in oids:
                db.update_attribute(oid, "value", rng.randrange(10**6))
    return db, oids


def time_snapshots(db, oids, n_samples: int, seed: int) -> list[float]:
    """Per-op wall times of ``snapshot_at(now)`` over random objects."""
    rng = random.Random(seed)
    now = db.now
    for oid in oids[: min(20, len(oids))]:  # warm-up
        db.snapshot_at(oid, now)
    times = []
    for _ in range(n_samples):
        oid = rng.choice(oids)
        start = time.perf_counter()
        db.snapshot_at(oid, now)
        times.append(time.perf_counter() - start)
    return times


def cold_read_storm(
    paged, resident, oids, n_reads: int, seed: int
) -> int:
    """Random deep-history point reads; returns the mismatch count."""
    rng = random.Random(seed)
    now = paged.now
    mismatches = 0
    for _ in range(n_reads):
        oid = rng.choice(oids)
        t = rng.randrange(0, max(1, now - 1))
        got = paged.get_object(oid).value["value"].get(t)
        want = resident.get_object(oid).value["value"].get(t)
        if got != want:
            mismatches += 1
    return mismatches


def _percentile(times: list[float], q: float) -> float:
    return statistics.quantiles(times, n=100)[int(q) - 1]


def run_experiment(n_objects: int, n_waves: int, n_samples: int) -> dict:
    with tempfile.TemporaryDirectory() as directory:
        db, oids = build_workload(directory, n_objects, n_waves)
        # All-resident baseline: an inline checkpoint (tier ablated)
        # recovered into a plain in-memory database.
        with segments.disabled():
            db.checkpoint()
            resident, report = recover(directory)
        assert report.ok, report.errors
        # Paged build: re-checkpoint with the tier on (spills cold
        # history), recover cold, squeeze the cache to spilled/10.
        db.checkpoint()
        seg_files = [
            name
            for name in segments.list_segments(
                db._journal.fs, directory
            )
            if name.endswith(".seg")
        ]
        spilled_bytes = sum(
            os.path.getsize(os.path.join(directory, name))
            for name in seg_files
        )
        paged, report = recover(directory)
        assert report.ok, report.errors
        assert paged.segment_values > 0, "workload never spilled"
        budget = min(
            pagecache.PAGE_CACHE.budget,
            max(BUDGET_FLOOR, spilled_bytes // 10),
        )
        pagecache.clear()
        pagecache.set_budget(budget)

        resident_times = time_snapshots(resident, oids, n_samples, 11)
        paged_times = time_snapshots(paged, oids, n_samples, 11)
        mismatches = cold_read_storm(
            paged, resident, oids, n_reads=n_samples, seed=13
        )
        cache = pagecache.stats()
        pagecache.set_budget(pagecache.DEFAULT_BUDGET)

        base_p99 = _percentile(resident_times, 99)
        paged_p99 = _percentile(paged_times, 99)
        ratio = paged_p99 / base_p99
        return {
            "n_objects": n_objects,
            "history_pairs": n_waves,
            "segmented_values": paged.segment_values,
            "spilled_bytes": spilled_bytes,
            "budget_bytes": budget,
            "history_to_budget_ratio": round(spilled_bytes / budget, 2),
            "resident_snapshot_p50_us": round(
                _percentile(resident_times, 50) * 1e6, 1
            ),
            "resident_snapshot_p99_us": round(base_p99 * 1e6, 1),
            "paged_snapshot_p50_us": round(
                _percentile(paged_times, 50) * 1e6, 1
            ),
            "paged_snapshot_p99_us": round(paged_p99 * 1e6, 1),
            "p99_ratio": round(ratio, 3),
            "cold_read_mismatches": mismatches,
            "cache_resident_bytes": cache["resident_bytes"],
            "cache_pages": cache["pages"],
            "cache_hit_rate": cache["hit_rate"],
            "cache_evictions": cache["evictions"],
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, no artifacts (sanity check)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="reduced sizes; exit 1 on any gate failure",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        shapes, n_samples = [(10, 60)], 100
    elif args.ci:
        shapes, n_samples = [(80, 150)], 400
    else:
        shapes, n_samples = [(80, 150), (200, 300)], 600

    rows = [
        run_experiment(n_objects, n_waves, n_samples)
        for n_objects, n_waves in shapes
    ]

    table = format_series(
        "E17: snapshot-at-now latency, paged vs all-resident",
        (
            "objects",
            "pairs",
            "spilled B",
            "budget B",
            "hist/budget",
            "base p99 us",
            "paged p99 us",
            "ratio",
        ),
        [
            (
                r["n_objects"],
                r["history_pairs"],
                r["spilled_bytes"],
                r["budget_bytes"],
                f"{r['history_to_budget_ratio']}x",
                r["resident_snapshot_p99_us"],
                r["paged_snapshot_p99_us"],
                f"{r['p99_ratio']}x",
            )
            for r in rows
        ],
    )
    table += "\n\n" + format_series(
        "cold-read storm (random AT reads vs resident oracle)",
        (
            "objects",
            "mismatches",
            "cache B",
            "pages",
            "hit rate",
            "evictions",
        ),
        [
            (
                r["n_objects"],
                r["cold_read_mismatches"],
                r["cache_resident_bytes"],
                r["cache_pages"],
                f"{r['cache_hit_rate']:.2%}",
                r["cache_evictions"],
            )
            for r in rows
        ],
    )

    if args.smoke:
        print(table)
        print("smoke ok" if all(
            r["cold_read_mismatches"] == 0 for r in rows
        ) else "smoke FAILED")
        return 0 if all(
            r["cold_read_mismatches"] == 0 for r in rows
        ) else 1

    payload = {
        "experiment": "E17 paged storage",
        "results": rows,
        "target": (
            "paged snapshot-at-now p99 <= 1.2x all-resident; cache "
            "resident bytes <= budget; zero cold-read mismatches"
        ),
    }
    (REPO_ROOT / "BENCH_storage.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit("e17_paged_storage", table)
    print(f"wrote {REPO_ROOT / 'BENCH_storage.json'}")

    if args.ci:
        failures = []
        for r in rows:
            # Both p99s sit in the tens of microseconds; the 60us
            # absolute guard keeps the ratio gate from tripping on
            # scheduler noise between two near-identical fast paths.
            if r["p99_ratio"] > 1.2 and r["paged_snapshot_p99_us"] > 60:
                failures.append(
                    f"paged p99 {r['p99_ratio']}x resident (> 1.2x) "
                    f"at {r['n_objects']} objects"
                )
            if r["cache_resident_bytes"] > r["budget_bytes"]:
                failures.append(
                    f"cache {r['cache_resident_bytes']} B over budget "
                    f"{r['budget_bytes']} B"
                )
            if r["cold_read_mismatches"]:
                failures.append(
                    f"{r['cold_read_mismatches']} cold reads diverged "
                    "from the resident oracle"
                )
        if failures:
            for failure in failures:
                print(f"CI GATE FAILURE: {failure}")
            return 1
        print("CI gates passed (p99 <= 1.2x, budget held, reads correct)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
