"""E9 -- inheritance machinery vs hierarchy shape.

Measures, against ISA depth and width:

* ``<=_ISA`` decisions (ancestor-set lookups);
* ``<=_T`` on types mentioning classes and the lub;
* Invariant 6.1 extent-inclusion checking;
* migration cost (extents adjusted along the superclass chain).

Expected shape: isa_le O(1) amortized (precomputed ancestor sets);
lub linear in the candidate ancestor sets; extent-inclusion checking
linear in (edges x members); migration linear in hierarchy depth.
"""

import pytest

from repro.database.database import TemporalDatabase
from repro.database.integrity import check_extent_inclusion
from repro.inheritance.isa import IsaHierarchy
from repro.types.grammar import ObjectType, SetOf
from repro.types.subtyping import is_subtype, lub

from benchmarks.conftest import emit, format_series


def _chain(depth: int) -> IsaHierarchy:
    isa = IsaHierarchy()
    isa.add_class("c0")
    for index in range(1, depth):
        isa.add_class(f"c{index}", [f"c{index - 1}"])
    return isa


def _tree(depth: int, fanout: int) -> IsaHierarchy:
    isa = IsaHierarchy()
    isa.add_class("root")
    frontier = ["root"]
    for level in range(depth):
        next_frontier = []
        for parent in frontier:
            for child in range(fanout):
                name = f"{parent}.{child}"
                isa.add_class(name, [parent])
                next_frontier.append(name)
        frontier = next_frontier
    return isa


@pytest.mark.parametrize("depth", [8, 64, 256])
def test_isa_le_depth(benchmark, depth):
    isa = _chain(depth)
    benchmark(isa.isa_le, f"c{depth - 1}", "c0")


@pytest.mark.parametrize("depth", [8, 64])
def test_subtype_on_nested_types(benchmark, depth):
    isa = _chain(depth)
    sub = SetOf(SetOf(ObjectType(f"c{depth - 1}")))
    sup = SetOf(SetOf(ObjectType("c0")))
    assert is_subtype(sub, sup, isa)
    benchmark(is_subtype, sub, sup, isa)


@pytest.mark.parametrize("depth,fanout", [(3, 3), (4, 4)])
def test_class_lub_tree(benchmark, depth, fanout):
    isa = _tree(depth, fanout)
    leaves = sorted(
        name for name in isa.classes() if not isa.children(name)
    )
    a, b = leaves[0], leaves[-1]
    assert isa.class_lub([a, b]) == "root"
    benchmark(isa.class_lub, [a, b])


def _populated_db(depth: int, members: int) -> TemporalDatabase:
    db = TemporalDatabase()
    db.define_class("c0", attributes=[("x", "integer")])
    for index in range(1, depth):
        db.define_class(f"c{index}", parents=[f"c{index - 1}"])
    leaf = f"c{depth - 1}"
    for value in range(members):
        db.create_object(leaf, {"x": value})
    db.tick()
    return db


@pytest.mark.parametrize("depth", [4, 16])
def test_extent_inclusion_check(benchmark, depth):
    db = _populated_db(depth, members=30)
    assert check_extent_inclusion(db) == []
    benchmark(check_extent_inclusion, db)


@pytest.mark.parametrize("depth", [4, 16])
def test_migration_cost_vs_depth(benchmark, depth):
    db = _populated_db(depth, members=10)
    oid = next(db.objects()).oid
    leaf = f"c{depth - 1}"

    def roundtrip():
        db.tick()
        db.migrate(oid, "c0")
        db.tick()
        db.migrate(oid, leaf)

    benchmark(roundtrip)


def test_e9_summary(benchmark, results_dir):
    def _run():
        import timeit

        rows = []
        for depth in (4, 16, 64):
            isa = _chain(depth)
            le = timeit.timeit(
                lambda: isa.isa_le(f"c{depth - 1}", "c0"), number=2000
            ) / 2000
            the_lub = timeit.timeit(
                lambda: lub(
                    [ObjectType(f"c{depth - 1}"), ObjectType("c1")], isa
                ),
                number=500,
            ) / 500
            db = _populated_db(depth, members=20)
            inclusion = timeit.timeit(
                lambda: check_extent_inclusion(db), number=10
            ) / 10
            rows.append(
                (
                    depth,
                    f"{le * 1e9:.0f}",
                    f"{the_lub * 1e6:.1f}",
                    f"{inclusion * 1e3:.2f}",
                )
            )
        emit(
            "e9_inheritance",
            format_series(
                "E9: inheritance machinery vs ISA depth",
                ("depth", "isa_le ns", "lub us", "Inv 6.1 check ms"),
                rows,
            ),
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)