"""E6 -- consistency and integrity checking.

Measures Definition 5.5 object consistency and the database-wide
invariant checkers against population size, history length and
migration rate, plus the DESIGN.md Section 6 ablation: ``pi(c, t)``
answered from the maintained set-valued ``ext`` history vs. recomputed
by scanning the per-oid index.

Expected shape: object consistency linear in the number of
class-history pairs times temporal attributes (never per-instant);
full-database checking linear in population; the maintained extent
wins over the scan as population grows.
"""

import pytest

from repro.database.integrity import check_database
from repro.objects.consistency import consistency_violations, is_consistent
from repro.workloads import WorkloadSpec, build_database

from benchmarks.conftest import emit, format_series


def _db(n_objects: int, n_ticks: int, migration_rate: float = 0.1):
    return build_database(
        WorkloadSpec(
            n_objects=n_objects,
            n_ticks=n_ticks,
            migration_rate=migration_rate,
            update_rate=0.5,
            delete_rate=0.0,
            seed=99,
        )
    )


@pytest.mark.parametrize("n_ticks", [20, 80])
def test_object_consistency_vs_history(benchmark, n_ticks):
    db = _db(10, n_ticks, migration_rate=0.3)
    objects = list(db.objects())

    def run():
        for obj in objects:
            assert is_consistent(obj, db, db, db.now)

    benchmark(run)


@pytest.mark.parametrize("n_objects", [10, 50])
def test_full_database_check(benchmark, n_objects):
    db = _db(n_objects, 30)
    benchmark(lambda: check_database(db).ok)


@pytest.mark.parametrize("n_objects", [10, 100])
def test_pi_via_maintained_extent(benchmark, n_objects):
    db = _db(n_objects, 30)
    t = db.now // 2
    benchmark(db.pi, "employee", t)


@pytest.mark.parametrize("n_objects", [10, 100])
def test_pi_via_index_scan_ablation(benchmark, n_objects):
    db = _db(n_objects, 30)
    t = db.now // 2
    history = db.get_class("employee").history
    benchmark(history.members_at_via_scan, t)


def test_e6_summary(benchmark, results_dir):
    def _run():
        import timeit

        rows = []
        for n_objects, n_ticks in [(10, 20), (10, 80), (50, 30), (100, 30)]:
            db = _db(n_objects, n_ticks, migration_rate=0.2)
            objects = list(db.objects())
            per_object = timeit.timeit(
                lambda: [
                    consistency_violations(o, db, db, db.now) for o in objects
                ],
                number=5,
            ) / (5 * len(objects))
            whole = timeit.timeit(lambda: check_database(db), number=3) / 3
            rows.append(
                (
                    n_objects,
                    n_ticks,
                    len(objects),
                    f"{per_object * 1e6:.0f}",
                    f"{whole * 1e3:.1f}",
                )
            )
        emit(
            "e6_consistency",
            format_series(
                "E6: consistency checking cost",
                ("objects", "ticks", "population",
                 "Def 5.5 us/object", "full check ms"),
                rows,
            ),
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)

@pytest.mark.parametrize("n_objects", [10, 100])
def test_pi_via_stabbing_index(benchmark, n_objects):
    """The third access path: a centered interval tree over membership
    intervals (repro.database.indexes)."""
    from repro.database.indexes import extent_index

    db = _db(n_objects, 30)
    t = db.now // 2
    index = extent_index(db, "employee")
    assert frozenset(index.stab(t)) == db.pi("employee", t)
    benchmark(index.stab, t)
