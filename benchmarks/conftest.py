"""Shared infrastructure for the benchmark harness.

Each bench regenerates one experiment of DESIGN.md's index (E1-E9) and
writes its human-readable artifact -- the table or measured series the
experiment reports -- to ``benchmarks/results/<name>.txt``, so the
output survives the run regardless of pytest capture settings.
EXPERIMENTS.md summarizes those artifacts against the paper.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print *text* and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


def format_series(
    title: str,
    header: tuple[str, ...],
    rows: list[tuple],
) -> str:
    """A fixed-width table for measured series."""
    grid = [tuple(str(cell) for cell in row) for row in [header, *rows]]
    widths = [max(len(r[i]) for r in grid) for i in range(len(header))]
    lines = [title]
    for index, row in enumerate(grid):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
