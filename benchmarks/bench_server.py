"""E18 -- concurrent serving: MVCC snapshot reads vs lock-serialized.

The serving layer's claim: readers never block writers (and vice
versa), so read throughput scales with sessions while a writer churns,
and writer pressure does not blow up read tail latency.  The ablation
(``REPRO_NO_MVCC=1`` / ``--no-mvcc``) serializes every read on the
global writer lock -- the classic readers-block-writers baseline.

Four phases over real sockets against a ``repro serve`` subprocess:

1. **single session, idle writer** -- one client, read-only: the
   per-request floor and the p99 baseline the tail gate compares to;
2. **N sessions, 90/10 read/write mix, MVCC on** -- aggregate read
   QPS + p50/p95/p99 read latency under writer churn;
3. **N sessions, read-only, MVCC on** -- scaling without writes;
4. **N sessions, 90/10 mix, MVCC ablated** -- the same offered load
   with reads lock-serialized.

Run directly::

    python benchmarks/bench_server.py            # full run + artifacts
    python benchmarks/bench_server.py --smoke    # tiny correctness run
    python benchmarks/bench_server.py --ci       # full run + CI gates
    python benchmarks/bench_server.py --sessions 4

Artifacts: ``benchmarks/results/server.txt`` and ``BENCH_server.json``
at the repo root.  The JSON records ``cores`` because the scaling
gates are physically meaningful only with >= 4 cores (the CI job
provides them); on fewer cores an honest run reports what it saw and
only the correctness gates apply.

CI gates (``--ci``, 4 sessions, >= 4 cores):

* mixed-workload read QPS >= 3x the ablation's read QPS;
* mixed-workload read p99 <= 1.5x the idle-writer single-session p99;
* every phase's queries return correct cardinalities (always).
"""

import argparse
import json
import os
import random
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from benchmarks.conftest import emit, format_series

N_OBJECTS = 1200
SALARY_SPAN = 2000


def _spawn_server(directory: str, no_mvcc: bool):
    """A ``repro serve`` subprocess on *directory* (sync=never: E18
    measures concurrency, not fsync latency)."""
    import subprocess

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env.pop("REPRO_SERVER_CRASH_BEFORE_WRITES", None)
    env.pop("REPRO_SERVER_CRASH_AFTER_WRITES", None)
    if no_mvcc:
        env["REPRO_NO_MVCC"] = "1"
    else:
        env.pop("REPRO_NO_MVCC", None)
    argv = [
        sys.executable, "-m", "repro", "serve", directory,
        "--port", "0", "--sync", "never",
    ]
    if no_mvcc:
        argv.append("--no-mvcc")
    proc = subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True,
    )
    while True:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server died at startup (exit {proc.poll()})"
            )
        if line.startswith("listening on "):
            host, port = line.split()[-1].rsplit(":", 1)
            return proc, host, int(port)


def _connect(host: str, port: int):
    from repro.server.client import ServerClient

    return ServerClient.connect(host, port, timeout=120.0)


def _seed(client, n_objects: int) -> list:
    client.execute(("define_class", "person", [], [("name", "string")]))
    client.execute((
        "define_class", "employee", ["person"],
        [("salary", "temporal(real)"), ("dept", "string")],
    ))
    rng = random.Random(18)
    oids = []
    for index in range(n_objects):
        oids.append(client.execute((
            "create", "employee",
            {
                "name": f"e{index}",
                "salary": float(rng.randrange(SALARY_SPAN)),
                "dept": rng.choice(("eng", "ops", "sales")),
            },
        )))
    client.execute(("tick", 1))
    return oids


def _percentiles(samples_us: list[float]) -> dict:
    ordered = sorted(samples_us)

    def at(q: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "p50_us": round(at(0.50), 1),
        "p95_us": round(at(0.95), 1),
        "p99_us": round(at(0.99), 1),
        "mean_us": round(statistics.fmean(ordered), 1) if ordered else 0.0,
    }


def _session_worker(
    host, port, oids, n_requests, write_ratio, seed, out, expected_floor
):
    """One client session: a write_ratio mix of queries and updates."""
    rng = random.Random(seed)
    client = _connect(host, port)
    reads_us: list[float] = []
    writes = errors = 0
    try:
        for _ in range(n_requests):
            if rng.random() < write_ratio:
                oid = rng.choice(oids)
                client.execute((
                    "update", oid, "salary",
                    float(rng.randrange(SALARY_SPAN)),
                ))
                writes += 1
            else:
                threshold = rng.randrange(SALARY_SPAN)
                begun = time.perf_counter()
                rows = client.query_raw(
                    f"select employee where salary > {threshold}"
                )
                reads_us.append((time.perf_counter() - begun) * 1e6)
                # Loose correctness floor: higher thresholds can only
                # shrink the result, never exceed the population.
                if not 0 <= rows["count"] <= expected_floor:
                    errors += 1
    finally:
        client.close()
    out.append({"reads_us": reads_us, "writes": writes, "errors": errors})


def run_phase(
    host, port, oids, *, sessions, n_requests, write_ratio, label
) -> dict:
    results: list[dict] = []
    threads = [
        threading.Thread(
            target=_session_worker,
            args=(
                host, port, oids, n_requests, write_ratio,
                1000 + index, results, len(oids),
            ),
        )
        for index in range(sessions)
    ]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begun
    reads = [value for r in results for value in r["reads_us"]]
    writes = sum(r["writes"] for r in results)
    errors = sum(r["errors"] for r in results)
    return {
        "phase": label,
        "sessions": sessions,
        "requests_per_session": n_requests,
        "write_ratio": write_ratio,
        "elapsed_s": round(elapsed, 3),
        "reads": len(reads),
        "writes": writes,
        "errors": errors,
        "read_qps": round(len(reads) / elapsed, 1) if elapsed else 0.0,
        "write_qps": round(writes / elapsed, 1) if elapsed else 0.0,
        **_percentiles(reads),
    }


def run_bench(sessions: int, n_requests: int, n_objects: int) -> list[dict]:
    phases = []
    for no_mvcc in (False, True):
        with tempfile.TemporaryDirectory() as directory:
            proc, host, port = _spawn_server(directory, no_mvcc)
            try:
                seeder = _connect(host, port)
                oids = _seed(seeder, n_objects)
                seeder.close()
                if not no_mvcc:
                    phases.append(run_phase(
                        host, port, oids, sessions=1,
                        n_requests=n_requests, write_ratio=0.0,
                        label="1 session, idle writer",
                    ))
                    phases.append(run_phase(
                        host, port, oids, sessions=sessions,
                        n_requests=n_requests, write_ratio=0.0,
                        label=f"{sessions} sessions, read-only",
                    ))
                    phases.append(run_phase(
                        host, port, oids, sessions=sessions,
                        n_requests=n_requests, write_ratio=0.1,
                        label=f"{sessions} sessions, 90/10 mix",
                    ))
                else:
                    phases.append(run_phase(
                        host, port, oids, sessions=sessions,
                        n_requests=n_requests, write_ratio=0.1,
                        label=f"{sessions} sessions, 90/10, no MVCC",
                    ))
            finally:
                proc.terminate()
                try:
                    proc.wait(timeout=15)
                except Exception:
                    proc.kill()
                    proc.wait(timeout=15)
    return phases


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="concurrent serving benchmark (E18)"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload, no artifacts (CI sanity check)",
    )
    parser.add_argument(
        "--ci", action="store_true",
        help="full run; exit 1 when a gate fails (scaling gates "
        "require >= 4 cores)",
    )
    parser.add_argument(
        "--sessions", type=int, default=4,
        help="concurrent client sessions (default 4, the CI shape)",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if args.smoke:
        args.sessions = 2
        phases = run_bench(
            sessions=2, n_requests=20, n_objects=120
        )
    else:
        phases = run_bench(
            sessions=args.sessions, n_requests=250, n_objects=N_OBJECTS
        )

    rows = [
        (
            p["phase"], str(p["reads"]), str(p["writes"]),
            f"{p['read_qps']:.0f}", f"{p['p50_us']:.0f}",
            f"{p['p95_us']:.0f}", f"{p['p99_us']:.0f}",
            str(p["errors"]),
        )
        for p in phases
    ]
    table = format_series(
        f"E18: serving layer, 90/10 read/write over sockets "
        f"(sessions={args.sessions}, objects="
        f"{120 if args.smoke else N_OBJECTS}, cores={cores})",
        (
            "phase", "reads", "writes", "read qps", "p50us",
            "p95us", "p99us", "errs",
        ),
        rows,
    )
    print(table)

    failures = []
    if any(p["errors"] for p in phases):
        failures.append("a phase returned out-of-range cardinalities")

    if args.smoke:
        if failures:
            print(f"SMOKE FAILED: {failures[0]}")
            return 1
        print("smoke ok")
        return 0

    emit("server", table)
    by_label = {p["phase"]: p for p in phases}
    mixed = by_label[f"{args.sessions} sessions, 90/10 mix"]
    ablated = by_label[f"{args.sessions} sessions, 90/10, no MVCC"]
    idle = by_label["1 session, idle writer"]
    payload = {
        "experiment": "E18 concurrent serving: MVCC vs lock-serialized",
        "sessions": args.sessions,
        "cores": cores,
        "phases": phases,
        "mvcc_over_ablation_read_qps": round(
            mixed["read_qps"] / ablated["read_qps"], 2
        ) if ablated["read_qps"] else None,
        "tail_inflation_p99": round(
            mixed["p99_us"] / idle["p99_us"], 2
        ) if idle["p99_us"] else None,
        "gates": {
            "read_scaling": ">= 3x ablation read QPS at 4 sessions "
            "(requires >= 4 cores; informative below that)",
            "tail_latency": "mixed p99 <= 1.5x idle-writer p99 "
            "(requires >= 4 cores)",
            "correctness": "cardinalities in range on every phase",
        },
    }
    (REPO_ROOT / "BENCH_server.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"wrote {REPO_ROOT / 'BENCH_server.json'}")

    if not args.ci:
        return 0

    if cores >= 4:
        if mixed["read_qps"] < ablated["read_qps"] * 3:
            failures.append(
                f"read scaling: {mixed['read_qps']} qps < 3x ablation "
                f"{ablated['read_qps']} qps"
            )
        if idle["p99_us"] and mixed["p99_us"] > idle["p99_us"] * 1.5:
            failures.append(
                f"tail latency: mixed p99 {mixed['p99_us']}us > 1.5x "
                f"idle-writer p99 {idle['p99_us']}us"
            )
    else:
        print(
            f"NOTE: {cores} core(s) -- scaling gates skipped "
            "(physically unattainable); correctness gates applied."
        )
    if failures:
        for failure in failures:
            print(f"CI GATE FAILED: {failure}")
        return 1
    print("CI gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
