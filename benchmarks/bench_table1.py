"""E1 -- regenerate Table 1 of the paper.

"Comparison among the existing temporal object-oriented data models
(I)": eight models x {oo data model, time structure, time dimension,
values & objects, class features}.

The rows come from the machine-readable registry
(:mod:`repro.survey.models`); the "Our model" row is additionally
*derived from the implementation* and asserted equal to the printed
claim, so the table is backed by code, not transcription.
"""

from repro.survey.models import MODELS, t_chimera_row_from_code
from repro.survey.tables import render_table1, table1_rows

from benchmarks.conftest import emit


def test_table1_reproduction(benchmark):
    rendered = benchmark(render_table1)

    # The paper's table, verbatim checks.
    rows = table1_rows()
    assert rows[0] == (
        "", "oo data model", "time structure", "time dimension",
        "values & objects", "class features",
    )
    assert rows[-1] == (
        "Our model", "Chimera", "linear", "valid", "both", "YES",
    )
    assert len(rows) == 9

    # The "Our model" row is witnessed by the implementation.
    assert t_chimera_row_from_code() == MODELS[-1]

    emit("table1", rendered)
