"""E10 -- the future-work machinery: queries, views, constraints,
triggers.

The paper defers these to future work (Section 7); this bench
characterizes the implementations so the extension carries its weight:

* query evaluation by temporal scope (NOW / AT / SOMETIME / ALWAYS)
  against population size and history length -- segment-wise
  evaluation must scale with *changes*, not with elapsed instants;
* when() and view membership (exact interval-set answers);
* path expressions (one extra dereference per step);
* constraint checking and trigger dispatch overhead per update.

Expected shape: NOW/AT flat in history length; SOMETIME/ALWAYS linear
in pairs (segments), not in instants; trigger dispatch adds a small
constant per update.
"""

import pytest

from repro.constraints import ConstraintSet, NonDecreasing
from repro.database.events import EventKind
from repro.query import attr, evaluate, parse_query, path, when
from repro.triggers import Trigger, TriggerManager, on_update
from repro.triggers.triggers import WriteSpec
from repro.views import TemporalView
from repro.workloads import WorkloadSpec, build_database

from benchmarks.conftest import emit, format_series


def _db(n_objects: int, n_ticks: int):
    return build_database(
        WorkloadSpec(
            n_objects=n_objects,
            n_ticks=n_ticks,
            update_rate=0.6,
            migration_rate=0.0,
            delete_rate=0.0,
            seed=17,
        )
    )


QUERIES = {
    "now": "select employee where salary > 2000.0",
    "at": "select employee where salary > 2000.0 at 10",
    "sometime": "select employee where salary > 2000.0 sometime",
    "always": "select employee where salary > 2000.0 always",
}


@pytest.mark.parametrize("scope", sorted(QUERIES))
@pytest.mark.parametrize("n_objects", [10, 50])
def test_query_by_scope(benchmark, scope, n_objects):
    db = _db(n_objects, 40)
    query = parse_query(QUERIES[scope])
    benchmark(evaluate, db, query)


@pytest.mark.parametrize("n_ticks", [20, 80, 320])
def test_sometime_vs_history_length(benchmark, n_ticks):
    db = _db(10, n_ticks)
    query = parse_query(QUERIES["sometime"])
    benchmark(evaluate, db, query)


@pytest.mark.parametrize("n_ticks", [20, 80])
def test_when_operator(benchmark, n_ticks):
    db = _db(10, n_ticks)
    oid = next(db.live_objects()).oid
    benchmark(when, db, oid, attr("salary") > 2000.0)


def test_path_dereference_overhead(benchmark):
    db = _db(20, 40)
    # mentor has domain temporal(person); dereference to the person's
    # name (static on person, so only the NOW instant can match).
    via_path = parse_query("select employee where mentor.name = 'emp0'")
    evaluate(db, via_path)
    benchmark(evaluate, db, via_path)


@pytest.mark.parametrize("n_objects", [10, 50])
def test_view_membership(benchmark, n_objects):
    db = _db(n_objects, 40)
    view = TemporalView(db, "employee", attr("salary") > 2000.0)
    oid = next(db.live_objects()).oid
    benchmark(view.membership_times, oid)


def test_constraint_check_per_update(benchmark):
    db = _db(10, 40)
    rules = ConstraintSet().add(NonDecreasing("employee", "salary"))
    obj = next(db.live_objects())
    benchmark(rules.check_object, db, obj)


def test_trigger_dispatch_overhead(benchmark):
    db = _db(10, 10)
    manager = TriggerManager(db)
    manager.register(
        Trigger(
            "noop",
            on_update("employee", "salary"),
            action=lambda d, e: None,
            writes=(),
        )
    )
    oid = next(db.live_objects()).oid
    counter = [0.0]

    def one_update():
        db.tick()
        counter[0] += 1.0
        db.update_attribute(oid, "salary", 1000.0 + counter[0])

    benchmark(one_update)


def test_e10_summary(benchmark, results_dir):
    def _run():
        import timeit

        rows = []
        for n_objects, n_ticks in [(10, 20), (10, 80), (50, 40)]:
            db = _db(n_objects, n_ticks)
            cells = []
            for scope in ("now", "sometime", "always"):
                query = parse_query(QUERIES[scope])
                cost = timeit.timeit(
                    lambda: evaluate(db, query), number=20
                ) / 20
                cells.append(f"{cost * 1e3:.2f}")
            rows.append((n_objects, n_ticks, *cells))
        emit(
            "e10_query",
            format_series(
                "E10: query evaluation (ms) by scope",
                ("objects", "ticks", "now", "sometime", "always"),
                rows,
            ),
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)
