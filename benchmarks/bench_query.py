"""E10 -- the future-work machinery: queries, views, constraints,
triggers.

The paper defers these to future work (Section 7); this bench
characterizes the implementations so the extension carries its weight:

* query evaluation by temporal scope (NOW / AT / SOMETIME / ALWAYS)
  against population size and history length -- segment-wise
  evaluation must scale with *changes*, not with elapsed instants;
* when() and view membership (exact interval-set answers);
* path expressions (one extra dereference per step);
* constraint checking and trigger dispatch overhead per update.

Expected shape: NOW/AT flat in history length; SOMETIME/ALWAYS linear
in pairs (segments), not in instants; trigger dispatch adds a small
constant per update.

Run directly for the planner selectivity sweep (PR 3)::

    python benchmarks/bench_query.py           # full sweep + artifacts
    python benchmarks/bench_query.py --smoke   # quick CI sanity run
    python benchmarks/bench_query.py --ci      # full sweep, exit 1 if
                                               # the planner loses at 1%

The full sweep times equality queries of 0.1% / 1% / 10% / 100%
selectivity over n=1000 objects with history 200, planner on vs.
ablated (``REPRO_NO_PLANNER`` path), and writes
``benchmarks/results/query_planner.txt`` plus the machine-readable
``BENCH_query.json`` at the repo root.
"""

import argparse
import json
import statistics
import sys
import timeit
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

import pytest

from repro.constraints import ConstraintSet, NonDecreasing
from repro.database.events import EventKind
from repro.query import attr, evaluate, parse_query, path, when
from repro.triggers import Trigger, TriggerManager, on_update
from repro.triggers.triggers import WriteSpec
from repro.views import TemporalView
from repro.workloads import WorkloadSpec, build_database

from benchmarks.conftest import emit, format_series


def _db(n_objects: int, n_ticks: int):
    return build_database(
        WorkloadSpec(
            n_objects=n_objects,
            n_ticks=n_ticks,
            update_rate=0.6,
            migration_rate=0.0,
            delete_rate=0.0,
            seed=17,
        )
    )


QUERIES = {
    "now": "select employee where salary > 2000.0",
    "at": "select employee where salary > 2000.0 at 10",
    "sometime": "select employee where salary > 2000.0 sometime",
    "always": "select employee where salary > 2000.0 always",
}


@pytest.mark.parametrize("scope", sorted(QUERIES))
@pytest.mark.parametrize("n_objects", [10, 50])
def test_query_by_scope(benchmark, scope, n_objects):
    db = _db(n_objects, 40)
    query = parse_query(QUERIES[scope])
    benchmark(evaluate, db, query)


@pytest.mark.parametrize("n_ticks", [20, 80, 320])
def test_sometime_vs_history_length(benchmark, n_ticks):
    db = _db(10, n_ticks)
    query = parse_query(QUERIES["sometime"])
    benchmark(evaluate, db, query)


@pytest.mark.parametrize("n_ticks", [20, 80])
def test_when_operator(benchmark, n_ticks):
    db = _db(10, n_ticks)
    oid = next(db.live_objects()).oid
    benchmark(when, db, oid, attr("salary") > 2000.0)


def test_path_dereference_overhead(benchmark):
    db = _db(20, 40)
    # mentor has domain temporal(person); dereference to the person's
    # name (static on person, so only the NOW instant can match).
    via_path = parse_query("select employee where mentor.name = 'emp0'")
    evaluate(db, via_path)
    benchmark(evaluate, db, via_path)


@pytest.mark.parametrize("n_objects", [10, 50])
def test_view_membership(benchmark, n_objects):
    db = _db(n_objects, 40)
    view = TemporalView(db, "employee", attr("salary") > 2000.0)
    oid = next(db.live_objects()).oid
    benchmark(view.membership_times, oid)


def test_constraint_check_per_update(benchmark):
    db = _db(10, 40)
    rules = ConstraintSet().add(NonDecreasing("employee", "salary"))
    obj = next(db.live_objects())
    benchmark(rules.check_object, db, obj)


def test_trigger_dispatch_overhead(benchmark):
    db = _db(10, 10)
    manager = TriggerManager(db)
    manager.register(
        Trigger(
            "noop",
            on_update("employee", "salary"),
            action=lambda d, e: None,
            writes=(),
        )
    )
    oid = next(db.live_objects()).oid
    counter = [0.0]

    def one_update():
        db.tick()
        counter[0] += 1.0
        db.update_attribute(oid, "salary", 1000.0 + counter[0])

    benchmark(one_update)


# ---------------------------------------------------------------------
# PR 3: planner selectivity sweep (plain functions -- run via main()).


def _timeit_us(
    fn, number: int, repeats: int = 5
) -> tuple[float, float]:
    """``(min, stdev)`` over *repeats* samples, in us per call.

    The minimum is the best estimate of the work itself; the standard
    deviation across the samples is the noise floor -- a speedup claim
    is only trustworthy when the effect dwarfs the stdev, which is why
    both numbers land in the tables and the JSON artifacts.
    """
    times = [
        timeit.timeit(fn, number=number) / number * 1e6
        for _ in range(repeats)
    ]
    spread = statistics.stdev(times) if len(times) > 1 else 0.0
    return min(times), spread


def _build_sweep_db(
    n_objects: int, ticks: int, n_partitions: int | None = None
):
    """A population with equality buckets of controlled selectivity.

    ``b1000 = v`` matches 1/1000 of the objects, ``b100`` 1/100,
    ``b10`` 1/10 and ``ball`` all of them; ``noise`` carries the deep
    history the scan path has to wade through.
    """
    from repro.database.database import TemporalDatabase

    db = TemporalDatabase(n_partitions=n_partitions)
    db.define_class(
        "g",
        attributes=[
            ("b1000", "temporal(integer)"),
            ("b100", "temporal(integer)"),
            ("b10", "temporal(integer)"),
            ("ball", "temporal(integer)"),
            ("noise", "temporal(integer)"),
        ],
    )
    oids = [
        db.create_object(
            "g",
            {
                "b1000": i,
                "b100": i % 100,
                "b10": i % 10,
                "ball": 1,
                "noise": 0,
            },
        )
        for i in range(n_objects)
    ]
    stride = max(n_objects // 20, 1)
    for step in range(ticks):
        db.tick()
        for oid in oids[(step % 20):: 20 if n_objects >= 20 else 1][
            :stride
        ]:
            db.update_attribute(oid, "noise", step)
    return db


SWEEP = (
    ("0.1%", "b1000"),
    ("1%", "b100"),
    ("10%", "b10"),
    ("100%", "ball"),
)


def run_selectivity_sweep(
    n_objects: int, ticks: int, number: int
) -> list[dict]:
    from repro.database import parallel
    from repro.query import evaluate, planner, select, attr

    db = _build_sweep_db(n_objects, ticks)
    results = []
    # This sweep isolates the *planner*: scatter-gather stays off so
    # the ablated-scan baseline means the same thing on every machine
    # (bench_parallel.py owns the parallel speedup numbers).
    with parallel.disabled():
        for label, bucket in SWEEP:
            query = select("g").where(attr(bucket) == 1).now().build()
            run = lambda: evaluate(db, query)  # noqa: E731
            matched = len(run())  # warm extent + index caches both paths
            planned, planned_std = _timeit_us(run, number)
            with planner.disabled():
                run()
                ablated, ablated_std = _timeit_us(
                    run, max(number // 5, 3)
                )
            results.append(
                {
                    "selectivity": label,
                    "attribute": bucket,
                    "rows": matched,
                    "n_objects": n_objects,
                    "history": ticks,
                    "planner_us": round(planned, 2),
                    "planner_std_us": round(planned_std, 2),
                    "ablated_us": round(ablated, 2),
                    "ablated_std_us": round(ablated_std, 2),
                    "speedup": round(ablated / planned, 1),
                }
            )
    return results


def main(argv: list[str] | None = None) -> int:
    from repro import perf

    parser = argparse.ArgumentParser(
        description="planner selectivity sweep"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, no artifacts (CI sanity check)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="full sweep; exit 1 if the planner path is slower than "
        "the ablated scan on the 1%%-selective workload",
    )
    args = parser.parse_args(argv)

    perf.reset_stats()
    if args.smoke:
        results = run_selectivity_sweep(
            n_objects=100, ticks=30, number=5
        )
    else:
        results = run_selectivity_sweep(
            n_objects=1000, ticks=200, number=10
        )

    rows = [
        (
            r["selectivity"],
            str(r["rows"]),
            f"{r['planner_us']:.1f}",
            f"{r['planner_std_us']:.1f}",
            f"{r['ablated_us']:.1f}",
            f"{r['ablated_std_us']:.1f}",
            f"{r['speedup']:.1f}x",
        )
        for r in results
    ]
    table = format_series(
        "Query planner: equality selectivity sweep, planner vs "
        f"ablated scan (min us/op of 5 runs, +-stdev, "
        f"n={results[0]['n_objects']}, "
        f"history={results[0]['history']})",
        (
            "selectivity", "rows", "planner", "+-", "ablated", "+-",
            "speedup",
        ),
        rows,
    )
    print(table)

    if args.smoke:
        print("smoke ok")
        return 0

    emit("query_planner", table)
    payload = {
        "experiment": "query planner selectivity sweep",
        "results": results,
        "gate": {
            "workload": "1% selectivity equality NOW",
            "requirement": "planner at least as fast as ablated scan",
        },
        "stats": perf.stats(),
    }
    (REPO_ROOT / "BENCH_query.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"wrote {REPO_ROOT / 'BENCH_query.json'}")

    one_percent = next(r for r in results if r["selectivity"] == "1%")
    if args.ci and one_percent["speedup"] < 1.0:
        print(
            "CI GATE FAILED: planner slower than ablated scan on the "
            f"1%-selective workload ({one_percent})"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


def test_e10_summary(benchmark, results_dir):
    def _run():
        import timeit

        rows = []
        for n_objects, n_ticks in [(10, 20), (10, 80), (50, 40)]:
            db = _db(n_objects, n_ticks)
            cells = []
            for scope in ("now", "sometime", "always"):
                query = parse_query(QUERIES[scope])
                cost = timeit.timeit(
                    lambda: evaluate(db, query), number=20
                ) / 20
                cells.append(f"{cost * 1e3:.2f}")
            rows.append((n_objects, n_ticks, *cells))
        emit(
            "e10_query",
            format_series(
                "E10: query evaluation (ms) by scope",
                ("objects", "ticks", "now", "sometime", "always"),
                rows,
            ),
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)
