"""E13 -- bulk ingestion: group commit + deferred maintenance.

Builds the same workload -- n objects created, then five full-rate
update ticks (n=1000 gives exactly 5000 updates) -- into journaled
databases on a real filesystem twice:

* **per-op**: the batch fast path ablated (the ``REPRO_NO_BATCH``
  configuration -- ``db.batch()`` degrades to a no-op, every record
  framed, appended and fsynced individually, caches maintained
  eagerly);
* **batched**: each op wave inside ``db.batch()`` -- one group-commit
  write+fsync barrier per wave, cache/attribute-index maintenance
  coalesced at batch close.

The two databases are then verified equivalent: identical oid sets,
strict value equality (Definition 5.8, which implies the Definition
5.10 weak equality) per object, and a clean ``check_database``.  A
speedup that breaks equivalence is not a speedup.

A second table ablates the journal sync policy for per-op ingest
(``always`` / ``commit`` / ``never``) -- the numbers behind the
"choosing a sync policy for ingest" note in docs/durability.md.

Run directly (not under pytest -- the ``bench_`` prefix keeps it out
of collection)::

    python benchmarks/bench_ingest.py           # full run + artifacts
    python benchmarks/bench_ingest.py --smoke   # quick sanity run
    python benchmarks/bench_ingest.py --ci      # reduced size, exit 1
                                                # unless batched >= 2x

The full run writes ``benchmarks/results/e13_ingest.txt`` and the
machine-readable ``BENCH_ingest.json`` at the repo root (target:
batched >= 5x per-op at n=1000 objects / 5000 updates).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from repro import perf  # noqa: E402
from repro.database import batch as batch_module  # noqa: E402
from repro.database.integrity import check_database  # noqa: E402
from repro.database.recovery import open_database  # noqa: E402
from repro.objects.equality import (  # noqa: E402
    equal_by_value,
    weak_value_equal,
)
from repro.workloads import WorkloadSpec, build_database  # noqa: E402

from benchmarks.conftest import emit, format_series  # noqa: E402


def _spec(n_objects: int, seed: int = 17) -> WorkloadSpec:
    """n_objects creates + exactly 5 * n_objects temporal updates."""
    return WorkloadSpec(
        n_objects=n_objects,
        n_ticks=5,
        update_rate=1.0,
        static_update_rate=0.0,
        migration_rate=0.0,
        create_rate=0.0,
        delete_rate=0.0,
        n_projects=0,
        seed=seed,
    )


def _build(directory: str, spec: WorkloadSpec, bulk: bool, sync: str):
    """Time one journaled build; returns (db, seconds)."""
    db, _report = open_database(directory, sync=sync)
    start = time.perf_counter()
    build_database(spec, db=db, bulk=bulk)
    return db, time.perf_counter() - start


def _verify_equivalent(per_op, batched) -> list[str]:
    """Equivalence problems between the two builds (empty = good)."""
    problems = []
    if per_op.now != batched.now:
        problems.append(f"clock diverged: {per_op.now} vs {batched.now}")
    oids = {obj.oid for obj in per_op.objects()}
    if oids != {obj.oid for obj in batched.objects()}:
        problems.append("oid sets diverged")
        return problems
    now = per_op.now
    for oid in sorted(oids):
        first, second = per_op.get_object(oid), batched.get_object(oid)
        if not equal_by_value(first, second):
            problems.append(f"{oid!r} not value-equal (Def 5.8)")
        elif first.alive_at(now, now) and not weak_value_equal(
            first, second, now
        ):
            problems.append(f"{oid!r} not weak-value-equal (Def 5.10)")
    report = check_database(batched)
    if not report.ok:
        problems.append(f"batched db fails integrity: {report.problems}")
    return problems


def bench_ingest(n_objects: int) -> dict:
    """Per-op vs batched ingest of the same op stream."""
    spec = _spec(n_objects)
    with tempfile.TemporaryDirectory() as tmp:
        with batch_module.disabled():  # the REPRO_NO_BATCH path
            per_op_db, per_op_s = _build(
                f"{tmp}/per_op", spec, bulk=True, sync="always"
            )
        perf.reset_stats()
        batched_db, batched_s = _build(
            f"{tmp}/batched", spec, bulk=True, sync="always"
        )
        stats = perf.stats()
        problems = _verify_equivalent(per_op_db, batched_db)
    if problems:
        raise SystemExit(
            "EQUIVALENCE FAILURE: " + "; ".join(problems[:5])
        )
    updates = 5 * n_objects
    return {
        "workload": f"ingest n={n_objects} updates={updates}",
        "per_op_s": round(per_op_s, 3),
        "batched_s": round(batched_s, 3),
        "speedup": round(per_op_s / batched_s, 1),
        "batch_stats": {
            name: value
            for name, value in stats.items()
            if name.startswith("batch.")
        },
    }


def bench_sync_policies(n_objects: int) -> list[dict]:
    """Per-op ingest under each journal sync policy."""
    rows = []
    spec = _spec(n_objects)
    for sync in ("always", "commit", "never"):
        with tempfile.TemporaryDirectory() as tmp:
            with batch_module.disabled():
                _db, seconds = _build(
                    f"{tmp}/db", spec, bulk=False, sync=sync
                )
        rows.append(
            {
                "workload": f"per-op sync={sync} n={n_objects}",
                "seconds": round(seconds, 3),
            }
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, no artifacts (sanity check)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="reduced workload; exit 1 unless batched >= 2x per-op",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_objects = 40
    elif args.ci:
        n_objects = 1000
    else:
        n_objects = 1000

    result = bench_ingest(n_objects)
    rows = [
        (
            result["workload"],
            f"{result['per_op_s']:.3f}",
            f"{result['batched_s']:.3f}",
            f"{result['speedup']:.1f}x",
        )
    ]
    sync_rows = [] if args.smoke else bench_sync_policies(n_objects // 5)
    table = format_series(
        "E13: bulk ingestion, per-op vs batched (seconds, verified "
        "weak-value-equal)",
        ("workload", "per-op", "batched", "speedup"),
        rows,
    )
    if sync_rows:
        table += "\n\n" + format_series(
            "per-op ingest by journal sync policy (seconds)",
            ("workload", "seconds"),
            [(r["workload"], f"{r['seconds']:.3f}") for r in sync_rows],
        )

    if args.smoke:
        print(table)
        print("smoke ok (equivalence verified)")
        return 0

    payload = {
        "experiment": "E13 bulk ingestion",
        "results": [result],
        "sync_policies": sync_rows,
        "target": "batched >= 5x per-op at n=1000 objects / 5000 updates",
    }
    (REPO_ROOT / "BENCH_ingest.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if args.ci:
        print(table)
        if result["speedup"] < 2.0:
            print(
                f"CI GATE FAILURE: batched ingest only "
                f"{result['speedup']}x per-op (need >= 2x)"
            )
            return 1
        print(f"ci gate ok: {result['speedup']}x >= 2x")
        return 0

    emit("e13_ingest", table)
    print(f"wrote {REPO_ROOT / 'BENCH_ingest.json'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
