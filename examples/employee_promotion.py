#!/usr/bin/env python3
"""Object migration: the employee/manager story of Section 5.2.

"Consider the case of an employee that is promoted to manager (manager
being a subclass of employee with some extra attributes, like
dependents and officialcar).  The other, rather undesirable case, is
the transfer of the manager back to normal employee status (that means
the loss of the official car and of the dependents)."

This example runs the full story -- hire, promote, raise, demote,
re-promote -- and shows exactly what the model prescribes at each step:

* the static ``officialcar`` is deleted *without trace* on demotion;
* the temporal ``dependents`` history is *retained in the object* even
  when the attribute is no longer part of it;
* the class history records every migration, and the class extents
  (``ext`` / ``proper-ext``) follow;
* the object stays a consistent instance (Definition 5.5) throughout;
* substitutability: a manager can always be *viewed as* an employee or
  a person, with snapshot coercion (Section 6.1).

Run:  python examples/employee_promotion.py
"""

from repro import TemporalDatabase, check_database
from repro.model_functions import m_lifespan, pi
from repro.objects.consistency import is_consistent
from repro.values.structure import format_value


def main() -> None:
    db = TemporalDatabase()
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[("salary", "temporal(real)"), ("dept", "string")],
    )
    db.define_class(
        "manager",
        parents=["employee"],
        attributes=[
            ("dependents", "temporal(set-of(person))"),
            ("officialcar", "string"),
        ],
    )

    db.tick(10)
    pat = db.create_object("person", {"name": "Pat"})
    dan = db.create_object(
        "employee", {"name": "Dan", "salary": 1000.0, "dept": "R&D"}
    )
    print(f"t={db.now}: hired Dan as employee")

    db.tick(20)  # 30
    db.migrate(
        dan,
        "manager",
        {"officialcar": "M-1", "dependents": frozenset({pat})},
    )
    print(f"t={db.now}: promoted to manager "
          f"(officialcar=M-1, dependents={{Pat}})")

    db.tick(10)  # 40
    db.update_attribute(dan, "salary", 2000.0)
    print(f"t={db.now}: raise to 2000")

    db.tick(20)  # 60
    db.migrate(dan, "employee")
    print(f"t={db.now}: demoted back to employee")

    obj = db.get_object(dan)
    print("\n-- after demotion --")
    print(f"attributes now: {sorted(obj.value)}")
    print(f"officialcar retained? {'officialcar' in obj.retained} "
          "(static: deleted without trace)")
    print(f"dependents retained?  {'dependents' in obj.retained} "
          "(temporal: history maintained)")
    print(f"dependents history: "
          f"{format_value(obj.retained['dependents'])}")
    print(f"class history: {format_value(obj.class_history)}")
    print(f"manager extent at 45: {sorted(pi(db, 'manager', 45))}")
    print(f"manager extent now:   {sorted(pi(db, 'manager', db.now))}")
    print(f"m_lifespan(dan, manager)  = {m_lifespan(db, dan, 'manager')}")
    print(f"m_lifespan(dan, employee) = {m_lifespan(db, dan, 'employee')}")
    print(f"consistent (Def. 5.5): {is_consistent(obj, db, db, db.now)}")

    db.tick(20)  # 80
    db.migrate(dan, "manager", {"officialcar": "M-2"})
    obj = db.get_object(dan)
    print(f"\nt={db.now}: re-promoted -- the dependents history resumes")
    print(f"dependents: {format_value(obj.value['dependents'])}")
    print("(defined during the first manager period, undefined in the "
          "gap, recording again now)")

    print("\n-- substitutability (Section 6.1) --")
    print(f"as employee: {format_value(db.view_as(dan, 'employee'))}")
    print(f"as person:   {format_value(db.view_as(dan, 'person'))}")

    report = check_database(db)
    print(f"\nintegrity after the whole story: "
          f"{'OK' if report.ok else report.all_violations()}")


if __name__ == "__main__":
    main()
