#!/usr/bin/env python3
"""Persistence and introspection: save a database, restore it, inspect it.

Builds a randomized workload (the same generator the benchmarks use),
serializes the whole database -- clock, ISA DAG, class histories,
object histories, retained migrations -- to JSON, restores it, proves
the clone passes every invariant of the model, and pretty-prints
schema and objects in the paper's own notation (Definitions 4.1/5.1).

Run:  python examples/save_and_restore.py
"""

import tempfile
from pathlib import Path

from repro import check_database, database_from_json, database_to_json
from repro.model_functions import h_state
from repro.tools import describe_class, describe_database, describe_object
from repro.workloads import WorkloadSpec, build_database


def main() -> None:
    db = build_database(
        WorkloadSpec(
            n_objects=8, n_ticks=40, migration_rate=0.25, seed=2024
        )
    )
    print("== the live database ==")
    print(describe_database(db))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "company.tchimera.json"
        path.write_text(database_to_json(db))
        print(f"\nsaved to {path.name}: {path.stat().st_size:,} bytes")

        clone = database_from_json(path.read_text())

    report = check_database(clone)
    print(f"restored clone integrity: "
          f"{'OK' if report.ok else report.all_violations()}")

    some_oid = next(iter(clone.objects())).oid
    mid = clone.now // 2
    assert h_state(clone, some_oid, mid) == h_state(db, some_oid, mid)
    print(f"h_state at t={mid} agrees between original and clone")

    print("\n== a class, in Definition 4.1's notation ==")
    print(describe_class(clone, "employee"))

    migrated = next(
        (o for o in clone.objects() if len(o.class_history) > 1),
        next(iter(clone.objects())),
    )
    print("\n== an object, in Definition 5.1's notation ==")
    print(describe_object(clone, migrated.oid))

    print("\nthe clone stays usable:")
    clone.tick()
    fresh = clone.create_object("person", {"name": "Newcomer"})
    print(f"  created {fresh} at t={clone.now}; "
          f"integrity {'OK' if check_database(clone).ok else 'BROKEN'}")


if __name__ == "__main__":
    main()
