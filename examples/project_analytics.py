#!/usr/bin/env python3
"""Views, temporal analytics, and retroactive corrections.

A payroll database evolves; then we:

* define *temporal views* ("the well-paid employees") whose extents are
  functions of time (Chimera's deductive views, §2, in the temporal
  setting);
* derive analytics as exact temporal values -- headcount over time,
  total and average salary over time -- composed from the recorded
  histories with map/combine, never by stepping through instants;
* guard a two-history invariant with the AttributeOrder constraint
  ("spent never exceeds allocated, at any instant");
* discover a payroll error and fix it with a retroactive correction,
  keeping the pre-correction belief in a transaction-time log.

Run:  python examples/project_analytics.py
"""

from repro import BitemporalDatabase, TemporalView, ViewRegistry
from repro.constraints import AttributeOrder, ConstraintSet
from repro.query import attr
from repro.tools import (
    attribute_average_history,
    attribute_sum_history,
    population_history,
    value_duration,
)


def main() -> None:
    bdb = BitemporalDatabase()
    db = bdb.current
    db.define_class(
        "employee",
        attributes=[
            ("name", "string"),
            ("salary", "temporal(real)"),
        ],
    )
    db.define_class(
        "project",
        attributes=[
            ("title", "string"),
            ("spent", "temporal(real)"),
            ("allocated", "temporal(real)"),
        ],
    )

    ann = db.create_object("employee", {"name": "Ann", "salary": 1000.0})
    db.tick(10)
    bob = db.create_object("employee", {"name": "Bob", "salary": 3000.0})
    apollo = db.create_object(
        "project", {"title": "Apollo", "spent": 0.0, "allocated": 5000.0}
    )
    db.tick(10)
    db.update_attribute(ann, "salary", 2500.0)
    db.update_attribute(apollo, "spent", 3500.0)
    db.tick(10)  # now = 30
    bdb.commit("as recorded")

    print("== temporal views ==")
    views = ViewRegistry(db)
    rich = views.define("well-paid", "employee", attr("salary") >= 2000.0)
    print(f"well-paid at t=5:  {sorted(rich.extent(5))}")
    print(f"well-paid at t=25: {sorted(rich.extent(25))}")
    print(f"Ann well-paid during: {rich.membership_times(ann)}")

    print("\n== temporal analytics (exact, from the histories) ==")
    print(f"headcount(t)      = {population_history(db, 'employee')}")
    print(f"total salary(t)   = "
          f"{attribute_sum_history(db, 'employee', 'salary')}")
    print(f"average salary(t) = "
          f"{attribute_average_history(db, 'employee', 'salary')}")
    print(f"Ann's salary durations: {value_duration(db, ann, 'salary')}")

    print("\n== a two-history constraint ==")
    rules = ConstraintSet().add(
        AttributeOrder("project", "spent", "allocated")
    )
    print(f"spent <= allocated everywhere? "
          f"{'yes' if not rules.check(db) else rules.check(db)}")
    db.update_attribute(apollo, "spent", 6000.0)  # overspend!
    problems = rules.check(db)
    print(f"after overspending: {problems[0]}")
    db.update_attribute(apollo, "allocated", 7000.0)  # budget raised
    db.tick()

    print("\n== a retroactive correction ==")
    print("audit finds Ann's salary was 1200 (not 1000) during [3, 9]")
    db.correct_attribute(ann, "salary", 3, 9, 1200.0)
    bdb.commit("after audit")
    history = db.get_object(ann).value["salary"]
    print(f"corrected history: {history}")
    before = bdb.as_of(0).get_object(ann).value["salary"]
    print(f"belief before the audit (tt=0): {before}")
    print(f"current average salary(t) now reflects the correction: "
          f"{attribute_average_history(db, 'employee', 'salary').at(5)}")

    from repro import check_database

    print(f"\nintegrity: "
          f"{'OK' if check_database(db).ok else 'BROKEN'}")


if __name__ == "__main__":
    main()
