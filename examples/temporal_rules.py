#!/usr/bin/env python3
"""The paper's future work, running today: queries, constraints,
triggers (Section 7).

* a typed temporal query language (``at`` / ``sometime`` / ``always``,
  ``when``);
* temporal integrity constraints over past histories ("a salary never
  decreases", "a probation grade is held at most 30 instants");
* temporal triggers with a termination analysis.

Run:  python examples/temporal_rules.py
"""

from repro import TemporalDatabase, Transaction
from repro.constraints import (
    ConstraintSet,
    MaxDuration,
    NonDecreasing,
    ValueBounds,
)
from repro.database.events import EventKind
from repro.errors import ConstraintError
from repro.query import attr, parse_query, evaluate, select, when
from repro.triggers import Trigger, TriggerManager, on_update
from repro.triggers.triggers import WriteSpec


def main() -> None:
    db = TemporalDatabase()
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[
            ("salary", "temporal(real)"),
            ("grade", "temporal(integer)"),
            ("dept", "string"),
        ],
    )
    db.tick(10)
    ann = db.create_object(
        "employee",
        {"name": "Ann", "salary": 1000.0, "grade": 1, "dept": "R"},
    )
    bob = db.create_object(
        "employee",
        {"name": "Bob", "salary": 3000.0, "grade": 4, "dept": "S"},
    )
    db.tick(10)
    db.update_attribute(ann, "salary", 2500.0)
    db.tick(10)  # now = 30

    print("== temporal queries ==")
    q = "select employee where salary > 2000.0 at 15"
    print(f"{q}\n  -> {evaluate(db, parse_query(q))}")
    q = "select employee where salary >= 2500.0 sometime"
    print(f"{q}\n  -> {evaluate(db, parse_query(q))}")
    q = "select employee where salary >= 2500.0 always"
    print(f"{q}\n  -> {evaluate(db, parse_query(q))}")
    print(f"when was Ann's salary below 2000?  "
          f"{when(db, ann, attr('salary') < 2000.0)}")

    print("\n== temporal integrity constraints ==")
    rules = (
        ConstraintSet()
        .add(NonDecreasing("employee", "salary"))
        .add(ValueBounds("employee", "grade", lo=1, hi=10))
        .add(MaxDuration("employee", "grade", limit=30, value=1))
    )
    print(f"violations now: {rules.check(db) or 'none'}")
    rules.enforce(db)
    db.tick()
    try:
        with Transaction(db):
            db.update_attribute(ann, "salary", 500.0)  # a pay cut!
    except ConstraintError as error:
        print(f"rejected pay cut: {error}")
    print(f"Ann's salary unchanged: "
          f"{db.get_object(ann).value['salary'].at(db.now)}")
    rules.unenforce(db)

    print("\n== temporal triggers ==")
    raises_log = []
    manager = TriggerManager(db)
    manager.register(
        Trigger(
            "promote-on-big-salary",
            on_update("employee", "salary"),
            predicate=attr("salary") >= 4000.0,
            action=lambda d, e: d.update_attribute(e.oid, "grade", 5),
            writes=(WriteSpec(EventKind.UPDATE, "employee", "grade"),),
        )
    )
    manager.register(
        Trigger(
            "log-grade-changes",
            on_update("employee", "grade"),
            action=lambda d, e: raises_log.append(
                (e.oid, e.old_value, e.new_value)
            ),
        )
    )
    report = manager.termination_report()
    print(f"termination analysis: terminates={report['terminates']}, "
          f"cycles={report['cycles']}")
    db.tick()
    db.update_attribute(bob, "salary", 4500.0)
    print(f"fired: {[name for name, _e in manager.fired_log]}")
    print(f"grade-change log: {raises_log}")
    print(f"Bob's grade now: "
          f"{db.get_object(bob).value['grade'].at(db.now)}")


if __name__ == "__main__":
    main()
