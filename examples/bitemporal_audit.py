#!/usr/bin/env python3
"""Two time dimensions: an audit trail with transaction time.

The paper models valid time and notes the model "can be easily
extended to different notions of time" (Section 1.1).  This example
runs the classic bitemporal scenario on that extension: payroll data
evolves in valid time, every batch of changes is committed under a
transaction time, and an auditor later asks both kinds of question:

* valid-time:        "what was Ann's salary at t=5?"
* transaction-time:  "what did the database say at commit 1?"
* bitemporal:        "at commit 1, what did we believe Ann's salary
                      at t=5 was?"

Run:  python examples/bitemporal_audit.py
"""

from repro.bitemporal import BitemporalDatabase
from repro.model_functions import h_state
from repro.query import evaluate, parse_query


def main() -> None:
    bdb = BitemporalDatabase()
    db = bdb.current

    db.define_class(
        "employee",
        attributes=[("name", "string"), ("salary", "temporal(real)")],
    )
    ann = db.create_object("employee", {"name": "Ann", "salary": 1000.0})
    tt0 = bdb.commit("initial payroll")
    print(f"tt={tt0}: committed initial payroll (valid now = {db.now})")

    db.tick(10)
    db.update_attribute(ann, "salary", 2000.0)
    tt1 = bdb.commit("raise recorded")
    print(f"tt={tt1}: committed a raise at valid t=10")

    db.tick(10)
    bob = db.create_object("employee", {"name": "Bob", "salary": 900.0})
    db.update_attribute(ann, "salary", 2500.0)
    tt2 = bdb.commit("hire + second raise")
    print(f"tt={tt2}: committed Bob's hire and another raise "
          f"(valid now = {db.now})")

    print("\n-- valid-time question (current belief) --")
    print(f"Ann's salary at valid t=5:  "
          f"{h_state(db, ann, 5)['salary']}")
    print(f"Ann's salary at valid t=15: "
          f"{h_state(db, ann, 15)['salary']}")

    print("\n-- transaction-time question --")
    for tt in bdb.transaction_times():
        version = bdb.as_of(tt)
        print(f"as of tt={tt}: {len(version)} employees stored, "
              f"valid clock at {version.now}")

    print("\n-- bitemporal question --")
    print("what did each commit believe pi(employee, vt) was?")
    for vt in (0, 20):
        history = bdb.belief_history("employee", vt)
        cells = ", ".join(
            f"tt={tt}:{len(extent)}" for tt, extent in history
        )
        print(f"  vt={vt}: {cells}")

    print("\n-- the query language runs inside any version --")
    hits = evaluate(
        bdb.as_of(tt1),
        parse_query("select employee where salary >= 2000.0 sometime"),
    )
    print(f"as of tt={tt1}, 'salary >= 2000 sometime' -> {hits}")
    hits = evaluate(
        bdb.as_of(tt0),
        parse_query("select employee where salary >= 2000.0 sometime"),
    )
    print(f"as of tt={tt0}, same query -> {hits} "
          "(the raise was not yet stored)")


if __name__ == "__main__":
    main()
