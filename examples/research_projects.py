#!/usr/bin/env python3
"""The paper's running example: research projects (Examples 4.1-5.4).

Reconstructs, against the live engine, the exact artifacts printed in
the paper:

* the class ``project`` with immutable ``name``, static ``objective``
  and ``workplan``, temporal ``subproject`` and ``participants``, the
  c-attribute ``average-participants``, and the metaclass
  ``m-project`` (Example 4.1);
* its structural / historical / static types (Example 4.2);
* the object i1 with the histories of Example 5.1;
* ``h_state``/``s_state`` (Example 5.2), the consistency conditions of
  Example 5.3, and the equality notions of Example 5.4.

Run:  python examples/research_projects.py
"""

import copy

from repro import TemporalDatabase
from repro.model_functions import h_state, h_type, s_state, s_type, type_
from repro.objects.consistency import consistency_violations
from repro.objects.equality import (
    equal_by_value,
    instantaneous_value_equal,
)
from repro.schema.attribute import Attribute
from repro.schema.method import MethodSignature
from repro.values.oid import OID
from repro.values.structure import format_value


def build() -> tuple[TemporalDatabase, dict[str, OID]]:
    db = TemporalDatabase()
    db.tick(10)  # the class lifespan starts at 10, as in Example 4.1

    db.define_class("person", attributes=[("name", "string")])
    db.define_class("task", attributes=[("title", "string")])
    db.define_class(
        "project",
        attributes=[
            Attribute("name", "temporal(string)", immutable=True),
            ("objective", "string"),
            ("workplan", "set-of(task)"),
            ("subproject", "temporal(project)"),
            ("participants", "temporal(set-of(person))"),
        ],
        methods=[
            MethodSignature(
                "add-participant",
                ("person",),
                "project",
                body=_add_participant,
            )
        ],
        c_attributes=[("average-participants", "integer")],
        c_attr_values={"average-participants": 20},
    )

    db.tick(10)  # now = 20: the object lifespan of Example 5.1
    ids: dict[str, OID] = {}
    ids["i7"] = db.create_object("task", {"title": "implementation"})
    ids["i2"] = db.create_object("person", {"name": "Ann"})
    ids["i3"] = db.create_object("person", {"name": "Bob"})
    ids["i4"] = db.create_object(
        "project", {"name": "OLD-SUB", "objective": "prototype"}
    )
    ids["i1"] = db.create_object(
        "project",
        {
            "name": "IDEA",
            "objective": "Implementation",
            "workplan": {ids["i7"]},
            "subproject": ids["i4"],
            "participants": frozenset({ids["i2"], ids["i3"]}),
        },
    )
    db.tick(26)  # 46: subproject switched, as in Example 5.1
    ids["i9"] = db.create_object(
        "project", {"name": "NEW-SUB", "objective": "integration"}
    )
    db.update_attribute(ids["i1"], "subproject", ids["i9"])
    db.tick(35)  # 81: a participant joins
    ids["i8"] = db.create_object("person", {"name": "Cai"})
    db.call_method(ids["i1"], "add-participant", ids["i8"])
    db.tick(9)  # 90
    return db, ids


def _add_participant(db, oid, receiver, person):
    current = receiver["participants"]
    db.update_attribute(
        oid, "participants", frozenset(current) | {person}
    )
    return oid


def main() -> None:
    db, ids = build()
    i1 = ids["i1"]

    print("== Example 4.1: the class signature ==")
    project = db.get_class("project")
    print(f"c        = {project.name}")
    print(f"type     = {project.kind.value}")
    print(f"lifespan = {project.lifespan}")
    for attribute in project.attributes.values():
        print(f"attr     . {attribute}")
    for method in project.methods.values():
        print(f"meth     . {method}")
    print(f"history  = {format_value(project.history.as_record())}")
    print(f"mc       = {project.metaclass_name}")

    print("\n== Example 4.2: derived types ==")
    print(f"type(project)   = {type_(db, 'project')}")
    print(f"h_type(project) = {h_type(db, 'project')}")
    print(f"s_type(project) = {s_type(db, 'project')}")

    print("\n== Example 5.1: the object ==")
    obj = db.get_object(i1)
    print(f"i             = {obj.oid}")
    print(f"lifespan      = {obj.lifespan}")
    for name, value in obj.value.items():
        print(f"attr-history  . {name}: {format_value(value)}")
    print(f"class-history = {format_value(obj.class_history)}")

    print("\n== Example 5.2: state projections ==")
    print(f"s_state(i1)     = {format_value(s_state(db, i1))}")
    print(f"h_state(i1, 50) = {format_value(h_state(db, i1, 50))}")

    print("\n== Example 5.3: consistency ==")
    problems = consistency_violations(obj, db, db, db.now)
    print(f"consistent: {not problems}")
    for problem in problems:
        print(f"  VIOLATION: {problem}")

    print("\n== Example 5.4: equality notions ==")
    twin = copy.deepcopy(obj)
    twin.oid = OID(999, "project")
    print(f"value equal to exact twin:        "
          f"{equal_by_value(obj, twin)}")
    from repro.temporal.intervals import Interval

    twin.value["subproject"] = copy.deepcopy(obj.value["subproject"])
    twin.value["subproject"].put(
        Interval(10, 15), ids["i4"], overwrite=True
    )
    print(f"value equal after history change: "
          f"{equal_by_value(obj, twin)}")
    print(f"instantaneously equal (same current state): "
          f"{instantaneous_value_equal(obj, twin, db.now)}")


if __name__ == "__main__":
    main()
