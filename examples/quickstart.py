#!/usr/bin/env python3
"""Quickstart: a first T_Chimera database in ~60 lines.

Walks through the model's core loop: define classes, create objects,
advance the clock, update temporal attributes, and ask time-travel
questions -- the things a snapshot database cannot answer (paper,
Section 1).

Run:  python examples/quickstart.py
"""

from repro import TemporalDatabase
from repro.model_functions import h_state, o_lifespan, pi, snapshot
from repro.query import attr, select


def main() -> None:
    db = TemporalDatabase()

    # -- schema: a tiny HR world -------------------------------------------
    db.define_class("person", attributes=[("name", "string")])
    db.define_class(
        "employee",
        parents=["person"],
        attributes=[
            ("salary", "temporal(real)"),   # history recorded
            ("dept", "string"),             # current value only
        ],
    )

    # -- populate at time 0 --------------------------------------------------
    ann = db.create_object(
        "employee", {"name": "Ann", "salary": 1000.0, "dept": "R&D"}
    )
    bob = db.create_object(
        "employee", {"name": "Bob", "salary": 1800.0, "dept": "Sales"}
    )
    print(f"t={db.now}: hired Ann={ann} and Bob={bob}")

    # -- time passes; salaries change ----------------------------------------
    db.tick(10)
    db.update_attribute(ann, "salary", 1500.0)
    db.tick(10)
    db.update_attribute(ann, "salary", 2200.0)
    db.update_attribute(bob, "dept", "Marketing")  # past value NOT kept
    print(f"t={db.now}: Ann's salary history = "
          f"{db.get_object(ann).value['salary']}")

    # -- time-travel queries ---------------------------------------------------
    print(f"extent of employee at t=5: {sorted(pi(db, 'employee', 5))}")
    print(f"h_state(Ann, 12) = {h_state(db, ann, 12)}")
    print(f"snapshot(Ann, now) = {snapshot(db, ann, db.now)}")
    print(f"o_lifespan(Ann) = {o_lifespan(db, ann)}")

    # -- the query language -----------------------------------------------------
    rich_now = select("employee").where(attr("salary") > 2000.0).run(db)
    rich_ever = (
        select("employee").where(attr("salary") > 1400.0).sometime().run(db)
    )
    always_modest = (
        select("employee").where(attr("salary") < 2000.0).always().run(db)
    )
    print(f"salary > 2000 now:       {rich_now}")
    print(f"salary > 1400 sometime:  {rich_ever}")
    print(f"salary < 2000 always:    {always_modest}")

    # -- everything above maintained the model's invariants ---------------------
    from repro import check_database

    report = check_database(db)
    print(f"integrity: {'OK' if report.ok else report.all_violations()}")


if __name__ == "__main__":
    main()
