"""Baseline store implementations.

All stores hold one logical relation with a fixed attribute list, keyed
by an integer surrogate.  Time is the same discrete valid-time domain
as the model's; operations carry an explicit instant and must be
applied in non-decreasing time order (the stores are valid-time-only,
like the paper's model).

The measured quantities (bench E8):

* ``storage_cells()`` -- how many attribute-value cells the
  representation holds (the space story: tuple timestamping copies the
  whole row per update; attribute timestamping stores one new cell);
* ``update()`` cost -- what one update touches;
* ``attribute_history()`` -- the pairs of one attribute over time
  (native for attribute timestamping; a scan-and-coalesce for tuple
  timestamping; unsupported for snapshot);
* ``snapshot_at()`` -- full-row reconstruction at an instant (native
  for tuple timestamping -- one version lookup; per-attribute searches
  for attribute timestamping).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Sequence


class HistoryUnsupported(Exception):
    """The store does not record history (snapshot baseline)."""


@dataclass(frozen=True)
class Operation:
    """One log entry: insert / update / delete."""

    kind: str  # "insert" | "update" | "delete"
    key: int
    at: int
    attribute: str | None = None
    value: Any = None
    row: dict[str, Any] | None = None


class _BaseStore:
    """Shared bookkeeping: the attribute list and liveness."""

    def __init__(self, attributes: Sequence[str]) -> None:
        self.attributes = tuple(attributes)

    def insert(self, key: int, row: dict[str, Any], at: int) -> None:
        raise NotImplementedError

    def update(self, key: int, attribute: str, value: Any, at: int) -> None:
        raise NotImplementedError

    def delete(self, key: int, at: int) -> None:
        raise NotImplementedError

    def current(self, key: int) -> dict[str, Any] | None:
        raise NotImplementedError

    def attribute_history(
        self, key: int, attribute: str
    ) -> list[tuple[tuple[int, int | None], Any]]:
        """Coalesced ``((start, end_or_None), value)`` pairs; ``None``
        end means "still current"."""
        raise NotImplementedError

    def snapshot_at(self, key: int, at: int) -> dict[str, Any] | None:
        raise NotImplementedError

    def storage_cells(self) -> int:
        raise NotImplementedError


class SnapshotStore(_BaseStore):
    """A conventional database: the current state and nothing else."""

    def __init__(self, attributes: Sequence[str]) -> None:
        super().__init__(attributes)
        self._rows: dict[int, dict[str, Any]] = {}

    def insert(self, key: int, row: dict[str, Any], at: int) -> None:
        self._rows[key] = dict(row)

    def update(self, key: int, attribute: str, value: Any, at: int) -> None:
        self._rows[key][attribute] = value

    def delete(self, key: int, at: int) -> None:
        self._rows.pop(key, None)

    def current(self, key: int) -> dict[str, Any] | None:
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def attribute_history(self, key: int, attribute: str):
        raise HistoryUnsupported(
            "a snapshot database records only current data (paper, "
            "Section 1)"
        )

    def snapshot_at(self, key: int, at: int) -> dict[str, Any] | None:
        raise HistoryUnsupported(
            "a snapshot database cannot reconstruct past states"
        )

    def storage_cells(self) -> int:
        return sum(len(row) for row in self._rows.values())


class TupleTimestampedStore(_BaseStore):
    """1NF tuple timestamping: each update closes the current row
    version and appends a full copy stamped ``[start, end)``."""

    def __init__(self, attributes: Sequence[str]) -> None:
        super().__init__(attributes)
        # key -> list of [start, end_or_None, row_dict]
        self._versions: dict[int, list[list[Any]]] = {}

    def insert(self, key: int, row: dict[str, Any], at: int) -> None:
        self._versions.setdefault(key, []).append([at, None, dict(row)])

    def update(self, key: int, attribute: str, value: Any, at: int) -> None:
        versions = self._versions[key]
        start, _end, row = versions[-1]
        if row.get(attribute) == value:
            return
        if start == at:
            row[attribute] = value
            return
        versions[-1][1] = at
        new_row = dict(row)
        new_row[attribute] = value
        versions.append([at, None, new_row])

    def delete(self, key: int, at: int) -> None:
        versions = self._versions.get(key)
        if versions and versions[-1][1] is None:
            if versions[-1][0] >= at:
                versions.pop()
            else:
                versions[-1][1] = at

    def current(self, key: int) -> dict[str, Any] | None:
        versions = self._versions.get(key)
        if not versions or versions[-1][1] is not None:
            return None
        return dict(versions[-1][2])

    def attribute_history(self, key: int, attribute: str):
        result: list[tuple[tuple[int, int | None], Any]] = []
        for start, end, row in self._versions.get(key, ()):
            value = row.get(attribute)
            if result and result[-1][1] == value and result[-1][0][1] == start:
                (prev_start, _), _v = result[-1]
                result[-1] = ((prev_start, end), value)
            else:
                result.append(((start, end), value))
        return result

    def snapshot_at(self, key: int, at: int) -> dict[str, Any] | None:
        versions = self._versions.get(key, [])
        starts = [v[0] for v in versions]
        index = bisect_right(starts, at) - 1
        if index < 0:
            return None
        start, end, row = versions[index]
        if end is not None and at >= end:
            return None
        return dict(row)

    def storage_cells(self) -> int:
        return sum(
            len(row) for versions in self._versions.values()
            for _s, _e, row in versions
        )

    def version_count(self) -> int:
        return sum(len(v) for v in self._versions.values())


class AttributeTimestampedStore(_BaseStore):
    """N1NF attribute timestamping: one value history per attribute --
    the relational shadow of the model's temporal attributes."""

    def __init__(self, attributes: Sequence[str]) -> None:
        super().__init__(attributes)
        # key -> attr -> list of [start, end_or_None, value]
        self._histories: dict[int, dict[str, list[list[Any]]]] = {}
        self._lifespans: dict[int, list[int | None]] = {}

    def insert(self, key: int, row: dict[str, Any], at: int) -> None:
        histories = {
            attribute: [[at, None, row.get(attribute)]]
            for attribute in self.attributes
        }
        self._histories[key] = histories
        self._lifespans[key] = [at, None]

    def update(self, key: int, attribute: str, value: Any, at: int) -> None:
        history = self._histories[key][attribute]
        last = history[-1]
        if last[2] == value:
            return
        if last[0] == at:
            last[2] = value
            return
        last[1] = at
        history.append([at, None, value])

    def delete(self, key: int, at: int) -> None:
        lifespan = self._lifespans.get(key)
        if lifespan is None or lifespan[1] is not None:
            return
        lifespan[1] = at
        for history in self._histories[key].values():
            if history and history[-1][1] is None:
                if history[-1][0] >= at:
                    history.pop()
                else:
                    history[-1][1] = at

    def current(self, key: int) -> dict[str, Any] | None:
        lifespan = self._lifespans.get(key)
        if lifespan is None or lifespan[1] is not None:
            return None
        return {
            attribute: history[-1][2]
            for attribute, history in self._histories[key].items()
        }

    def attribute_history(self, key: int, attribute: str):
        return [
            ((start, end), value)
            for start, end, value in self._histories.get(key, {}).get(
                attribute, ()
            )
        ]

    def snapshot_at(self, key: int, at: int) -> dict[str, Any] | None:
        lifespan = self._lifespans.get(key)
        if lifespan is None or at < lifespan[0]:
            return None
        if lifespan[1] is not None and at >= lifespan[1]:
            return None
        row: dict[str, Any] = {}
        for attribute, history in self._histories[key].items():
            starts = [entry[0] for entry in history]
            index = bisect_right(starts, at) - 1
            if index < 0:
                row[attribute] = None
                continue
            start, end, value = history[index]
            row[attribute] = (
                value if end is None or at < end else None
            )
        return row

    def storage_cells(self) -> int:
        return sum(
            len(history)
            for histories in self._histories.values()
            for history in histories.values()
        )


def replay(store: _BaseStore, operations: Iterable[Operation]) -> None:
    """Apply an operation log to a store."""
    for op in operations:
        if op.kind == "insert":
            assert op.row is not None
            store.insert(op.key, op.row, op.at)
        elif op.kind == "update":
            assert op.attribute is not None
            store.update(op.key, op.attribute, op.value, op.at)
        elif op.kind == "delete":
            store.delete(op.key, op.at)
        else:
            raise ValueError(f"unknown operation kind {op.kind!r}")


def stores_agree(
    tuple_store: TupleTimestampedStore,
    attribute_store: AttributeTimestampedStore,
    keys: Iterable[int],
    instants: Iterable[int],
) -> bool:
    """The two history-keeping stores describe the same function of
    time (used by the tests to validate the baselines against each
    other, and both against the model)."""
    instants = list(instants)
    for key in keys:
        for at in instants:
            if tuple_store.snapshot_at(key, at) != attribute_store.snapshot_at(
                key, at
            ):
                return False
    return True
