"""Relational-era baselines (paper, Section 1).

The introduction classifies temporal extensions of the relational model
into *tuple timestamping* (1NF relations with extra time attributes,
e.g. TQuel [16]) and *attribute timestamping* (N1NF relations
attaching time to attribute values, e.g. HRDM [8], Gadia [9] -- the
approach T_Chimera adopts for objects), against the backdrop of
conventional *snapshot* databases that keep no history at all.

This package implements all three as single-table stores with a common
protocol, so bench E8 can measure the design space the paper argues
from: storage cells, update cost, attribute-history queries, and
point-in-time snapshot reconstruction.

* :class:`SnapshotStore` -- current state only; history queries are
  unsupported (that is the point);
* :class:`TupleTimestampedStore` -- every update versions the whole
  row; history per attribute requires scanning row versions;
* :class:`AttributeTimestampedStore` -- per-attribute value histories
  (the relational shadow of T_Chimera's temporal attributes);
* :func:`replay` -- drive any store with a common operation log;
* :func:`stores_agree` -- cross-validation of the three.
"""

from repro.baselines.stores import (
    AttributeTimestampedStore,
    HistoryUnsupported,
    Operation,
    SnapshotStore,
    TupleTimestampedStore,
    replay,
    stores_agree,
)

__all__ = [
    "SnapshotStore",
    "TupleTimestampedStore",
    "AttributeTimestampedStore",
    "HistoryUnsupported",
    "Operation",
    "replay",
    "stores_agree",
]
