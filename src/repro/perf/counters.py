"""Per-cache hit/miss/invalidation counters.

Every cache in the engine (the :class:`TemporalValue` start-key cache,
the database extent/snapshot/membership caches, the subtyping memo
tables) registers a named :class:`CacheCounter` here and ticks it on
every lookup.  :func:`stats` snapshots all counters at once and
:func:`format_stats` renders them as a fixed-width table, so a bench
regression can be traced to the cache that stopped hitting instead of
staying a mystery.

Counters are process-global and cheap (three integer adds); they count
even while caching is disabled via :func:`repro.perf.set_enabled`, in
which case every lookup is a bypass and the counters simply stop
moving.

Event-style :class:`Metric` tallies live alongside the cache counters:
the journal's ``wal.*`` series, the planner's ``planner.*`` series,
and the bulk-ingestion ``batch.*`` series (``batch.ops`` operations
recorded inside batches, ``batch.fsyncs`` group-commit barriers,
``batch.coalesced_events`` notifications folded into BATCH events,
``batch.commits`` / ``batch.rebuilds`` batch closes and whole-index
rebuild decisions).  ``python -m repro perf`` prints both families.
"""

from __future__ import annotations


class CacheCounter:
    """Hit/miss/invalidation tallies for one named cache."""

    __slots__ = ("name", "hits", "misses", "invalidations")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def hit(self) -> None:
        self.hits += 1

    def miss(self) -> None:
        self.misses += 1

    def invalidate(self, count: int = 1) -> None:
        self.invalidations += count

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup, 0.0 when the cache was never consulted."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def snapshot(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"CacheCounter({self.name!r}, hits={self.hits}, "
            f"misses={self.misses}, invalidations={self.invalidations})"
        )


class Metric:
    """A plain monotonic event tally (no hit/miss structure).

    Used by non-cache subsystems that still want to show up in
    :func:`stats`/:func:`format_stats` -- the write-ahead journal
    counts records written, syncs, checkpoints, recoveries and
    salvaged/dropped records here.
    """

    __slots__ = ("name", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0

    def add(self, n: int = 1) -> None:
        self.count += n

    def reset(self) -> None:
        self.count = 0

    def snapshot(self) -> dict[str, int | float]:
        return {"count": self.count}

    def __repr__(self) -> str:
        return f"Metric({self.name!r}, count={self.count})"


_REGISTRY: dict[str, CacheCounter] = {}
_METRICS: dict[str, Metric] = {}


def counter(name: str) -> CacheCounter:
    """The counter registered under *name* (created on first use)."""
    existing = _REGISTRY.get(name)
    if existing is None:
        existing = CacheCounter(name)
        _REGISTRY[name] = existing
    return existing


def metric(name: str) -> Metric:
    """The event metric registered under *name* (created on first use)."""
    existing = _METRICS.get(name)
    if existing is None:
        existing = Metric(name)
        _METRICS[name] = existing
    return existing


def stats() -> dict[str, dict[str, int | float]]:
    """A snapshot of every registered counter and metric, keyed by name."""
    result = {
        name: _REGISTRY[name].snapshot() for name in sorted(_REGISTRY)
    }
    result.update(
        (name, _METRICS[name].snapshot()) for name in sorted(_METRICS)
    )
    return result


def reset_stats() -> None:
    """Zero every registered counter (the registry itself persists)."""
    for item in _REGISTRY.values():
        item.reset()
    for item in _METRICS.values():
        item.reset()


def format_stats() -> str:
    """The counter table, one row per cache."""
    header = ("cache", "hits", "misses", "hit-rate", "invalidations")
    rows = [
        (
            name,
            str(item.hits),
            str(item.misses),
            f"{item.hit_rate * 100:5.1f}%",
            str(item.invalidations),
        )
        for name, item in sorted(_REGISTRY.items())
    ]
    grid = [header, *rows]
    widths = [max(len(row[i]) for row in grid) for i in range(len(header))]
    lines = []
    for index, row in enumerate(grid):
        lines.append(
            "  ".join(
                cell.ljust(width) if i == 0 else cell.rjust(width)
                for i, (cell, width) in enumerate(zip(row, widths))
            )
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    if not rows:
        lines.append("(no caches registered)")
    if _METRICS:
        lines.append("")
        width = max(len(name) for name in _METRICS)
        for name, item in sorted(_METRICS.items()):
            lines.append(f"{name.ljust(width)}  {item.count}")
    return "\n".join(lines)
