"""Hot-path cache switchboard and observability.

The engine keeps several caches on its hot paths (docs/performance.md
describes each one: key, invalidation trigger, ablation behaviour):

* the :class:`~repro.temporal.temporalvalue.TemporalValue` start-key
  cache (O(log n) temporal reads);
* the database extent / membership / snapshot caches and the per-class
  interval stabbing index (:mod:`repro.database.caches`);
* the ISA-generation-aware subtyping and lub memo tables
  (:mod:`repro.types.subtyping`).

All of them are *semantically transparent*: with caching disabled the
engine computes every answer from first principles and must agree with
the cached run on every workload (tests/test_hotpath_caches.py checks
exactly that under randomized mutate-then-read sequences).

``is_enabled`` is the single ablation switch.  Hot paths read the
module attribute directly (an attribute load, no call); benches and the
equivalence suite flip it with :func:`set_enabled` or the
:func:`disabled` context manager.  Mutation-side cache *maintenance* is
unconditional -- caches stay coherent while disabled, only lookups
bypass them -- so the flag can be toggled at any point without a flush.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.perf.counters import (
    CacheCounter,
    Metric,
    counter,
    format_stats,
    metric,
    reset_stats,
    stats,
)

__all__ = [
    "CacheCounter",
    "Metric",
    "counter",
    "disabled",
    "format_stats",
    "is_enabled",
    "metric",
    "reset_stats",
    "set_enabled",
    "stats",
]

#: The global caching switch.  Hot paths read this attribute directly.
is_enabled: bool = True


def set_enabled(flag: bool) -> bool:
    """Enable/disable all hot-path caches; returns the previous state."""
    global is_enabled
    previous = is_enabled
    is_enabled = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with every cache bypassed (the ablation baseline)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
