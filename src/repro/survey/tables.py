"""Renderers for Tables 1 and 2."""

from __future__ import annotations

from typing import Sequence

from repro.survey.models import (
    MODELS,
    TABLE1_LEGEND,
    TABLE2_LEGEND,
    ModelFeatures,
)

TABLE1_COLUMNS = (
    ("", "citation"),
    ("oo data model", "oo_data_model"),
    ("time structure", "time_structure"),
    ("time dimension", "time_dimension"),
    ("values & objects", "values_and_objects"),
    ("class features", "class_features"),
)

TABLE2_COLUMNS = (
    ("", "citation"),
    ("what is timestamped", "what_is_timestamped"),
    ("temporal attribute values", "temporal_attribute_values"),
    ("kinds of attributes", "kinds_of_attributes"),
    ("histories of object types", "histories_of_object_types"),
)


def table1_rows(
    models: Sequence[ModelFeatures] = MODELS,
) -> list[tuple[str, ...]]:
    """Header row plus one row per model, in the paper's order."""
    header = tuple(title for title, _field in TABLE1_COLUMNS)
    rows = [header]
    for model in models:
        rows.append(
            tuple(getattr(model, field) for _t, field in TABLE1_COLUMNS)
        )
    return rows


def table2_rows(
    models: Sequence[ModelFeatures] = MODELS,
) -> list[tuple[str, ...]]:
    header = tuple(title for title, _field in TABLE2_COLUMNS)
    rows = [header]
    for model in models:
        rows.append(
            tuple(getattr(model, field) for _t, field in TABLE2_COLUMNS)
        )
    return rows


def render_table(
    rows: list[tuple[str, ...]],
    legend: Sequence[str] = (),
    title: str = "",
) -> str:
    """ASCII-render a table with aligned columns and the legend."""
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for index, row in enumerate(rows):
        lines.append(
            " | ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append(separator)
    if legend:
        lines.append("")
        lines.append("Legenda:")
        lines.extend(f"  {note}" for note in legend)
    return "\n".join(lines)


def render_table1() -> str:
    return render_table(
        table1_rows(),
        TABLE1_LEGEND,
        "Table 1: Comparison among the existing temporal "
        "object-oriented data models (I)",
    )


def render_table2() -> str:
    return render_table(
        table2_rows(),
        TABLE2_LEGEND,
        "Table 2: Comparison among the existing temporal "
        "object-oriented data models (II)",
    )
