"""The paper's comparison tables, machine-readable.

Tables 1 and 2 compare eight temporal object-oriented data models
along object-oriented and temporal dimensions (Section 1.1).  This
package encodes every cell as data (:data:`MODELS`) and renders the two
tables exactly as the paper prints them -- the E1/E2 reproduction
targets.  The T_Chimera row is additionally *verified* against the
implementation: a self-check derives each of its cells from the code
(e.g. "class features: YES" from the existence of c-attributes) and
asserts agreement with the encoded claim.
"""

from repro.survey.models import MODELS, ModelFeatures, t_chimera_row_from_code
from repro.survey.tables import render_table, table1_rows, table2_rows

__all__ = [
    "MODELS",
    "ModelFeatures",
    "t_chimera_row_from_code",
    "table1_rows",
    "table2_rows",
    "render_table",
]
