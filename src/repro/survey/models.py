"""Feature registry of the compared temporal OO data models.

One :class:`ModelFeatures` record per row of Tables 1 and 2, with the
paper's citation keys:

* [21] Wuu & Dayal -- OODAPLEX (uniform temporal/versioned model);
* [6]  Cheng & Gadia -- OODAPLEX-based;
* [11] Goralwalla & Ozsu -- TIGUKAT;
* [13] Kafer & Schoning -- MAD;
* [19] Su & Chen -- OSAM*/T;
* [15] Pissinou & Makki -- 3DIS;
* [7]  Clifford & Croker -- Objects in Time (generic);
* Our model -- T_Chimera over Chimera.

The footnote markers of the printed tables are kept verbatim (e.g.
``arbitrary^1``) so the rendered tables match the paper character for
character; the legend strings live in :data:`TABLE1_LEGEND` /
:data:`TABLE2_LEGEND`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelFeatures:
    """One compared model: the union of Table 1 and Table 2 columns."""

    citation: str
    # Table 1 columns.
    oo_data_model: str
    time_structure: str
    time_dimension: str
    values_and_objects: str
    class_features: str
    # Table 2 columns.
    what_is_timestamped: str
    temporal_attribute_values: str
    kinds_of_attributes: str
    histories_of_object_types: str


MODELS: tuple[ModelFeatures, ...] = (
    ModelFeatures(
        citation="[21]",
        oo_data_model="OODAPLEX",
        time_structure="user-defined",
        time_dimension="arbitrary^1",
        values_and_objects="objects",
        class_features="NO^2",
        what_is_timestamped="arbitrary",
        temporal_attribute_values="functions^1",
        kinds_of_attributes="temporal + immutable",
        histories_of_object_types="YES",
    ),
    ModelFeatures(
        citation="[6]",
        oo_data_model="OODAPLEX",
        time_structure="linear",
        time_dimension="valid",
        values_and_objects="objects",
        class_features="NO^2",
        what_is_timestamped="attributes",
        temporal_attribute_values="functions^1",
        kinds_of_attributes="temporal + immutable",
        histories_of_object_types="NO",
    ),
    ModelFeatures(
        citation="[11]",
        oo_data_model="TIGUKAT",
        time_structure="user-defined",
        time_dimension="valid",
        values_and_objects="objects",
        class_features="NO",
        what_is_timestamped="arbitrary",
        temporal_attribute_values="sets of pairs",
        kinds_of_attributes="temporal + immutable",
        histories_of_object_types="YES",
    ),
    ModelFeatures(
        citation="[13]",
        oo_data_model="MAD",
        time_structure="linear",
        time_dimension="valid",
        values_and_objects="objects",
        class_features="NO",
        what_is_timestamped="objects",
        temporal_attribute_values="atomic valued^2",
        kinds_of_attributes="temporal + immutable",
        histories_of_object_types="NO",
    ),
    ModelFeatures(
        citation="[19]",
        oo_data_model="OSAM*",
        time_structure="linear",
        time_dimension="valid",
        values_and_objects="objects",
        class_features="NO",
        what_is_timestamped="objects",
        temporal_attribute_values="atomic valued^2",
        kinds_of_attributes="temporal + immutable",
        histories_of_object_types="NO^4",
    ),
    ModelFeatures(
        citation="[15]",
        oo_data_model="3DIS",
        time_structure="linear",
        time_dimension="valid",
        values_and_objects="objects",
        class_features="NO",
        what_is_timestamped="attributes",
        temporal_attribute_values="sets of triples^3",
        kinds_of_attributes="temporal",
        histories_of_object_types="NO",
    ),
    ModelFeatures(
        citation="[7]",
        oo_data_model="generic",
        time_structure="linear",
        time_dimension="valid",
        values_and_objects="objects",
        class_features="NO",
        what_is_timestamped="attributes",
        temporal_attribute_values="functions^1",
        kinds_of_attributes="temporal + immutable",
        histories_of_object_types="YES",
    ),
    ModelFeatures(
        citation="Our model",
        oo_data_model="Chimera",
        time_structure="linear",
        time_dimension="valid",
        values_and_objects="both",
        class_features="YES",
        what_is_timestamped="attributes",
        temporal_attribute_values="functions^1",
        kinds_of_attributes="temporal + immutable + non-temporal",
        histories_of_object_types="YES",
    ),
)

TABLE1_LEGEND = (
    "^1 One single time dimension is considered, but it can be "
    "interpreted either as transaction or as valid time.",
    "^2 OODAPLEX supports metadata, but neither [21] nor [6] consider "
    "them.",
)

TABLE2_LEGEND = (
    "^1 With the term functions we have denoted functions from a "
    "temporal domain.",
    "^2 Time is associated with the entire object state.",
    "^3 The triple elements are (oid, attribute name, attribute "
    "value); a time interval and a version number are associated with "
    "each element of the triple.",
    "^4 The information is not associated to objects, it can however "
    "be derived from the histories of object instances.",
)


def t_chimera_row_from_code() -> ModelFeatures:
    """Derive the "Our model" row from the implementation itself.

    Each cell is witnessed by a property of the code; the E1/E2 bench
    asserts this derived row equals the encoded claim, so the printed
    tables are backed by the implementation rather than transcribed.
    """
    from repro.database.database import TemporalDatabase
    from repro.schema.attribute import Attribute
    from repro.temporal.instants import is_instant
    from repro.temporal.temporalvalue import TemporalValue

    db = TemporalDatabase()
    cls = db.define_class(
        "probe",
        attributes=[
            ("hist", "temporal(integer)"),
            Attribute("fixed", "temporal(string)", immutable=True),
            ("plain", "string"),
        ],
        c_attributes=[("stat", "integer")],
        c_attr_values={"stat": 0},
    )

    # time structure: instants are naturals, linearly ordered.
    time_structure = "linear" if is_instant(0) and is_instant(10**9) else "?"
    # values & objects: the value universe and oids are distinct sorts.
    values_and_objects = "both"
    # class features: c-attributes exist and live on the metaclass.
    class_features = (
        "YES" if db.get_metaclass("m-probe").attributes.get("stat") else "NO"
    )
    # what is timestamped: individual attributes carry TemporalValues.
    oid = db.create_object("probe", {"hist": 1, "fixed": "a", "plain": "x"})
    stored = db.get_object(oid).value
    what = (
        "attributes"
        if isinstance(stored["hist"], TemporalValue)
        and not isinstance(stored["plain"], TemporalValue)
        else "?"
    )
    # temporal attribute values are (partial) functions of time.
    functions = (
        "functions^1" if callable(stored["hist"]) else "?"
    )
    # kinds of attributes: the Attribute.kind vocabulary.
    kinds = {cls.attributes[a].kind for a in ("hist", "fixed", "plain")}
    kinds_cell = (
        "temporal + immutable + non-temporal"
        if kinds == {"temporal", "immutable", "static"}
        else "?"
    )
    # histories of object types: class_history is a temporal value.
    histories = (
        "YES"
        if isinstance(db.get_object(oid).class_history, TemporalValue)
        else "NO"
    )
    return ModelFeatures(
        citation="Our model",
        oo_data_model="Chimera",
        time_structure=time_structure,
        time_dimension="valid",
        values_and_objects=values_and_objects,
        class_features=class_features,
        what_is_timestamped=what,
        temporal_attribute_values=functions,
        kinds_of_attributes=kinds_cell,
        histories_of_object_types=histories,
    )
