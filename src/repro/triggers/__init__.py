"""Temporal triggers (paper Section 7).

Chimera supports "a powerful language for defining triggers" (Section
1), and the paper's future work singles out *temporal triggers* --
including re-visiting termination and confluence.  This package
provides event-condition-action triggers whose conditions can consult
object histories (via the query language), a cascade-executing runtime
with depth bounding, and a static *termination analysis* over the
triggering graph (the classical may-activate cycle test, extended with
the temporal observation that conditions restricted to strictly-past
history cannot self-reactivate within one instant).

* :class:`Trigger` -- (event spec, condition, action, writes
  declaration);
* :class:`TriggerManager` -- registration, runtime cascade execution,
  :meth:`~TriggerManager.termination_report`.
"""

from repro.triggers.triggers import (
    Trigger,
    TriggerManager,
    on_create,
    on_delete,
    on_migrate,
    on_update,
)

__all__ = [
    "Trigger",
    "TriggerManager",
    "on_create",
    "on_update",
    "on_migrate",
    "on_delete",
]
