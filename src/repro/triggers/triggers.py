"""ECA triggers with temporal conditions.

A trigger is (event, condition, action):

* **event** -- which database operations activate it: an
  :class:`EventSpec` matching kind, class (including subclasses) and,
  for updates, the attribute;
* **condition** -- optional; a callable ``(db, event) -> bool`` or a
  query-language predicate evaluated on the affected object at ``now``.
  Temporal conditions (e.g. "salary decreased", "held value v for 10
  instants") read the object's history;
* **action** -- a callable ``(db, event) -> None``; it may perform
  further database operations, which can activate other triggers
  (cascading).  Each trigger declares ``writes``: the (class,
  attribute) pairs its action may update, plus the classes it may
  create/migrate/delete in -- the input to the termination analysis.

Termination analysis.  Build the *triggering graph*: an edge t1 -> t2
when something t1 writes matches t2's event spec.  A cycle means the
set *may* not terminate (the classical sufficient condition for
termination is acyclicity); the report lists the cycles so the
designer can break them.  The runtime independently bounds cascade
depth and raises :class:`TriggerError` beyond it, so even a cyclic set
cannot loop forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import TriggerError
from repro.database.events import Event, EventKind


@dataclass(frozen=True)
class EventSpec:
    """What activates a trigger."""

    kind: EventKind
    class_name: str
    attribute: str | None = None  # UPDATE only; None = any attribute

    def matches(self, db, event: Event) -> bool:
        if event.kind is not self.kind:
            return False
        if not db.isa.isa_le(event.class_name, self.class_name):
            return False
        if self.kind is EventKind.UPDATE and self.attribute is not None:
            return event.attribute == self.attribute
        return True


def on_create(class_name: str) -> EventSpec:
    return EventSpec(EventKind.CREATE, class_name)


def on_update(class_name: str, attribute: str | None = None) -> EventSpec:
    return EventSpec(EventKind.UPDATE, class_name, attribute)


def on_migrate(class_name: str) -> EventSpec:
    return EventSpec(EventKind.MIGRATE, class_name)


def on_delete(class_name: str) -> EventSpec:
    return EventSpec(EventKind.DELETE, class_name)


@dataclass(frozen=True)
class WriteSpec:
    """One kind of write a trigger action may perform."""

    kind: EventKind
    class_name: str
    attribute: str | None = None

    def may_activate(self, db, spec: EventSpec) -> bool:
        if self.kind is not spec.kind:
            return False
        related = db.isa.isa_le(
            self.class_name, spec.class_name
        ) or db.isa.isa_le(spec.class_name, self.class_name)
        if not related:
            return False
        if self.kind is EventKind.UPDATE and spec.attribute is not None:
            return self.attribute is None or self.attribute == spec.attribute
        return True


@dataclass
class Trigger:
    """One event-condition-action rule."""

    name: str
    event: EventSpec
    action: Callable[[Any, Event], None]
    condition: Callable[[Any, Event], bool] | None = None
    #: Query-language predicate alternative to `condition`, evaluated
    #: on the affected object at the current time.
    predicate: Any = None
    #: What the action may write (for the termination analysis).
    writes: tuple[WriteSpec, ...] = ()
    #: Condition only consults strictly-past history: within a single
    #: clock instant the condition's truth cannot be changed by the
    #: trigger's own writes, which refines the termination analysis.
    past_only: bool = False

    def should_fire(self, db, event: Event) -> bool:
        if not self.event.matches(db, event):
            return False
        if self.condition is not None and not self.condition(db, event):
            return False
        if self.predicate is not None:
            from repro.query.evaluator import _eval_at

            if event.kind is EventKind.DELETE:
                return False
            obj = db.get_object(event.oid)
            if _eval_at(db, obj, self.predicate, db.now, db.now) is not True:
                return False
        return True


class TriggerManager:
    """Registers triggers on a database and runs the cascades."""

    def __init__(self, db, max_cascade_depth: int = 64) -> None:
        self._db = db
        self._triggers: list[Trigger] = []
        self._max_depth = max_cascade_depth
        self._depth = 0
        self._fired_log: list[tuple[str, Event]] = []
        db.subscribe(self._on_event)

    # -- registration ------------------------------------------------------------

    def register(self, trigger: Trigger) -> "TriggerManager":
        if any(t.name == trigger.name for t in self._triggers):
            raise TriggerError(
                f"trigger {trigger.name!r} already registered"
            )
        self._triggers.append(trigger)
        return self

    def triggers(self) -> tuple[Trigger, ...]:
        return tuple(self._triggers)

    @property
    def fired_log(self) -> list[tuple[str, Event]]:
        """(trigger name, activating event) pairs, in firing order."""
        return list(self._fired_log)

    def detach(self) -> None:
        self._db.unsubscribe(self._on_event)

    # -- runtime -------------------------------------------------------------------

    def _on_event(self, db, event: Event) -> None:
        if event.kind is EventKind.BATCH:
            # A bulk batch delivers one coalesced notification; fire
            # the cascade per contained operation, in operation order,
            # so trigger semantics match the per-op path.
            for contained in event.events:
                self._on_event(db, contained)
            return
        to_fire = [t for t in self._triggers if t.should_fire(db, event)]
        if not to_fire:
            return
        if self._depth >= self._max_depth:
            raise TriggerError(
                f"trigger cascade exceeded depth {self._max_depth} "
                f"(triggered by {event!r}); the trigger set may be "
                "non-terminating"
            )
        self._depth += 1
        try:
            for trigger in to_fire:
                self._fired_log.append((trigger.name, event))
                trigger.action(db, event)
        finally:
            self._depth -= 1

    # -- static termination analysis ----------------------------------------------

    def triggering_graph(self) -> dict[str, set[str]]:
        """Edges t1 -> t2: t1's declared writes may activate t2."""
        graph: dict[str, set[str]] = {t.name: set() for t in self._triggers}
        for source in self._triggers:
            for target in self._triggers:
                if any(
                    write.may_activate(self._db, target.event)
                    for write in source.writes
                ):
                    graph[source.name].add(target.name)
        return graph

    def cycles(self) -> list[list[str]]:
        """Elementary cycles of the triggering graph, ignoring
        self-loops of ``past_only`` triggers (their condition cannot be
        re-enabled by their own write within one instant)."""
        graph = self.triggering_graph()
        past_only = {t.name for t in self._triggers if t.past_only}
        for name in past_only:
            graph[name].discard(name)
        return _elementary_cycles(graph)

    def termination_report(self) -> dict[str, Any]:
        """May-terminate verdict plus the offending cycles."""
        found = self.cycles()
        return {
            "terminates": not found,
            "cycles": found,
            "trigger_count": len(self._triggers),
        }


def _elementary_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """All elementary cycles (Johnson-lite via DFS; graphs here are
    tiny -- trigger sets, not data)."""
    cycles: list[list[str]] = []
    seen_signatures: set[tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: list[str]) -> None:
        for succ in sorted(graph.get(node, ())):
            if succ == start:
                cycle = path[:]
                rotation = min(range(len(cycle)), key=lambda i: cycle[i])
                signature = tuple(cycle[rotation:] + cycle[:rotation])
                if signature not in seen_signatures:
                    seen_signatures.add(signature)
                    cycles.append(list(signature))
            elif succ > start and succ not in path:
                dfs(start, succ, path + [succ])

    for start in sorted(graph):
        dfs(start, start, [start])
    return cycles
