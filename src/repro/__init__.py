"""T_Chimera: an executable reproduction of *A Formal Temporal
Object-Oriented Data Model* (Bertino, Ferrari, Guerrini; EDBT 1996).

The paper defines T_Chimera, a temporal extension of the Chimera
object-oriented data model: temporal types unifying temporal and
non-temporal domains, classes with lifespans, metaclasses and extent
histories, objects with attribute-timestamped state and class-history
(migration), four notions of object equality, consistency in a
temporal setting, and inheritance with coercion-based substitutability.

This package implements the whole model executably, plus the paper's
future-work items (temporal query language, temporal integrity
constraints, temporal triggers) and the relational-era baselines its
introduction positions against.

Quickstart::

    from repro import TemporalDatabase

    db = TemporalDatabase()
    db.tick(10)
    db.define_class(
        "project",
        attributes=[
            ("name", "temporal(string)"),
            ("objective", "string"),
            ("participants", "temporal(set-of(project))"),
        ],
    )
    oid = db.create_object("project", {"name": "IDEA", "objective": "demo"})
    db.tick(5)
    db.update_attribute(oid, "name", "IDEA-2")
    print(db.get_object(oid).value["name"])   # {<[10,14],'IDEA'>, <[15,now],'IDEA-2'>}

See ``examples/`` for full scenarios and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro.errors import TChimeraError
from repro.temporal import (
    NOW,
    Clock,
    Interval,
    IntervalSet,
    TemporalValue,
)
from repro.values import NULL, OID, RecordValue
from repro.types import (
    BOOL,
    CHARACTER,
    INTEGER,
    REAL,
    STRING,
    TIME,
    ListOf,
    ObjectType,
    RecordOf,
    SetOf,
    TemporalType,
    Type,
    format_type,
    in_extension,
    infer_type,
    is_deducible,
    is_subtype,
    lub,
    parse_type,
    t_minus,
)
from repro.schema import Attribute, ClassSignature, MethodSignature
from repro.objects import (
    TemporalObject,
    equal_by_identity,
    equal_by_value,
    h_state,
    instantaneous_value_equal,
    is_consistent,
    s_state,
    snapshot,
    weak_value_equal,
)
from repro.inheritance import IsaHierarchy, as_member_of
from repro.database import (
    TemporalDatabase,
    Transaction,
    check_database,
    database_from_json,
    database_to_json,
)
from repro.bitemporal import BitemporalDatabase
from repro.views import TemporalView, ViewRegistry

__version__ = "1.0.0"

__all__ = [
    "TChimeraError",
    # time
    "NOW",
    "Clock",
    "Interval",
    "IntervalSet",
    "TemporalValue",
    # values
    "NULL",
    "OID",
    "RecordValue",
    # types
    "Type",
    "TemporalType",
    "ObjectType",
    "SetOf",
    "ListOf",
    "RecordOf",
    "INTEGER",
    "REAL",
    "BOOL",
    "CHARACTER",
    "STRING",
    "TIME",
    "parse_type",
    "format_type",
    "t_minus",
    "in_extension",
    "is_deducible",
    "infer_type",
    "is_subtype",
    "lub",
    # schema
    "Attribute",
    "MethodSignature",
    "ClassSignature",
    # objects
    "TemporalObject",
    "h_state",
    "s_state",
    "snapshot",
    "is_consistent",
    "equal_by_identity",
    "equal_by_value",
    "instantaneous_value_equal",
    "weak_value_equal",
    # inheritance
    "IsaHierarchy",
    "as_member_of",
    # database
    "TemporalDatabase",
    "Transaction",
    "check_database",
    "database_to_json",
    "database_from_json",
    "BitemporalDatabase",
    "TemporalView",
    "ViewRegistry",
    "__version__",
]
