"""Low-overhead observability: spans, latency histograms, slow-op log.

The ``repro.perf`` counters say *how often* the engine's caches and
subsystems fired; this package says *where the time went*.  Four
pieces, documented in docs/observability.md:

* **spans** (:mod:`repro.obs.spans`) — ``with obs.span("db.snapshot"):``
  context-var tracing at the eighteen hot boundaries (:data:`KINDS`),
  nesting into per-operation span trees;
* **histograms** (:mod:`repro.obs.histograms`) — power-of-two µs
  latency buckets per span kind, with p50/p95/p99 derivation;
* **slow-op log** (:mod:`repro.obs.slowlog`) — a ring buffer of the
  full span trees of operations over ``REPRO_SLOW_US`` µs;
* **export** (:mod:`repro.obs.export`) — the merged perf+obs snapshot
  as dict / table / Prometheus text, behind ``python -m repro stats``
  and ``repro trace``.

Ablation mirrors the planner/batch pattern: ``REPRO_NO_OBS`` disables
tracing at import; :func:`set_enabled` / :func:`disabled` /
:func:`enabled` flip it at runtime; hot call sites guard on the bare
``obs.is_enabled`` attribute so the disabled path allocates nothing
(asserted via the ``obs.spans`` metric in tests/test_obs.py, measured
in benchmarks/bench_obs.py).
"""

from __future__ import annotations

from repro.obs.spans import (
    KINDS,
    Span,
    add_sink,
    current_span,
    disabled,
    enabled,
    remove_sink,
    set_enabled,
    span,
)
from repro.obs import spans as _spans
from repro.obs.histograms import (
    Histogram,
    histogram,
    histogram_stats,
    reset_histograms,
)
from repro.obs.slowlog import (
    TopK,
    clear_slow_ops,
    set_capacity,
    set_slow_threshold_us,
    slow_ops,
    slow_ops_json,
)
from repro.obs.export import (
    format_stats,
    prom_text,
    render_span_tree,
    stats_dict,
)

__all__ = [
    "KINDS",
    "Histogram",
    "Span",
    "TopK",
    "add_sink",
    "clear_slow_ops",
    "current_span",
    "disabled",
    "enabled",
    "format_stats",
    "histogram",
    "histogram_stats",
    "is_enabled",
    "prom_text",
    "remove_sink",
    "render_span_tree",
    "reset",
    "reset_histograms",
    "set_capacity",
    "set_enabled",
    "set_slow_threshold_us",
    "slow_ops",
    "slow_ops_json",
    "span",
    "stats_dict",
]

# Pre-register a histogram per instrumented boundary so every export
# lists all eighteen kinds, recorded-into or not.
for _kind in KINDS:
    histogram(_kind)
del _kind


def __getattr__(name: str):
    # ``is_enabled`` lives in repro.obs.spans (hot paths read it there
    # via the facade); forward it so ``obs.is_enabled`` always reflects
    # the live switch instead of a stale import-time copy.
    if name == "is_enabled":
        return _spans.is_enabled
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")


def reset() -> None:
    """Zero histograms and drop captured slow ops (registries persist)."""
    reset_histograms()
    clear_slow_ops()
