"""Tracing spans: a context-var span stack over the engine's hot paths.

A :class:`Span` measures one bracketed region of engine work — a
snapshot reconstruction, an extent computation, a WAL fsync — with
``time.perf_counter_ns``.  Spans opened while another span is active
become its children (the current span is tracked in a
:class:`contextvars.ContextVar`, so nesting is correct across
transactions, batches, and generator suspension), which turns every
top-level operation into a *span tree*: ``query.evaluate`` over
``planner.plan`` / ``planner.execute`` over ``db.extent`` over
``cache.rebuild``.

On exit a span records its duration into the per-kind histogram
(:mod:`repro.obs.histograms`); a *root* span (no parent) is also handed
to the registered sinks — the slow-op ring (:mod:`repro.obs.slowlog`)
and any trace-session collectors.

``is_enabled`` is the ablation switch, mirroring
``repro.query.planner`` / ``repro.database.batch``: the ``REPRO_NO_OBS``
environment variable disables tracing at import, and
:func:`set_enabled` / :func:`disabled` flip it at runtime.  The hottest
call sites (snapshot, extent, query, WAL append) guard with a bare
``if obs.is_enabled:`` attribute read so the disabled path allocates
*nothing* — not even the no-op span — which is what keeps the measured
disabled-mode overhead within noise of uninstrumented code
(``benchmarks/bench_obs.py``).  Every real span start ticks the
``obs.spans`` metric, so "the disabled path created zero spans" is an
assertable fact, not a hope.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.perf.counters import metric

from repro.obs.histograms import histogram

#: The twenty-four instrumented boundaries.  ``docs/observability.md``
#: documents each one; ``tools/check_docs_drift.py`` validates doc
#: references against this tuple.
KINDS = (
    "db.snapshot",
    "db.extent",
    "query.evaluate",
    "planner.plan",
    "planner.execute",
    "wal.append",
    "wal.fsync",
    "wal.checkpoint",
    "recovery.replay",
    "batch.flush",
    "cache.rebuild",
    "constraint.check",
    "parallel.scatter",
    "parallel.partition",
    "parallel.gather",
    "replication.ship",
    "replication.apply",
    "replication.catchup",
    "segment.spill",
    "segment.load",
    "segment.evict",
    "server.request",
    "server.session",
    "bitemporal.reconstruct",
)

_TRUTHY = ("1", "true", "yes", "on")

#: The global tracing switch.  Hot paths read this attribute directly.
is_enabled: bool = (
    os.environ.get("REPRO_NO_OBS", "").strip().lower() not in _TRUTHY
)

_SPAN_STARTS = metric("obs.spans")

_current: ContextVar["Span | None"] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Root-span completion callbacks: ``sink(span)`` is called when a span
#: with no parent closes.  The slow-op ring registers itself here; the
#: ``repro trace`` CLI adds a per-session top-K collector.
_SINKS: list = []


def set_enabled(flag: bool) -> bool:
    """Enable/disable tracing; returns the previous state."""
    global is_enabled
    previous = is_enabled
    is_enabled = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with tracing off (the ablation baseline)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def enabled() -> Iterator[None]:
    """Run a block with tracing forced on (e.g. under ``REPRO_NO_OBS``)."""
    previous = set_enabled(True)
    try:
        yield
    finally:
        set_enabled(previous)


class Span:
    """One timed region; a node in the current operation's span tree."""

    __slots__ = (
        "kind",
        "labels",
        "parent",
        "children",
        "start_ns",
        "duration_us",
        "error",
        "_token",
    )

    def __init__(
        self, kind: str, labels: dict, parent: "Span | None"
    ) -> None:
        self.kind = kind
        self.labels = labels
        self.parent = parent
        self.children: list[Span] = []
        self.start_ns = 0
        self.duration_us = 0
        self.error: str | None = None
        self._token = None

    def annotate(self, **labels) -> "Span":
        """Attach labels discovered mid-span (e.g. result cardinality)."""
        self.labels.update(labels)
        return self

    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        self.duration_us = (end_ns - self.start_ns) // 1000
        if exc_type is not None:
            self.error = exc_type.__name__
        _current.reset(self._token)
        histogram(self.kind).record(self.duration_us)
        if self.parent is None:
            for sink in _SINKS:
                sink(self)
        return False

    def to_dict(self) -> dict:
        """The span subtree as JSON-friendly nested dicts."""
        data: dict = {"kind": self.kind, "duration_us": self.duration_us}
        if self.labels:
            data["labels"] = dict(self.labels)
        if self.error is not None:
            data["error"] = self.error
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def __repr__(self) -> str:
        return (
            f"Span({self.kind!r}, {self.duration_us}us, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Returned by :func:`span` while tracing is disabled."""

    __slots__ = ()

    def annotate(self, **labels) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


def span(kind: str, **labels):
    """Open a span of *kind* (use as ``with obs.span("db.snapshot"):``).

    The span becomes a child of the current span, if any.  Returns a
    shared no-op object while tracing is disabled; the hottest call
    sites additionally guard the call itself behind
    ``if obs.is_enabled:`` so the disabled path does no work at all.
    """
    if not is_enabled:
        return _NOOP
    parent = _current.get()
    new = Span(kind, labels, parent)
    if parent is not None:
        parent.children.append(new)
    _SPAN_STARTS.add()
    return new


def current_span() -> Span | None:
    """The innermost open span in this context, or ``None``."""
    return _current.get()


def add_sink(sink) -> None:
    """Register a root-span completion callback."""
    _SINKS.append(sink)


def remove_sink(sink) -> None:
    """Unregister a callback added with :func:`add_sink`."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass
