"""The slow-op log: a ring buffer of the span trees of slow operations.

Every *root* span whose duration reaches the threshold
(``REPRO_SLOW_US`` µs, default 10000 = 10 ms) is materialized to nested
dicts and appended to a bounded :class:`collections.deque` — a crashed
or hung workload leaves behind the full trees of its slowest recent
operations, dumpable as JSON via ``python -m repro stats --json`` (the
``slow_ops`` key) or :func:`slow_ops_json`.

Captures tick the ``obs.slow_ops`` metric so the *number* of slow
operations survives even after the ring has rotated them out.

:class:`TopK` is the companion collector for ``repro trace``: instead
of a threshold it keeps the N slowest root spans of a session,
regardless of how fast they were.
"""

from __future__ import annotations

import heapq
import json
import os
from collections import deque

from repro.perf.counters import metric

from repro.obs import spans
from repro.obs.spans import Span

DEFAULT_SLOW_US = 10_000
DEFAULT_CAPACITY = 64


def _env_threshold_us() -> int:
    raw = os.environ.get("REPRO_SLOW_US", "").strip()
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_SLOW_US


#: Root spans at least this slow (µs) are captured.  ``REPRO_SLOW_US``
#: sets it at import; :func:`set_slow_threshold_us` at runtime.
threshold_us: int = _env_threshold_us()

_SLOW_OPS = metric("obs.slow_ops")
_ring: deque = deque(maxlen=DEFAULT_CAPACITY)


def set_slow_threshold_us(us: int) -> int:
    """Set the capture threshold; returns the previous value."""
    global threshold_us
    previous = threshold_us
    threshold_us = int(us)
    return previous


def set_capacity(n: int) -> None:
    """Resize the ring, keeping the most recent entries."""
    global _ring
    _ring = deque(_ring, maxlen=max(int(n), 1))


def offer(root: Span) -> None:
    """Sink: capture *root*'s tree if it cleared the threshold."""
    if root.duration_us >= threshold_us:
        _SLOW_OPS.add()
        _ring.append(root.to_dict())


def slow_ops() -> list[dict]:
    """The captured span trees, oldest first."""
    return list(_ring)


def clear_slow_ops() -> None:
    _ring.clear()


def slow_ops_json(indent: int | None = 2) -> str:
    return json.dumps(slow_ops(), indent=indent, sort_keys=True)


class TopK:
    """Keep the N slowest root spans of a session (``repro trace``)."""

    def __init__(self, n: int) -> None:
        self.n = max(int(n), 1)
        self._heap: list = []
        self._seq = 0  # tie-break so dicts are never compared

    def offer(self, root: Span) -> None:
        item = (root.duration_us, self._seq, root.to_dict())
        self._seq += 1
        if len(self._heap) < self.n:
            heapq.heappush(self._heap, item)
        elif item[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, item)

    def slowest(self) -> list[dict]:
        """The captured trees, slowest first."""
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [tree for _us, _seq, tree in ordered]


# The slow-op ring is a permanent root-span sink.
spans.add_sink(offer)
