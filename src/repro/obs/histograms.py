"""Fixed-bucket latency histograms, one per span kind.

Buckets are powers of two in microseconds: bucket 0 holds sub-µs
observations, bucket *i* (i ≥ 1) holds durations in ``[2^(i-1), 2^i)``
µs, and the last bucket absorbs everything from ~9 minutes up.  The
bucket index of a duration is just ``us.bit_length()`` — one integer
instruction, no search — which is what lets :class:`repro.obs.Span`
record into a histogram on every exit without showing up in profiles.

Quantiles are derived by a cumulative walk and reported as the upper
bound of the bucket containing the requested rank, i.e. p99 answers
"99% of operations finished within *at most* this many µs" with
power-of-two resolution.  That is the same contract Prometheus
histogram_quantile gives for the exported buckets, so the local and
scraped numbers agree.
"""

from __future__ import annotations

N_BUCKETS = 30  # last upper bound: 2^29 - 1 µs ≈ 537 s


def bucket_upper_us(index: int) -> int:
    """Inclusive upper bound (µs) of bucket *index*."""
    return 0 if index == 0 else (1 << index) - 1


class Histogram:
    """Latency distribution for one span kind, in microseconds."""

    __slots__ = ("name", "counts", "count", "total_us", "max_us")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts = [0] * N_BUCKETS
        self.count = 0
        self.total_us = 0
        self.max_us = 0

    def record(self, us: int) -> None:
        index = us.bit_length()
        if index >= N_BUCKETS:
            index = N_BUCKETS - 1
        self.counts[index] += 1
        self.count += 1
        self.total_us += us
        if us > self.max_us:
            self.max_us = us

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def quantile_us(self, q: float) -> int:
        """Upper bound of the bucket holding the q-quantile (0 < q ≤ 1)."""
        if not self.count:
            return 0
        target = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.counts):
            cumulative += bucket
            if bucket and cumulative >= target:
                return bucket_upper_us(index)
        return bucket_upper_us(N_BUCKETS - 1)

    def reset(self) -> None:
        self.counts = [0] * N_BUCKETS
        self.count = 0
        self.total_us = 0
        self.max_us = 0

    def snapshot(self) -> dict:
        """JSON-friendly summary: count, mean, quantiles, sparse buckets."""
        return {
            "count": self.count,
            "total_us": self.total_us,
            "mean_us": round(self.mean_us, 2),
            "p50_us": self.quantile_us(0.50),
            "p95_us": self.quantile_us(0.95),
            "p99_us": self.quantile_us(0.99),
            "max_us": self.max_us,
            "buckets": [
                [bucket_upper_us(index), count]
                for index, count in enumerate(self.counts)
                if count
            ],
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"p50={self.quantile_us(0.5)}us, p99={self.quantile_us(0.99)}us)"
        )


_HISTOGRAMS: dict[str, Histogram] = {}


def histogram(name: str) -> Histogram:
    """The histogram registered under *name* (created on first use)."""
    existing = _HISTOGRAMS.get(name)
    if existing is None:
        existing = Histogram(name)
        _HISTOGRAMS[name] = existing
    return existing


def histogram_stats() -> dict[str, dict]:
    """A snapshot of every registered histogram, keyed by span kind."""
    return {name: _HISTOGRAMS[name].snapshot() for name in sorted(_HISTOGRAMS)}


def reset_histograms() -> None:
    """Zero every registered histogram (the registry itself persists)."""
    for item in _HISTOGRAMS.values():
        item.reset()
