"""Export: merged perf+obs snapshots as dict, table, or Prometheus text.

Three views over the same registries (``repro.perf.counters`` for
cache counters and event metrics, ``repro.obs.histograms`` for span
latency, ``repro.obs.slowlog`` for captured trees):

* :func:`stats_dict` — one JSON-friendly dict (``repro stats --json``);
* :func:`format_stats` — the human table (``repro stats``);
* :func:`prom_text` — Prometheus text exposition format, suitable for
  a textfile-collector drop or an HTTP scrape handler
  (``repro stats --prom``).

Prometheus mapping: cache counters become
``repro_cache_{hits,misses,invalidations}_total{cache="..."}``, event
metrics become ``repro_events_total{metric="..."}``, and each span-kind
histogram becomes the classic cumulative-bucket family
``repro_span_duration_us_bucket{kind="...",le="..."}`` with ``_sum`` /
``_count``, whose ``le`` bounds are this repo's power-of-two µs bucket
edges.
"""

from __future__ import annotations

from repro.perf import counters as perf_counters

from repro.obs import histograms, slowlog, spans


def stats_dict(include_slow: bool = True) -> dict:
    """Everything the registries know, as one JSON-friendly dict."""
    # Late import: the server package imports obs for request/session
    # spans; a top-level import would close that cycle.
    from repro.bitemporal import asof as asof_mod
    from repro.server import server as server_mod

    data: dict = {
        "obs_enabled": spans.is_enabled,
        "counters": perf_counters.stats(),
        "histograms": histograms.histogram_stats(),
        "slow_threshold_us": slowlog.threshold_us,
        "server": server_mod.stats(),
        "bitemporal": asof_mod.stats(),
    }
    if include_slow:
        data["slow_ops"] = slowlog.slow_ops()
    return data


def _histogram_table() -> str:
    header = ("span kind", "count", "mean", "p50", "p95", "p99", "max")
    rows = []
    for kind, snap in sorted(histograms.histogram_stats().items()):
        rows.append(
            (
                kind,
                str(snap["count"]),
                f"{snap['mean_us']:.1f}",
                str(snap["p50_us"]),
                str(snap["p95_us"]),
                str(snap["p99_us"]),
                str(snap["max_us"]),
            )
        )
    grid = [header, *rows]
    widths = [max(len(row[i]) for row in grid) for i in range(len(header))]
    lines = []
    for index, row in enumerate(grid):
        lines.append(
            "  ".join(
                cell.ljust(width) if i == 0 else cell.rjust(width)
                for i, (cell, width) in enumerate(zip(row, widths))
            )
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    if not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def format_stats() -> str:
    """The perf counter table plus the span-latency table (µs)."""
    captured = len(slowlog.slow_ops())
    total_slow = perf_counters.metric("obs.slow_ops").count
    parts = [
        perf_counters.format_stats(),
        "",
        "span latency (us):",
        _histogram_table(),
        "",
        f"slow ops (>= {slowlog.threshold_us} us): "
        f"{total_slow} captured, {captured} in ring"
        + ("" if spans.is_enabled else "  [tracing disabled]"),
    ]
    return "\n".join(parts)


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def prom_text() -> str:
    """All counters and histograms in Prometheus text exposition format."""
    counter_snaps: list[tuple[str, dict]] = []
    metric_snaps: list[tuple[str, dict]] = []
    for name, snap in sorted(perf_counters.stats().items()):
        if "hits" in snap:
            counter_snaps.append((name, snap))
        else:
            metric_snaps.append((name, snap))

    lines: list[str] = []
    for field in ("hits", "misses", "invalidations"):
        family = f"repro_cache_{field}_total"
        lines.append(f"# HELP {family} Cache {field} by cache name.")
        lines.append(f"# TYPE {family} counter")
        for name, snap in counter_snaps:
            lines.append(
                f'{family}{{cache="{_escape(name)}"}} {snap[field]}'
            )

    lines.append(
        "# HELP repro_events_total Monotonic event tallies by metric name."
    )
    lines.append("# TYPE repro_events_total counter")
    for name, snap in metric_snaps:
        lines.append(
            f'repro_events_total{{metric="{_escape(name)}"}} {snap["count"]}'
        )

    # Paged-storage gauges: current page-cache occupancy and hit rate.
    # Imported here, not at module top -- the database package imports
    # obs for spans, and a top-level import would close that cycle.
    from repro.database import pagecache

    cache = pagecache.stats()
    for field, help_text in (
        ("resident_bytes", "Bytes of cold segment pages held in memory."),
        ("budget_bytes", "Configured page-cache byte budget."),
        ("pages", "Cold segment pages currently resident."),
        ("hit_rate", "Lifetime page-cache hit rate (0..1)."),
    ):
        family = f"repro_page_cache_{field}"
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {cache[field]}")

    # Serving-layer gauges: live session/view occupancy and refusals.
    from repro.server import server as server_mod

    serving = server_mod.stats()
    for field, help_text in (
        ("sessions_active", "Client sessions currently connected."),
        ("sessions_total", "Client sessions accepted since start."),
        ("active_views", "MVCC read views currently open."),
        (
            "admission_rejections",
            "Requests refused by admission control or draining.",
        ),
        ("inflight_reads", "Reads currently executing or dispatched."),
    ):
        family = f"repro_server_{field}"
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {serving[field]}")

    # Transaction-time (AS OF) gauges: read mix and memo occupancy.
    from repro.bitemporal import asof as asof_mod

    bitemporal = asof_mod.stats()
    for field, help_text in (
        ("asof_reads", "AS OF transaction-time reads served."),
        ("head_hits", "AS OF reads answered from the live head state."),
        ("reconstructions", "Historical states rebuilt by journal replay."),
        ("cache_hits", "AS OF reads answered from the reconstruction memo."),
        ("cache_entries", "Reconstructed states currently memoized."),
    ):
        family = f"repro_bitemporal_{field}"
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {bitemporal[field]}")

    lines.append(
        "# HELP repro_span_duration_us Span wall time by span kind "
        "(microseconds)."
    )
    lines.append("# TYPE repro_span_duration_us histogram")
    for kind in sorted(histograms._HISTOGRAMS):
        hist = histograms._HISTOGRAMS[kind]
        label = _escape(kind)
        cumulative = 0
        for index, count in enumerate(hist.counts):
            cumulative += count
            if count:
                upper = histograms.bucket_upper_us(index)
                lines.append(
                    f'repro_span_duration_us_bucket'
                    f'{{kind="{label}",le="{upper}"}} {cumulative}'
                )
        lines.append(
            f'repro_span_duration_us_bucket{{kind="{label}",le="+Inf"}} '
            f"{hist.count}"
        )
        lines.append(
            f'repro_span_duration_us_sum{{kind="{label}"}} {hist.total_us}'
        )
        lines.append(
            f'repro_span_duration_us_count{{kind="{label}"}} {hist.count}'
        )
    return "\n".join(lines) + "\n"


def render_span_tree(tree: dict, indent: int = 0) -> str:
    """One captured span tree as an indented text block."""
    labels = tree.get("labels") or {}
    bits = " ".join(f"{key}={value}" for key, value in labels.items())
    error = tree.get("error")
    suffix = (f"  !{error}" if error else "") + (f"  [{bits}]" if bits else "")
    line = (
        f"{'  ' * indent}{tree['kind']:<18} "
        f"{tree['duration_us']:>8} us{suffix}"
    )
    lines = [line]
    for child in tree.get("children", ()):
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)
