"""Instants of the T_Chimera time domain.

The domain of the basic value type ``time`` is ``TIME = {0, 1, ..., now,
...}``, isomorphic to the natural numbers (paper, Section 3.2).  Instants
are therefore plain non-negative ``int`` values.

``now`` is a special constant denoting the current time.  In a running
database ``now`` has a concrete value supplied by the database
:class:`~repro.temporal.clock.Clock`; in *stored* data (interval
endpoints, query texts) it appears symbolically, as the singleton
:data:`NOW`.  A stored interval ``[51, NOW]`` is a *moving* interval: it
covers all instants from 51 up to whatever the clock currently reads.

:func:`resolve_endpoint` turns a symbolic endpoint into a concrete
instant given the clock reading.
"""

from __future__ import annotations

from typing import Union

from repro.errors import InvalidInstantError, UnresolvedNowError


class Now:
    """The symbolic ``now`` marker.

    A singleton (:data:`NOW`); ``Now()`` always returns the same object.
    It can be stored wherever an instant is expected and is resolved to a
    concrete instant with :func:`resolve_endpoint`.
    """

    _instance: "Now | None" = None

    def __new__(cls) -> "Now":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "now"

    def __hash__(self) -> int:
        return hash("T_Chimera.now")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Now)

    def __reduce__(self):
        # Pickling must preserve singleton identity.
        return (Now, ())


NOW = Now()

#: A time point as it may appear in stored data: a concrete instant or NOW.
TimePoint = Union[int, Now]


def is_instant(value: object) -> bool:
    """Return True iff *value* is a concrete instant (a natural number).

    ``bool`` is excluded even though it subclasses ``int``: ``True`` is a
    boolean value, not a time instant.
    """
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate_instant(value: object, what: str = "instant") -> int:
    """Validate that *value* is a concrete instant and return it.

    Raises :class:`InvalidInstantError` otherwise.
    """
    if not is_instant(value):
        raise InvalidInstantError(
            f"{what} must be a natural number, got {value!r}"
        )
    return value  # type: ignore[return-value]


def resolve_endpoint(point: TimePoint, now: int | None) -> int:
    """Resolve a possibly-symbolic time point to a concrete instant.

    * a concrete instant resolves to itself;
    * :data:`NOW` resolves to *now* -- raising
      :class:`UnresolvedNowError` when *now* is ``None``.
    """
    if isinstance(point, Now):
        if now is None:
            raise UnresolvedNowError(
                "a symbolic 'now' endpoint needs a concrete clock reading"
            )
        return validate_instant(now, "now")
    return validate_instant(point)
