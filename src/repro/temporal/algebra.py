"""Allen's interval relations over the discrete time domain.

The paper defines interval union, intersection, inclusion and membership
with their usual set semantics (Section 3.2).  For query predicates and
constraint checking it is convenient to also expose the thirteen basic
relations of Allen's interval algebra, adapted to closed discrete
intervals.

On a *discrete* domain the distinction between ``meets`` and ``before``
is conventional: we take ``a meets b`` to mean ``a.end + 1 == b.start``
(the intervals abut with no gap and no shared instant), matching how the
paper coalesces ``<[10,50],v1>, <[51,now],v2>`` histories.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import InvalidIntervalError
from repro.temporal.intervals import Interval


class AllenRelation(str, Enum):
    """The thirteen basic relations of Allen's interval algebra."""

    BEFORE = "before"
    MEETS = "meets"
    OVERLAPS = "overlaps"
    STARTS = "starts"
    DURING = "during"
    FINISHES = "finishes"
    EQUAL = "equal"
    FINISHED_BY = "finished-by"
    CONTAINS = "contains"
    STARTED_BY = "started-by"
    OVERLAPPED_BY = "overlapped-by"
    MET_BY = "met-by"
    AFTER = "after"

    def inverse(self) -> "AllenRelation":
        """The converse relation (``a R b`` iff ``b R.inverse() a``)."""
        return _INVERSES[self]


_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.EQUAL: AllenRelation.EQUAL,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.AFTER: AllenRelation.BEFORE,
}


def allen_relation(
    a: Interval, b: Interval, now: int | None = None
) -> AllenRelation:
    """Classify the relation of interval *a* to interval *b*.

    Exactly one of the thirteen relations holds for any pair of
    non-empty intervals.  Raises :class:`InvalidIntervalError` for the
    null interval, whose relation to anything is undefined.
    """
    ra, rb = a.resolve(now), b.resolve(now)
    if ra.is_empty or rb.is_empty:
        raise InvalidIntervalError(
            "Allen relations are undefined for the null interval"
        )
    a1, a2 = ra.start, ra.end
    b1, b2 = rb.start, rb.end
    assert isinstance(a2, int) and isinstance(b2, int)

    if a2 + 1 < b1:
        return AllenRelation.BEFORE
    if a2 + 1 == b1:
        return AllenRelation.MEETS
    if b2 + 1 < a1:
        return AllenRelation.AFTER
    if b2 + 1 == a1:
        return AllenRelation.MET_BY
    if a1 == b1 and a2 == b2:
        return AllenRelation.EQUAL
    if a1 == b1:
        return AllenRelation.STARTS if a2 < b2 else AllenRelation.STARTED_BY
    if a2 == b2:
        return AllenRelation.FINISHES if a1 > b1 else AllenRelation.FINISHED_BY
    if b1 < a1 and a2 < b2:
        return AllenRelation.DURING
    if a1 < b1 and b2 < a2:
        return AllenRelation.CONTAINS
    if a1 < b1:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY
