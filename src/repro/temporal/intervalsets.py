"""Canonical sets of disjoint intervals.

The paper (Section 3.2) uses a set of disjoint intervals
``I = {[ti,tj], ..., [tr,ts]}`` as a compact notation for the set of time
instants those intervals cover.  :class:`IntervalSet` realizes that
notation as a first-class value with a full Boolean algebra: union,
intersection, difference, complement (relative to a horizon), inclusion
and membership tests.

Canonical form
--------------
An :class:`IntervalSet` always stores concrete (resolved), pairwise
disjoint, *non-adjacent* intervals sorted by start.  Adjacency is
coalesced away because time is discrete: ``{[3,5], [6,9]}`` denotes the
same instants as ``{[3,9]}``.  Canonicalization makes structural equality
coincide with extensional (instant-set) equality.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import InvalidIntervalError
from repro.temporal.instants import validate_instant
from repro.temporal.intervals import Interval


class IntervalSet:
    """An immutable set of time instants, stored as disjoint intervals."""

    __slots__ = ("_intervals",)

    def __init__(
        self,
        intervals: Iterable[Interval] = (),
        now: int | None = None,
    ) -> None:
        """Build an interval set from any iterable of intervals.

        Overlapping and adjacent input intervals are merged; moving
        intervals are resolved against *now* (required if any input
        interval is moving).
        """
        concrete: list[tuple[int, int]] = []
        for interval in intervals:
            resolved = interval.resolve(now)
            if resolved.is_empty:
                continue
            concrete.append((resolved.start, resolved.end))  # type: ignore[arg-type]
        concrete.sort()
        merged: list[tuple[int, int]] = []
        for start, end in concrete:
            if merged and start <= merged[-1][1] + 1:
                prev_start, prev_end = merged[-1]
                merged[-1] = (prev_start, max(prev_end, end))
            else:
                merged.append((start, end))
        self._intervals: tuple[Interval, ...] = tuple(
            Interval(s, e) for s, e in merged
        )

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set of instants (the null interval ``[``)."""
        return _EMPTY

    @classmethod
    def instant(cls, t: int) -> "IntervalSet":
        """The singleton set ``{[t,t]}``."""
        return cls([Interval.instant(t)])

    @classmethod
    def span(cls, start: int, end: int) -> "IntervalSet":
        """The contiguous set ``{[start, end]}``."""
        return cls([Interval(start, end)])

    @classmethod
    def from_instants(cls, instants: Iterable[int]) -> "IntervalSet":
        """Build from an arbitrary iterable of instants."""
        points = sorted({validate_instant(t) for t in instants})
        intervals: list[Interval] = []
        i = 0
        while i < len(points):
            j = i
            while j + 1 < len(points) and points[j + 1] == points[j] + 1:
                j += 1
            intervals.append(Interval(points[i], points[j]))
            i = j + 1
        return cls(intervals)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "IntervalSet":
        """Build from ``(start, end)`` integer pairs."""
        return cls(Interval(s, e) for s, e in pairs)

    # -- structure ------------------------------------------------------------

    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The canonical disjoint intervals, sorted by start."""
        return self._intervals

    @property
    def is_empty(self) -> bool:
        return not self._intervals

    def is_contiguous(self) -> bool:
        """True iff the set is a single interval (or empty).

        Class and object lifespans are required to be contiguous
        (paper, Sections 4 and 5.1).
        """
        return len(self._intervals) <= 1

    def start(self) -> int:
        """The earliest instant in the set."""
        if not self._intervals:
            raise InvalidIntervalError("empty interval set has no start")
        return self._intervals[0].start

    def end(self) -> int:
        """The latest instant in the set."""
        if not self._intervals:
            raise InvalidIntervalError("empty interval set has no end")
        return self._intervals[-1].end  # type: ignore[return-value]

    def cardinality(self) -> int:
        """The number of instants in the set."""
        return sum(interval.duration() for interval in self._intervals)

    def instants(self) -> Iterator[int]:
        """Iterate over all instants, in increasing order."""
        for interval in self._intervals:
            yield from interval.instants()

    def hull(self) -> Interval:
        """The smallest single interval containing the whole set."""
        if not self._intervals:
            return Interval.empty()
        return Interval(self.start(), self.end())

    # -- membership and comparison ---------------------------------------------

    def contains(self, t: int) -> bool:
        """True iff instant *t* is in the set (binary search)."""
        validate_instant(t)
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            interval = self._intervals[mid]
            if t < interval.start:
                hi = mid - 1
            elif t > interval.end:  # type: ignore[operator]
                lo = mid + 1
            else:
                return True
        return False

    def __contains__(self, t: object) -> bool:
        if not isinstance(t, int) or isinstance(t, bool):
            return False
        return self.contains(t)

    def issubset(self, other: "IntervalSet") -> bool:
        """True iff every instant of self is in *other*."""
        return (self & other) == self

    def isdisjoint(self, other: "IntervalSet") -> bool:
        """True iff the two sets share no instant."""
        return (self & other).is_empty

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __bool__(self) -> bool:
        return not self.is_empty

    def __len__(self) -> int:
        return len(self._intervals)

    # -- Boolean algebra ----------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet([*self._intervals, *other._intervals])

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        result: list[Interval] = []
        a, b = self._intervals, other._intervals
        i = j = 0
        while i < len(a) and j < len(b):
            piece = a[i].intersect(b[j])
            if not piece.is_empty:
                result.append(piece)
            # advance whichever interval ends first
            if a[i].end <= b[j].end:  # type: ignore[operator]
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        result: list[Interval] = []
        for interval in self._intervals:
            pieces: Sequence[Interval] = (interval,)
            for cut in other._intervals:
                next_pieces: list[Interval] = []
                for piece in pieces:
                    next_pieces.extend(piece.difference(cut))
                pieces = next_pieces
                if not pieces:
                    break
            result.extend(pieces)
        return IntervalSet(result)

    def symmetric_difference(self, other: "IntervalSet") -> "IntervalSet":
        return (self - other) | (other - self)

    def complement(self, horizon: Interval) -> "IntervalSet":
        """Instants of *horizon* not in the set."""
        return IntervalSet([horizon]) - self

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference

    # -- display -----------------------------------------------------------------

    def __repr__(self) -> str:
        if not self._intervals:
            return "{}"
        return "{" + ", ".join(repr(i) for i in self._intervals) + "}"


_EMPTY = IntervalSet()
