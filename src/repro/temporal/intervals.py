"""Closed intervals over the discrete T_Chimera time domain.

An interval ``I = [t1, t2]`` is the set of consecutive time instants from
``t1`` to ``t2``, both included (paper, Section 3.2).  A single instant
``t`` is the interval ``[t, t]``; ``[`` denotes the null interval, which
contains no instants and is available here as :data:`NULL_INTERVAL`.

The right endpoint may be the symbolic :data:`~repro.temporal.instants.NOW`
marker, giving a *moving* interval ``[t, now]`` that tracks the database
clock.  Operations that depend on the concrete extent of a moving interval
take a ``now`` argument; purely structural operations do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import InvalidIntervalError
from repro.temporal.instants import (
    NOW,
    Now,
    TimePoint,
    resolve_endpoint,
    validate_instant,
)


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[start, end]`` of time instants.

    ``start`` is a concrete instant.  ``end`` is a concrete instant or
    :data:`NOW`.  The empty (null) interval is the distinguished object
    :data:`NULL_INTERVAL`, constructed with :meth:`Interval.empty`.

    Instances are immutable and hashable.
    """

    start: int
    end: TimePoint
    _empty: bool = False

    def __post_init__(self) -> None:
        if self._empty:
            return
        validate_instant(self.start, "interval start")
        if not isinstance(self.end, Now):
            validate_instant(self.end, "interval end")
            if self.end < self.start:
                raise InvalidIntervalError(
                    f"interval start {self.start} is after end {self.end}; "
                    "use Interval.empty() for the null interval"
                )

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls) -> "Interval":
        """Return the null interval ``[`` (contains no instants)."""
        return _NULL

    @classmethod
    def instant(cls, t: int) -> "Interval":
        """Return the singleton interval ``[t, t]``."""
        return cls(t, t)

    @classmethod
    def from_now(cls, t: int) -> "Interval":
        """Return the moving interval ``[t, now]``."""
        return cls(t, NOW)

    # -- structural predicates --------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True iff this is the null interval."""
        return self._empty

    @property
    def is_moving(self) -> bool:
        """True iff the right endpoint is the symbolic ``now``."""
        return not self._empty and isinstance(self.end, Now)

    # -- resolution --------------------------------------------------------

    def resolve(self, now: int | None = None) -> "Interval":
        """Replace a symbolic ``now`` endpoint with the clock reading.

        Returns an interval with concrete endpoints.  A moving interval
        whose start is after *now* resolves to the null interval (the
        value became defined "in the future" relative to an earlier
        clock reading; this cannot arise under the engine's clock
        discipline but is well-defined here).
        """
        if self._empty or not isinstance(self.end, Now):
            return self
        end = resolve_endpoint(self.end, now)
        if end < self.start:
            return _NULL
        return Interval(self.start, end)

    def end_instant(self, now: int | None = None) -> int:
        """The concrete right endpoint (resolving ``now`` if needed)."""
        if self._empty:
            raise InvalidIntervalError("the null interval has no endpoints")
        return resolve_endpoint(self.end, now)

    # -- extent ------------------------------------------------------------

    def duration(self, now: int | None = None) -> int:
        """Number of instants in the interval (0 for the null interval)."""
        if self._empty:
            return 0
        resolved = self.resolve(now)
        if resolved._empty:
            return 0
        return resolved.end - resolved.start + 1  # type: ignore[operator]

    def instants(self, now: int | None = None) -> Iterator[int]:
        """Iterate over the instants the interval contains, in order."""
        resolved = self.resolve(now)
        if resolved._empty:
            return iter(())
        return iter(range(resolved.start, resolved.end + 1))  # type: ignore[arg-type]

    def contains(self, t: int, now: int | None = None) -> bool:
        """True iff instant *t* belongs to the interval (``t in I``)."""
        validate_instant(t)
        resolved = self.resolve(now if now is not None else t)
        if resolved._empty:
            return False
        if self.is_moving and now is None:
            # [s, now] read at instant t: t is in it iff t >= s.
            return t >= self.start
        return resolved.start <= t <= resolved.end  # type: ignore[operator]

    def __contains__(self, t: object) -> bool:
        if not isinstance(t, int) or isinstance(t, bool):
            return False
        return self.contains(t)

    # -- algebra (on resolved intervals) ------------------------------------

    def overlaps(self, other: "Interval", now: int | None = None) -> bool:
        """True iff the two intervals share at least one instant."""
        a, b = self.resolve(now), other.resolve(now)
        if a._empty or b._empty:
            return False
        return a.start <= b.end and b.start <= a.end  # type: ignore[operator]

    def adjacent(self, other: "Interval", now: int | None = None) -> bool:
        """True iff the intervals abut (e.g. ``[3,5]`` and ``[6,9]``).

        Time is discrete, so abutting intervals cover a contiguous span.
        """
        a, b = self.resolve(now), other.resolve(now)
        if a._empty or b._empty:
            return False
        return a.end + 1 == b.start or b.end + 1 == a.start  # type: ignore[operator]

    def intersect(self, other: "Interval", now: int | None = None) -> "Interval":
        """The interval of instants common to both (possibly null)."""
        a, b = self.resolve(now), other.resolve(now)
        if a._empty or b._empty:
            return _NULL
        start = max(a.start, b.start)
        end = min(a.end, b.end)  # type: ignore[type-var]
        if end < start:
            return _NULL
        return Interval(start, end)

    def union(self, other: "Interval", now: int | None = None) -> "Interval":
        """The union, when it is itself an interval.

        Defined only for overlapping or adjacent intervals; a union of
        separated intervals is an interval *set*
        (:class:`~repro.temporal.intervalsets.IntervalSet`).
        """
        a, b = self.resolve(now), other.resolve(now)
        if a._empty:
            return b
        if b._empty:
            return a
        if not (a.overlaps(b) or a.adjacent(b)):
            raise InvalidIntervalError(
                f"union of separated intervals {a} and {b} is not an "
                "interval; use IntervalSet"
            )
        return Interval(min(a.start, b.start), max(a.end, b.end))  # type: ignore[type-var]

    def difference(
        self, other: "Interval", now: int | None = None
    ) -> tuple["Interval", ...]:
        """Instants of self not in *other*: zero, one, or two intervals."""
        a, b = self.resolve(now), other.resolve(now)
        if a._empty:
            return ()
        if b._empty or not a.overlaps(b):
            return (a,)
        pieces = []
        if a.start < b.start:  # type: ignore[operator]
            pieces.append(Interval(a.start, b.start - 1))  # type: ignore[operator]
        if a.end > b.end:  # type: ignore[operator]
            pieces.append(Interval(b.end + 1, a.end))  # type: ignore[operator]
        return tuple(pieces)

    def issubset(self, other: "Interval", now: int | None = None) -> bool:
        """True iff every instant of self is in *other* (``I1 <= I2``)."""
        a, b = self.resolve(now), other.resolve(now)
        if a._empty:
            return True
        if b._empty:
            return False
        return b.start <= a.start and a.end <= b.end  # type: ignore[operator]

    # -- display -------------------------------------------------------------

    def __repr__(self) -> str:
        if self._empty:
            return "[]"
        return f"[{self.start},{self.end!r}]"

    def __str__(self) -> str:
        return repr(self)


_NULL = Interval(0, 0, _empty=True)

#: The null interval ``[`` -- the interval containing no time instants.
NULL_INTERVAL = _NULL
