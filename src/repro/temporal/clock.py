"""The database clock.

The paper treats ``now`` as a special constant of the time domain that
denotes the current time (Section 3.2).  Operationally, a
:class:`Clock` owns the concrete value of ``now`` for one database:
updates are stamped with the clock reading, and moving ``[t, now]``
intervals are resolved against it.

Clock discipline
----------------
* time starts at 0 (the relative beginning) unless stated otherwise;
* the clock only moves forward (:meth:`tick`, :meth:`advance_to`);
* reading the clock (:attr:`now`) has no side effects.

Keeping the clock explicit (rather than wall-clock derived) makes every
run of the engine, the tests and the benchmarks deterministic.
"""

from __future__ import annotations

from repro.errors import ClockError
from repro.temporal.instants import validate_instant


class Clock:
    """A deterministic, monotonically advancing reading of ``now``."""

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = validate_instant(start, "clock start")

    @property
    def now(self) -> int:
        """The current time instant."""
        return self._now

    def tick(self, steps: int = 1) -> int:
        """Advance the clock by *steps* instants and return the new time."""
        if steps < 0:
            raise ClockError("the clock cannot move backwards")
        self._now += steps
        return self._now

    def advance_to(self, instant: int) -> int:
        """Move the clock forward to *instant* (idempotent at *instant*)."""
        validate_instant(instant, "clock target")
        if instant < self._now:
            raise ClockError(
                f"cannot move the clock back from {self._now} to {instant}"
            )
        self._now = instant
        return self._now

    def __repr__(self) -> str:
        return f"Clock(now={self._now})"
