"""The time domain substrate of T_Chimera.

The paper assumes (Section 3.2) a discrete, linear time domain::

    TIME = {0, 1, ..., now, ...}   isomorphic to the natural numbers

with ``0`` the relative beginning and ``now`` a special constant denoting
the current time.  An interval ``[t1, t2]`` is the set of consecutive
instants between ``t1`` and ``t2`` inclusive; ``[`` denotes the null
interval.  A set of disjoint intervals is used as a compact notation for
the set of instants it covers.

This package provides:

* :mod:`repro.temporal.instants` -- instants, the :data:`NOW` marker and
  endpoint resolution;
* :mod:`repro.temporal.intervals` -- closed intervals with an optional
  moving ``now`` right endpoint;
* :mod:`repro.temporal.intervalsets` -- canonical disjoint interval sets
  with a full Boolean algebra;
* :mod:`repro.temporal.algebra` -- Allen's interval relations;
* :mod:`repro.temporal.temporalvalue` -- values of the temporal types
  ``temporal(T)``: partial functions from TIME, stored as coalesced
  ``(interval, value)`` pairs;
* :mod:`repro.temporal.clock` -- the advancing database clock that gives
  ``now`` its concrete value.
"""

from repro.temporal.instants import (
    NOW,
    Now,
    TimePoint,
    is_instant,
    resolve_endpoint,
    validate_instant,
)
from repro.temporal.intervals import Interval, NULL_INTERVAL
from repro.temporal.intervalsets import IntervalSet
from repro.temporal.algebra import AllenRelation, allen_relation
from repro.temporal.temporalvalue import TemporalValue
from repro.temporal.clock import Clock

__all__ = [
    "NOW",
    "Now",
    "TimePoint",
    "is_instant",
    "validate_instant",
    "resolve_endpoint",
    "Interval",
    "NULL_INTERVAL",
    "IntervalSet",
    "AllenRelation",
    "allen_relation",
    "TemporalValue",
    "Clock",
]
