"""Temporal values: partial functions from TIME to a value domain.

The extension of a temporal type ``temporal(T)`` at time ``t`` is the set
of partial functions ``f : TIME -> U_t' [[T]]_t'`` such that ``f(t')``,
when defined, is a legal value of ``T`` at ``t'`` (Definition 3.5).  The
paper represents such a function compactly as a set of pairs::

    { <tau_1, v_1>, ..., <tau_n, v_n> }

where the ``tau_i`` are disjoint time intervals and the function takes
value ``v_i`` throughout ``tau_i`` (Section 3.2).  :class:`TemporalValue`
realizes exactly that representation.

Representation invariants
-------------------------
* pairs are sorted by interval start and pairwise disjoint;
* at most one pair has a *moving* ``[t, now]`` interval, and it is the
  last pair (the "open" pair tracking the current value);
* adjacent pairs carrying equal values are coalesced (``coalesce=False``
  at construction disables this, for the ablation bench E4).

Mutation protocol
-----------------
The engine updates temporal attributes through two operations:

* :meth:`assign` -- "the value becomes v at instant t": closes the open
  pair at ``t-1`` and opens ``<[t, now], v>``;
* :meth:`close` -- "the value stops being recorded after instant t":
  closes the open pair (object deletion, attribute dropped by migration;
  the history is retained, per Section 5.2).

:meth:`put` supports arbitrary (e.g. retroactive) insertions and is used
by loaders and the workload generator.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterable, Iterator

from repro import perf
from repro.errors import (
    OverlappingHistoryError,
    UndefinedAtError,
    UnresolvedNowError,
)
from repro.temporal.instants import NOW, Now, validate_instant
from repro.temporal.intervals import Interval
from repro.temporal.intervalsets import IntervalSet

_STARTS = perf.counter("temporalvalue.starts")


class TemporalValue:
    """A partial function from TIME, stored as ``<interval, value>`` pairs."""

    __slots__ = ("_pairs", "_coalesce", "_starts_cache")

    def __init__(
        self,
        pairs: Iterable[tuple[Interval, Any]] = (),
        coalesce: bool = True,
    ) -> None:
        self._coalesce = coalesce
        self._pairs: list[list[Any]] = []  # [start, end(int|Now), value]
        # Cached [pair[0] for pair in _pairs]; None when not materialized.
        # Mutations keep it in sync (or drop it) unconditionally, so the
        # ablation switch only affects whether reads consult it.
        self._starts_cache: list[int] | None = None
        for interval, value in pairs:
            self.put(interval, value)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def constant(cls, value: Any, interval: Interval) -> "TemporalValue":
        """A constant function over *interval* (immutable attributes)."""
        return cls([(interval, value)])

    @classmethod
    def from_items(
        cls, items: Iterable[tuple[tuple[int, int | Now], Any]]
    ) -> "TemporalValue":
        """Build from ``((start, end), value)`` items."""
        return cls(
            (Interval(start, end), value) for (start, end), value in items
        )

    def copy(self) -> "TemporalValue":
        """An independent copy (pair values are shared, not deep-copied)."""
        clone = TemporalValue(coalesce=self._coalesce)
        clone._pairs = [list(pair) for pair in self._pairs]
        return clone

    # -- internal helpers -------------------------------------------------------

    def _tail(self) -> list[list[Any]]:
        """The mutable hot suffix of the pair list.

        For a plain value this is the whole list.  The segment-backed
        subclass (:class:`repro.database.segments.SegmentedTemporalValue`)
        overrides it to expose only the resident tail, so the hot-path
        methods routed through here (``_locate``/``at``/``get``/
        ``assign``/``close``) never fault cold pages in.
        """
        return self._pairs

    def _starts(self) -> list[int]:
        """The sorted start keys of the hot tail, maintained
        incrementally across mutations so :meth:`_locate` costs one
        bisect, not a rebuild."""
        if not perf.is_enabled:
            return [pair[0] for pair in self._tail()]
        cache = self._starts_cache
        if cache is None:
            cache = [pair[0] for pair in self._tail()]
            self._starts_cache = cache
            _STARTS.miss()
        else:
            _STARTS.hit()
        return cache

    def _starts_append(self, start: int) -> None:
        if self._starts_cache is not None:
            self._starts_cache.append(start)

    def _starts_insert(self, idx: int, start: int) -> None:
        if self._starts_cache is not None:
            self._starts_cache.insert(idx, start)

    def _starts_delete(self, idx: int) -> None:
        if self._starts_cache is not None:
            del self._starts_cache[idx]

    def _starts_invalidate(self) -> None:
        if self._starts_cache is not None:
            self._starts_cache = None
            _STARTS.invalidate()

    def _locate(self, t: int) -> int | None:
        """Index of the pair whose interval contains *t*, if any.

        A moving (``now``-ended) pair is taken to contain every instant
        from its start onwards; the engine's clock discipline guarantees
        it is only ever queried at instants up to the current time.
        """
        idx = bisect_right(self._starts(), t) - 1
        if idx < 0:
            return None
        start, end, _value = self._tail()[idx]
        if isinstance(end, Now):
            return idx if t >= start else None
        return idx if start <= t <= end else None

    def _open_index(self) -> int | None:
        """Index of the moving pair, if present (always the last pair)."""
        pairs = self._tail()
        if pairs and isinstance(pairs[-1][1], Now):
            return len(pairs) - 1
        return None

    # -- queries ---------------------------------------------------------------

    def defined_at(self, t: int) -> bool:
        """True iff the function is defined at instant *t*."""
        validate_instant(t)
        return self._locate(t) is not None

    def at(self, t: int) -> Any:
        """The value of the function at instant *t*.

        Raises :class:`UndefinedAtError` if *t* is outside the domain.
        """
        validate_instant(t)
        idx = self._locate(t)
        if idx is None:
            raise UndefinedAtError(f"temporal value undefined at instant {t}")
        return self._tail()[idx][2]

    def get(self, t: int, default: Any = None) -> Any:
        """The value at *t*, or *default* when undefined."""
        validate_instant(t)
        idx = self._locate(t)
        return default if idx is None else self._tail()[idx][2]

    def __call__(self, t: int) -> Any:
        return self.at(t)

    def domain(self, now: int | None = None) -> IntervalSet:
        """The set of instants at which the function is defined.

        *now* is needed only when the value has an open pair.
        """
        return IntervalSet(
            (Interval(start, end) for start, end, _ in self._pairs), now=now
        )

    def pairs(self) -> tuple[tuple[Interval, Any], ...]:
        """The raw ``(interval, value)`` pairs (moving last pair intact)."""
        return tuple(
            (Interval(start, end), value) for start, end, value in self._pairs
        )

    def resolved_pairs(self, now: int) -> tuple[tuple[Interval, Any], ...]:
        """Pairs with the open interval resolved against *now*."""
        result = []
        for start, end, value in self._pairs:
            interval = Interval(start, end).resolve(now)
            if not interval.is_empty:
                result.append((interval, value))
        return tuple(result)

    def values(self) -> Iterator[Any]:
        """Iterate over the values carried by the pairs, in time order."""
        return iter(pair[2] for pair in self._pairs)

    def is_empty(self) -> bool:
        """True iff the function is nowhere defined."""
        return not self._pairs

    def has_open_pair(self) -> bool:
        """True iff the last pair's interval is ``[t, now]``."""
        return self._open_index() is not None

    def first_instant(self) -> int:
        """The earliest instant of the domain."""
        if not self._pairs:
            raise UndefinedAtError("temporal value is nowhere defined")
        return self._pairs[0][0]

    def last_instant(self, now: int | None = None) -> int:
        """The latest instant of the domain (resolving an open pair)."""
        pairs = self._tail()
        if not pairs:
            raise UndefinedAtError("temporal value is nowhere defined")
        end = pairs[-1][1]
        if isinstance(end, Now):
            interval = Interval(pairs[-1][0], end).resolve(now)
            return interval.end  # type: ignore[return-value]
        return end

    def current(self, now: int) -> Any:
        """The value at the current time (``f(now)``)."""
        return self.at(now)

    def is_constant(self) -> bool:
        """True iff all pairs carry the same value (immutable attribute)."""
        pairs = iter(self._pairs)
        first = next(pairs, None)
        if first is None:
            return True
        head = first[2]
        return all(pair[2] == head for pair in pairs)

    def when(
        self, predicate: Callable[[Any], bool], now: int | None = None
    ) -> IntervalSet:
        """The set of instants at which ``predicate(f(t))`` holds."""
        hits = [
            Interval(start, end)
            for start, end, value in self._pairs
            if predicate(value)
        ]
        return IntervalSet(hits, now=now)

    # -- mutation ------------------------------------------------------------------

    def assign(self, t: int, value: Any) -> None:
        """Record that the value becomes *value* at instant *t*.

        The open pair (if any) is closed at ``t - 1`` and a new open pair
        ``<[t, now], value>`` begins, unless the current value already
        equals *value*, in which case the open pair simply keeps
        extending (coalescing).  Assigning strictly inside recorded
        history raises :class:`OverlappingHistoryError` -- retroactive
        corrections must use :meth:`put` with ``overwrite=True``.
        """
        validate_instant(t)
        pairs = self._tail()
        open_idx = self._open_index()
        if open_idx is not None:
            start = pairs[open_idx][0]
            if t < start:
                raise OverlappingHistoryError(
                    f"assign at {t} predates the open pair starting at "
                    f"{start}; use put(..., overwrite=True) for "
                    "retroactive corrections"
                )
            if self._coalesce and pairs[open_idx][2] == value:
                return
            if t == start:
                pairs[open_idx][2] = value
                self._maybe_merge_backward(open_idx)
                return
            pairs[open_idx][1] = t - 1
        elif pairs:
            last_end = pairs[-1][1]
            if t <= last_end:
                raise OverlappingHistoryError(
                    f"assign at {t} overlaps recorded history ending at "
                    f"{last_end}; use put(..., overwrite=True)"
                )
        pairs.append([t, NOW, value])
        self._starts_append(t)
        self._maybe_merge_backward(len(pairs) - 1)

    def close(self, t: int) -> None:
        """Close the open pair so the function is undefined after *t*.

        If the open pair starts at ``t + 1`` or later it never held and
        is removed entirely.  A no-op when there is no open pair.
        ``t = -1`` is accepted as "before the beginning of time" (an
        open pair starting at 0 gets removed).
        """
        if t != -1:
            validate_instant(t)
        pairs = self._tail()
        open_idx = self._open_index()
        if open_idx is None:
            return
        start = pairs[open_idx][0]
        if t < start:
            del pairs[open_idx]
            self._starts_delete(open_idx)
        else:
            pairs[open_idx][1] = t

    def put(
        self,
        interval: Interval,
        value: Any,
        overwrite: bool = False,
        now: int | None = None,
    ) -> None:
        """Insert ``<interval, value>`` anywhere in the history.

        A moving interval may be inserted only if nothing is recorded at
        or after its start.  With ``overwrite=False`` (default) any
        overlap with existing pairs raises
        :class:`OverlappingHistoryError`; with ``overwrite=True`` the
        overlapping stretches of existing pairs are carved away first.
        """
        if interval.is_empty:
            return
        start = interval.start
        end = interval.end
        if isinstance(end, Now):
            open_idx = self._open_index()
            conflict = self._pairs and not (
                isinstance(self._pairs[-1][1], int)
                and self._pairs[-1][1] < start
            )
            if conflict:
                if not overwrite:
                    raise OverlappingHistoryError(
                        f"open pair starting at {start} overlaps history"
                    )
                # Truncate everything at or after `start`.
                self._carve(Interval(start, NOW), now)
            if open_idx is not None and self._open_index() is not None:
                raise OverlappingHistoryError(
                    "a temporal value admits a single open pair"
                )
            self._pairs.append([start, NOW, value])
            self._starts_append(start)
            self._maybe_merge_backward(len(self._pairs) - 1)
            return

        overlapping = self._overlapping_indexes(start, end, now)
        if overlapping:
            if not overwrite:
                raise OverlappingHistoryError(
                    f"interval {interval} overlaps recorded history"
                )
            self._carve(interval, now)
        idx = bisect_right(self._starts(), start)
        self._pairs.insert(idx, [start, end, value])
        self._starts_insert(idx, start)
        self._maybe_merge_backward(idx + 1 if idx + 1 < len(self._pairs) else idx)
        self._maybe_merge_backward(idx)

    def restrict(self, allowed: IntervalSet, now: int | None = None) -> "TemporalValue":
        """The restriction of the function to ``domain & allowed``."""
        result = TemporalValue(coalesce=self._coalesce)
        for start, end, value in self._pairs:
            interval = Interval(start, end).resolve(now)
            if interval.is_empty:
                continue
            piece_set = IntervalSet([interval]) & allowed
            for piece in piece_set.intervals:
                result.put(piece, value)
        return result

    def map(self, fn: Callable[[Any], Any]) -> "TemporalValue":
        """Apply *fn* to every carried value, preserving the domain."""
        result = TemporalValue(coalesce=self._coalesce)
        for start, end, value in self._pairs:
            result._pairs.append([start, end, fn(value)])
        return result

    def combine(
        self,
        other: "TemporalValue",
        fn: Callable[[Any, Any], Any],
        now: int | None = None,
    ) -> "TemporalValue":
        """The pairwise temporal join: ``h(t) = fn(f(t), g(t))``.

        Defined exactly on the intersection of the two domains; the
        result is computed once per overlapping segment (both inputs
        are piecewise constant).  *now* resolves open pairs; the result
        is fully concrete.
        """
        result = TemporalValue(coalesce=self._coalesce)
        if now is None and (self.has_open_pair() or other.has_open_pair()):
            raise UnresolvedNowError(
                "combine over open pairs needs now="
            )
        mine = (
            self.resolved_pairs(now) if now is not None else self.pairs()
        )
        theirs = (
            other.resolved_pairs(now) if now is not None else other.pairs()
        )
        for interval_a, value_a in mine:
            for interval_b, value_b in theirs:
                overlap = interval_a.intersect(interval_b, now)
                if not overlap.is_empty:
                    result.put(overlap, fn(value_a, value_b))
        return result

    def coalesced(self) -> "TemporalValue":
        """A copy with adjacent equal-valued pairs merged."""
        result = TemporalValue(coalesce=True)
        for start, end, value in self._pairs:
            result._pairs.append([start, end, value])
            result._maybe_merge_backward(len(result._pairs) - 1)
        return result

    # -- mutation internals ------------------------------------------------------

    def _overlapping_indexes(
        self, start: int, end: int, now: int | None
    ) -> list[int]:
        probe = Interval(start, end)
        hits = []
        for idx, (s, e, _v) in enumerate(self._pairs):
            existing = Interval(s, e)
            if isinstance(e, Now):
                # An open pair overlaps anything at or after its start.
                if end >= s:
                    hits.append(idx)
            elif probe.overlaps(existing, now):
                hits.append(idx)
        return hits

    def _carve(self, interval: Interval, now: int | None) -> None:
        """Remove *interval* from the domain, splitting pairs as needed."""
        start = interval.start
        end = interval.end
        new_pairs: list[list[Any]] = []
        for s, e, v in self._pairs:
            if isinstance(end, Now):
                # Carving [start, now]: keep only the part before start.
                if isinstance(e, Now):
                    if s < start:
                        new_pairs.append([s, start - 1, v])
                elif e < start:
                    new_pairs.append([s, e, v])
                elif s < start:
                    new_pairs.append([s, start - 1, v])
                continue
            if isinstance(e, Now):
                # Existing open pair vs a concrete carve interval.
                if s > end:
                    new_pairs.append([s, e, v])
                    continue
                if s < start:
                    new_pairs.append([s, start - 1, v])
                new_pairs.append([end + 1, e, v])
                continue
            existing = Interval(s, e)
            for piece in existing.difference(Interval(start, end), now):
                new_pairs.append([piece.start, piece.end, v])
        # Drop degenerate open pairs like [end+1, now] when end+1 > now.
        self._pairs = [
            p
            for p in new_pairs
            if isinstance(p[1], Now) or p[0] <= p[1]
        ]
        self._pairs.sort(key=lambda p: p[0])
        self._starts_invalidate()

    def _maybe_merge_backward(self, idx: int) -> None:
        """Coalesce tail pair *idx* into its predecessor when legal.

        Indices are relative to :meth:`_tail`; ``idx <= 0`` never
        merges, so a segment-backed value cannot coalesce its first
        hot pair into cold (immutable) history.
        """
        pairs = self._tail()
        if not self._coalesce or idx <= 0 or idx >= len(pairs):
            return
        prev, curr = pairs[idx - 1], pairs[idx]
        prev_end = prev[1]
        if isinstance(prev_end, Now):
            return
        if prev_end + 1 == curr[0] and prev[2] == curr[2]:
            prev[1] = curr[1]
            del pairs[idx]
            self._starts_delete(idx)

    # -- comparison -----------------------------------------------------------------

    def equals_at(self, other: "TemporalValue", now: int) -> bool:
        """Extensional equality of the two functions, read at time *now*."""
        return self.resolved_pairs(now) == other.resolved_pairs(now)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalValue):
            return NotImplemented
        mine = self.coalesced()._pairs if not self._coalesce else self._pairs
        theirs = (
            other.coalesced()._pairs if not other._coalesce else other._pairs
        )
        return mine == theirs

    def __hash__(self) -> int:
        canon = self if self._coalesce else self.coalesced()
        return hash(
            tuple(
                (start, end if not isinstance(end, Now) else NOW, _hashable(v))
                for start, end, v in canon._pairs
            )
        )

    def __len__(self) -> int:
        """The number of stored pairs."""
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[Interval, Any]]:
        return iter(self.pairs())

    def __repr__(self) -> str:
        body = ", ".join(
            f"<[{start},{end!r}],{value!r}>" for start, end, value in self._pairs
        )
        return "{" + body + "}"


def _hashable(value: Any) -> Any:
    """Best-effort hashable projection of a carried value."""
    if isinstance(value, (set, frozenset)):
        return frozenset(_hashable(v) for v in value)
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value
