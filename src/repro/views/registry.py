"""Named views attached to a database."""

from __future__ import annotations

from repro.errors import QueryError
from repro.query.ast import Expr
from repro.views.view import TemporalView


class ViewRegistry:
    """A catalogue of named temporal views over one database.

    Views are virtual: the registry stores the definitions, the data
    stays in the engine, so views can never drift out of date.
    """

    def __init__(self, db) -> None:
        self._db = db
        self._views: dict[str, TemporalView] = {}

    def define(
        self,
        name: str,
        base_class: str,
        predicate: Expr | None = None,
    ) -> TemporalView:
        """Define (and return) a named view; names are unique."""
        if name in self._views:
            raise QueryError(f"view {name!r} already defined")
        if self._db.known_class(name):
            raise QueryError(
                f"view name {name!r} collides with a class name"
            )
        view = TemporalView(self._db, base_class, predicate, name)
        self._views[name] = view
        return view

    def define_composed(self, name: str, view: TemporalView) -> TemporalView:
        """Register an already-composed view under a name."""
        if name in self._views:
            raise QueryError(f"view {name!r} already defined")
        view.name = name
        self._views[name] = view
        return view

    def get(self, name: str) -> TemporalView:
        try:
            return self._views[name]
        except KeyError:
            raise QueryError(f"no view named {name!r}") from None

    def drop(self, name: str) -> None:
        self.get(name)
        del self._views[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self._views)

    def __contains__(self, name: object) -> bool:
        return name in self._views

    def __len__(self) -> int:
        return len(self._views)
