"""Views: intensionally defined temporal extents.

Chimera "provides capabilities for defining deductive rules, that can
be used to define views" (paper, Section 2).  T_Chimera's temporal
setting makes a view's extent a *function of time*, like a class
extent: the view ``rich = employee where salary >= 2000`` has, at every
instant t, the extent ``{ i in pi(employee, t) | pred holds of i at t }``.

:class:`TemporalView` wraps a base class and a query-language predicate
and exposes the class-extent vocabulary: ``extent(t)`` (the
π-analogue), ``membership_times(oid)`` (the m_lifespan-analogue,
computed exactly via ``when``), ``ever_members()``; plus set-algebra
composition (union/intersection/difference of views over the same
hierarchy).  Views are virtual -- nothing is materialized, so they are
always consistent with the data; :class:`repro.views.registry.
ViewRegistry` attaches named views to a database.
"""

from repro.views.view import TemporalView
from repro.views.registry import ViewRegistry

__all__ = ["TemporalView", "ViewRegistry"]
