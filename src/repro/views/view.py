"""Temporal views over class extents."""

from __future__ import annotations

from typing import Callable

from repro.errors import QueryError
from repro.query.ast import Expr
from repro.query.evaluator import _eval_at, evaluate_when
from repro.query.typing import type_check
from repro.query.ast import Query, TemporalScope
from repro.temporal.intervalsets import IntervalSet
from repro.values.oid import OID


class TemporalView:
    """An intensional extent: base class + predicate (+ composition).

    The membership function is

        member(i, t)  iff  i in pi(base, t)  and  pred(i, t)

    evaluated with the query language's semantics (null-rejecting
    atoms, static attributes visible only at ``now``).
    """

    def __init__(
        self,
        db,
        base_class: str,
        predicate: Expr | None = None,
        name: str = "",
    ) -> None:
        self._db = db
        self.base_class = base_class
        self.predicate = predicate
        self.name = name or f"view-of-{base_class}"
        # Fail fast on ill-typed predicates.
        if predicate is not None:
            type_check(
                Query(base_class, predicate, TemporalScope.NOW),
                db.get_class(base_class),
                db,
            )

    # -- the class-extent vocabulary ------------------------------------------

    def extent(self, t: int) -> frozenset[OID]:
        """The view's extent at instant *t* (the pi-analogue)."""
        hits = set()
        for oid in self._db.pi(self.base_class, t):
            if self._member_at(oid, t):
                hits.add(oid)
        return frozenset(hits)

    def membership_times(self, oid: OID) -> IntervalSet:
        """The instants at which *oid* belongs to the view (exact,
        via segment-wise when-evaluation)."""
        db = self._db
        base_times = db.membership_times(self.base_class, oid)
        if base_times.is_empty:
            return IntervalSet.empty()
        if self.predicate is None:
            return base_times
        obj = db.get_object(oid)
        holds = evaluate_when(db, obj, self.predicate, db.now)
        return base_times & holds

    def ever_members(self) -> frozenset[OID]:
        """Every oid that belongs to the view at some instant."""
        cls = self._db.get_class(self.base_class)
        return frozenset(
            oid
            for oid in cls.history.ever_members()
            if not self.membership_times(oid).is_empty
        )

    def _member_at(self, oid: OID, t: int) -> bool:
        if self.predicate is None:
            return True
        obj = self._db.get_object(oid)
        return _eval_at(self._db, obj, self.predicate, t, self._db.now) is (
            True
        )

    # -- composition -----------------------------------------------------------

    def _combine(
        self,
        other: "TemporalView",
        op: Callable[[IntervalSet, IntervalSet], IntervalSet],
        tag: str,
    ) -> "TemporalView":
        if not isinstance(other, TemporalView):
            raise QueryError("views compose with views")
        if self._db is not other._db:
            raise QueryError("views must live in the same database")
        return _ComposedView(
            self._db, self, other, op, f"({self.name} {tag} {other.name})"
        )

    def __and__(self, other: "TemporalView") -> "TemporalView":
        return self._combine(other, lambda a, b: a & b, "and")

    def __or__(self, other: "TemporalView") -> "TemporalView":
        return self._combine(other, lambda a, b: a | b, "or")

    def __sub__(self, other: "TemporalView") -> "TemporalView":
        return self._combine(other, lambda a, b: a - b, "minus")

    def __repr__(self) -> str:
        return f"TemporalView({self.name!r}, base={self.base_class!r})"


class _ComposedView(TemporalView):
    """Set-algebra composition of two views."""

    def __init__(self, db, left, right, op, name) -> None:
        self._db = db
        self._left = left
        self._right = right
        self._op = op
        self.name = name
        self.base_class = left.base_class
        self.predicate = None

    def extent(self, t: int) -> frozenset[OID]:
        candidates = self._left.extent(t) | self._right.extent(t)
        return frozenset(
            oid for oid in candidates if t in self.membership_times(oid)
        )

    def membership_times(self, oid: OID) -> IntervalSet:
        return self._op(
            self._left.membership_times(oid),
            self._right.membership_times(oid),
        )

    def ever_members(self) -> frozenset[OID]:
        candidates = self._left.ever_members() | self._right.ever_members()
        return frozenset(
            oid
            for oid in candidates
            if not self.membership_times(oid).is_empty
        )
