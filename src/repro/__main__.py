"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables``            -- print the reproduced Tables 1-3;
* ``demo``              -- run the paper's project example end-to-end;
* ``check  FILE.json``  -- load a persisted database and run the full
  integrity suite (exit code 1 on violations);
* ``describe FILE.json [--class NAME | --object SERIAL]`` -- print a
  database summary, or one class/object in the paper's notation;
* ``query FILE.json "select ..."`` -- run a query against a persisted
  database;
* ``explain FILE.json "select ..."`` -- show the planner's chosen
  access path (index probes, residual conjuncts, cost estimates) and
  the estimated vs. actual cardinalities; ``--no-exec`` plans without
  running;
* ``perf [FILE.json]`` -- exercise the hot-path caches (on a saved
  database, or a synthetic workload when no file is given) and print
  the hit/miss/invalidation counters;
* ``stats [FILE.json] [--json | --prom]`` -- run the seeded workload
  (or exercise a saved database) with tracing on and print the merged
  perf counters + span latency histograms + slow-op log as a human
  table, JSON, or Prometheus text exposition format;
* ``trace [--top N] [--json] <command> [args...]`` -- run any other
  subcommand with tracing forced on and print the N slowest span
  trees (``repro trace query db.json "select ..."``);
* ``recover DIR [--json]`` -- rebuild a journaled database from its
  durability directory (checkpoint + write-ahead journal) and print the
  recovery report; exit 0 when a database was produced (even off a
  salvaged corrupt tail), 1 on unrecoverable loss;
* ``checkpoint DIR`` -- open a journaled database, write a fresh
  atomic checkpoint, and truncate the journal;
* ``replicate DIR REPLICA...`` -- ship the primary directory's
  committed journal tail into one or more replica directories (each a
  self-contained durability directory: bootstrap checkpoint + archived
  frames) and print per-replica applied LSN and lag;
* ``restore DIR (--lsn N | --tick T) [-o FILE.json]`` -- point-in-time
  recovery: rebuild the database as of a journal position or a clock
  tick, optionally writing the restored state as a persistence JSON
  file usable with ``check``/``describe``/``query``;
* ``asof DIR --lsn N [--query "select ..."] [-o FILE.json] [--json]``
  -- transaction-time read: open the journaled database and answer
  from the state believed at commit LSN N (``docs/bitemporal.md``);
  with ``--query``, run any valid-time query against that believed
  state (bitemporal audit: "what did we believe at N about vt?"),
  otherwise print a summary of the believed state;
* ``serve DIR [--host H] [--port P] [--max-sessions N]
  [--queue-depth N] [--read-workers N] [--no-mvcc]`` -- serve the
  journaled database over the newline-JSON socket protocol with MVCC
  snapshot reads and cross-session group commit (docs/server.md);
  prints ``listening on HOST:PORT`` once bound and drains gracefully
  on SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _load(path: str):
    from repro.database.persistence import database_from_json

    return database_from_json(Path(path).read_text())


def cmd_tables(_args) -> int:
    from repro.model_functions import TABLE_3
    from repro.survey.tables import render_table1, render_table2

    print(render_table1())
    print()
    print(render_table2())
    print()
    print("Table 3: Functions employed in defining the model")
    for row in TABLE_3:
        print(f"  {row.name:<12} {row.signature:<28} {row.description}")
    return 0


def cmd_demo(_args) -> int:
    import runpy

    example = (
        Path(__file__).resolve().parent.parent.parent
        / "examples"
        / "research_projects.py"
    )
    if example.exists():
        runpy.run_path(str(example), run_name="__main__")
        return 0
    print("examples/research_projects.py not found", file=sys.stderr)
    return 1


def cmd_check(args) -> int:
    from repro.database import parallel
    from repro.database.integrity import check_database

    db = _load(args.file)
    try:
        if args.serial:
            with parallel.disabled():
                report = check_database(db)
        else:
            report = check_database(db)
    finally:
        parallel.shutdown(db)
    if report.ok:
        print(
            f"OK: {len(db)} objects, {len(tuple(db.classes()))} classes, "
            f"now={db.now}; every invariant holds"
        )
        return 0
    print(f"VIOLATIONS ({len(report.all_violations())}):")
    for violation in report.all_violations():
        print(f"  {violation}")
    return 1


def cmd_describe(args) -> int:
    from repro.tools import (
        describe_class,
        describe_database,
        describe_object,
    )
    from repro.values.oid import OID

    db = _load(args.file)
    if args.class_name:
        print(describe_class(db, args.class_name))
    elif args.object is not None:
        matches = [
            obj.oid for obj in db.objects()
            if obj.oid.serial == args.object
        ]
        if not matches:
            print(f"no object with serial {args.object}", file=sys.stderr)
            return 1
        print(describe_object(db, matches[0]))
    else:
        print(describe_database(db))
    return 0


def cmd_query(args) -> int:
    from repro.query import evaluate, parse_query

    db = _load(args.file)
    hits = evaluate(db, parse_query(args.query))
    for oid in hits:
        print(oid)
    print(f"-- {len(hits)} result(s) at now={db.now}")
    return 0


def cmd_explain(args) -> int:
    from repro.query import explain, parse_query

    db = _load(args.file)
    plan = explain(
        db, parse_query(args.query), execute_query=not args.no_exec
    )
    if args.json:
        import json

        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
    else:
        print(plan.render())
    return 0


def _synthetic_database(directory: str | None = None):
    """The seeded synthetic workload database behind ``perf``/``stats``.

    With *directory*, the database is journaled there (so the WAL and
    checkpoint boundaries get exercised too); without, it is a plain
    in-memory build.
    """
    if directory is not None:
        from repro.database.recovery import open_database

        db, _report = open_database(directory)
    else:
        from repro.database.database import TemporalDatabase

        db = TemporalDatabase()
    db.define_class("base", attributes=[("score", "temporal(integer)")])
    db.define_class("derived", parents=["base"])
    oids = [db.create_object("derived", {"score": i}) for i in range(64)]
    for step in range(40):
        db.tick()
        for oid in oids[:: max(step % 7, 1)]:
            db.update_attribute(oid, "score", step)
    return db


def _exercise(db) -> None:
    """Touch every hot read path: batch, extents, snapshots,
    membership, subtyping, and -- when the schema has a queryable
    temporal attribute -- the planner/evaluator."""
    from repro.errors import TChimeraError
    from repro.temporal.temporalvalue import TemporalValue
    from repro.types.grammar import ObjectType
    from repro.types.subtyping import is_subtype

    db.tick()
    # One bulk batch so the batch.* metrics (group commit + deferred
    # maintenance) report alongside the cache counters.
    with db.batch():
        for obj in list(db.live_objects()):
            for name, value in obj.value.items():
                if not isinstance(value, TemporalValue):
                    continue
                current = value.get(db.now, None)
                if current is None:
                    continue
                try:
                    db.update_attribute(obj.oid, name, current)
                except TChimeraError:
                    continue  # e.g. write-once attribute; skip
                break
    classes = [cls.name for cls in db.classes()]
    instants = range(0, db.now + 1, max(db.now // 20, 1))
    for _round in range(3):  # repeat so steady-state hit rates show
        for name in classes:
            for t in instants:
                db.anchor_extent(name, t)
        for obj in db.objects():
            if obj.alive_at(db.now, db.now):
                db.snapshot_at(obj.oid)
            for name in classes:
                db.membership_times(name, obj.oid)
        for sub in classes:
            for sup in classes:
                is_subtype(ObjectType(sub), ObjectType(sup), db.isa)
    # One database-wide constraint check (each class's first temporal
    # attribute must be meaningful over the membership span) so
    # constraint.check reports alongside the other span kinds.
    from repro.constraints.constraints import AlwaysMeaningful, ConstraintSet

    constraint_set = ConstraintSet()
    for name in classes:
        for oid in db.anchor_extent(name, db.now):
            obj = db.get_object(oid)
            attr_name = next(
                (
                    attr
                    for attr, value in obj.value.items()
                    if isinstance(value, TemporalValue)
                ),
                None,
            )
            if attr_name is not None:
                constraint_set.add(AlwaysMeaningful(name, attr_name))
            break
    constraint_set.check(db)


def _exercise_queries(db) -> None:
    """Run a few planner-routed queries over the synthetic schema."""
    from repro.query import evaluate, parse_query

    for text in (
        "select derived where score > 20",
        "select base where score > 30 sometime",
        "select derived where score >= 0 always",
    ):
        evaluate(db, parse_query(text))


def cmd_perf(args) -> int:
    from repro import perf

    if args.file:
        db = _load(args.file)
    else:
        db = _synthetic_database()
    perf.reset_stats()
    _exercise(db)
    print(perf.format_stats())
    return 0


def cmd_stats(args) -> int:
    import json
    import tempfile

    from repro import obs, perf

    perf.reset_stats()
    obs.reset()
    if args.slow_us is not None:
        obs.set_slow_threshold_us(args.slow_us)
    if args.file:
        db = _load(args.file)
        _exercise(db)
    else:
        # Seeded workload in a journaled temp directory: exercises
        # every instrumented boundary (WAL append/fsync/checkpoint,
        # batch flush, extents/snapshots, planner, recovery replay).
        from repro.database.recovery import recover

        with tempfile.TemporaryDirectory() as directory:
            db = _synthetic_database(directory)
            _exercise(db)
            _exercise_queries(db)
            # One at-head and one historical transaction-time read so
            # the bitemporal gauges and the bitemporal.reconstruct
            # span report alongside the rest.
            from repro.query import evaluate, parse_query

            head = db.journal.last_lsn
            for lsn in (head, max(1, head // 2)):
                evaluate(
                    db,
                    parse_query(f"select base where score > 20 as of {lsn}"),
                )
            recover(directory)  # read-only: replays the whole journal
            db.checkpoint()
    if args.json:
        print(json.dumps(obs.stats_dict(), indent=2, sort_keys=True))
    elif args.prom:
        print(obs.prom_text(), end="")
    else:
        from repro.database import pagecache

        cache = pagecache.stats()
        print(obs.format_stats())
        print(
            f"page cache: {cache['pages']} page(s), "
            f"{cache['resident_bytes']}/{cache['budget_bytes']} bytes, "
            f"hit rate {cache['hit_rate']:.2%} "
            f"({cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['evictions']} evictions)"
        )
    return 0


def cmd_trace(args) -> int:
    import json

    from repro import obs

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print(
            "usage: repro trace [--top N] [--json] <command> [args...]",
            file=sys.stderr,
        )
        return 2
    if rest[0] == "trace":
        print("refusing to trace 'trace'", file=sys.stderr)
        return 2
    inner = build_parser().parse_args(rest)
    collector = obs.TopK(args.top)
    previous = obs.set_enabled(True)
    obs.add_sink(collector.offer)
    try:
        code = _HANDLERS[inner.command](inner)
    finally:
        obs.remove_sink(collector.offer)
        obs.set_enabled(previous)
    trees = collector.slowest()
    if args.json:
        print(json.dumps(trees, indent=2, sort_keys=True))
        return code
    print()
    print(f"-- {len(trees)} slowest span tree(s) of `repro {' '.join(rest)}`:")
    for tree in trees:
        print(obs.render_span_tree(tree))
        print()
    return code


def cmd_recover(args) -> int:
    import json

    from repro.database.recovery import recover

    db, report = recover(args.directory)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if db is None:
        return 1
    if args.verify:
        from repro.database.integrity import check_database

        integrity = check_database(db)
        if not integrity.ok:
            print("recovered database FAILS integrity:")
            for violation in integrity.all_violations():
                print(f"  {violation}")
            return 1
        print("recovered database passes the full integrity suite")
    return 0


def cmd_checkpoint(args) -> int:
    from repro.database.recovery import open_database

    db, report = open_database(args.directory)
    if report.salvaged_tail or report.records_dropped_uncommitted:
        print(report.render())
    path = db.checkpoint()
    print(
        f"checkpoint written: {path} "
        f"(now={db.now}, {len(db)} object(s))"
    )
    return 0


def cmd_compact(args) -> int:
    from repro import perf
    from repro.database import segments
    from repro.database.recovery import open_database

    if not segments.is_enabled:
        print(
            "cold-segment tier is disabled (REPRO_NO_SEGMENTS); "
            "nothing to compact",
            file=sys.stderr,
        )
        return 1
    db, report = open_database(args.directory)
    if report.salvaged_tail or report.records_dropped_uncommitted:
        print(report.render())
    before = db.segment_values
    path = db.checkpoint()
    spilled_bytes = perf.metric("segment.spilled_bytes").count
    print(
        f"checkpoint written: {path} "
        f"(now={db.now}, {len(db)} object(s))"
    )
    print(
        f"cold tier: {db.segment_values} segmented value(s) "
        f"(was {before}), {spilled_bytes} byte(s) spilled this run"
    )
    return 0


def cmd_replicate(args) -> int:
    from repro.errors import ReplicationError
    from repro.replication import LogShipper, Replica

    shipper = LogShipper(args.directory)
    for index, directory in enumerate(args.replica):
        shipper.attach(Replica(f"replica{index}", directory=directory))
    try:
        applied = shipper.sync_all()
    except ReplicationError as exc:
        print(f"replication failed: {exc}", file=sys.stderr)
        return 1
    head = shipper.committed_lsn()
    print(f"primary {args.directory}: committed head lsn {head}")
    for replica in shipper.replicas:
        print(
            f"  {replica.directory}: applied lsn {replica.applied_lsn} "
            f"(lag {shipper.lag(replica)}), "
            f"{applied[replica.name]} frame(s) shipped this run, "
            f"now={replica.applied_tick}"
        )
    return 0


def cmd_restore(args) -> int:
    import json

    from repro.database.persistence import database_to_json
    from repro.errors import ReplicationError
    from repro.replication import restore_to

    try:
        db, report = restore_to(
            args.directory, lsn=args.lsn, tick=args.tick
        )
    except ReplicationError as exc:
        print(f"restore failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        target = (
            f"lsn {args.lsn}" if args.lsn is not None
            else f"tick {args.tick}"
        )
        print(
            f"restored {args.directory} to {target}: now={db.now}, "
            f"{len(db)} object(s), "
            f"{len(tuple(db.classes()))} class(es), "
            f"last lsn {report.last_lsn}"
        )
    if args.output:
        Path(args.output).write_text(database_to_json(db))
        print(f"restored state written to {args.output}")
    return 0


def cmd_asof(args) -> int:
    import json

    from repro.bitemporal import asof as asof_mod
    from repro.database.persistence import database_to_json
    from repro.database.recovery import open_database
    from repro.errors import BitemporalError

    db, _report = open_database(args.directory)
    head = db.journal.last_lsn
    try:
        believed = asof_mod.as_of(db, args.lsn)
    except BitemporalError as exc:
        print(f"asof failed: {exc}", file=sys.stderr)
        return 1
    if args.query:
        from dataclasses import replace

        from repro.query import evaluate, parse_query

        # The believed state is already pinned; strip any in-text pin.
        query = replace(parse_query(args.query), as_of=None)
        hits = evaluate(believed, query)
        for oid in hits:
            print(oid)
        print(
            f"-- {len(hits)} result(s) as of lsn {args.lsn} "
            f"(believed now={believed.now}, head lsn {head})"
        )
    elif args.json:
        print(json.dumps({
            "directory": args.directory,
            "lsn": args.lsn,
            "head_lsn": head,
            "at_head": believed is db,
            "now": believed.now,
            "objects": len(believed),
            "classes": len(tuple(believed.classes())),
        }, indent=2, sort_keys=True))
    else:
        where = "the live head" if believed is db else "a reconstruction"
        print(
            f"{args.directory} as of lsn {args.lsn} ({where}; head "
            f"lsn {head}): now={believed.now}, {len(believed)} "
            f"object(s), {len(tuple(believed.classes()))} class(es)"
        )
    if args.output:
        Path(args.output).write_text(database_to_json(believed))
        print(f"believed state written to {args.output}")
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.database.recovery import open_database
    from repro.server import TemporalServer

    db, report = open_database(args.directory, sync=args.sync)
    if report.records_applied:
        print(
            f"recovered {report.records_applied} journal record(s)",
            file=sys.stderr,
        )

    async def _run() -> int:
        server = TemporalServer(
            db,
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            queue_depth=args.queue_depth,
            read_workers=args.read_workers,
            use_mvcc=not args.no_mvcc,
            drain_timeout=args.drain_timeout,
        )
        host, port = await server.start()
        # The machine-readable line harnesses wait for (port 0 means
        # "pick one"; this is how they learn which).
        print(f"listening on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(signum, lambda *_: stop.set())
        serving = loop.create_task(server.serve_forever())
        await stop.wait()
        print("draining...", flush=True)
        await server.stop()
        serving.cancel()
        try:
            await serving
        except asyncio.CancelledError:
            pass
        return 0

    return asyncio.run(_run())


def build_parser() -> argparse.ArgumentParser:
    """The CLI parser (exposed so tools/check_docs_drift.py can
    enumerate the real subcommand registry)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="T_Chimera: the EDBT 1996 temporal OO data model, "
        "executable",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print the reproduced Tables 1-3")
    sub.add_parser("demo", help="run the paper's project example")

    check = sub.add_parser("check", help="integrity-check a saved database")
    check.add_argument("file")
    check.add_argument(
        "--serial",
        action="store_true",
        help="skip the worker-pool fan-out (same checks, one process)",
    )

    describe = sub.add_parser(
        "describe", help="describe a saved database / class / object"
    )
    describe.add_argument("file")
    describe.add_argument("--class", dest="class_name", default=None)
    describe.add_argument("--object", type=int, default=None)

    query = sub.add_parser("query", help="query a saved database")
    query.add_argument("file")
    query.add_argument("query")

    explain_cmd = sub.add_parser(
        "explain", help="show the planner's access path for a query"
    )
    explain_cmd.add_argument("file")
    explain_cmd.add_argument("query")
    explain_cmd.add_argument(
        "--no-exec",
        action="store_true",
        help="plan only; skip execution (no actual cardinalities)",
    )
    explain_cmd.add_argument(
        "--json", action="store_true", help="machine-readable plan"
    )

    perf_cmd = sub.add_parser(
        "perf", help="exercise the hot-path caches and print counters"
    )
    perf_cmd.add_argument("file", nargs="?", default=None)

    stats_cmd = sub.add_parser(
        "stats",
        help="run the seeded workload with tracing on and print "
        "counters + span latency histograms + slow ops",
    )
    stats_cmd.add_argument("file", nargs="?", default=None)
    output = stats_cmd.add_mutually_exclusive_group()
    output.add_argument(
        "--json", action="store_true", help="machine-readable snapshot"
    )
    output.add_argument(
        "--prom",
        action="store_true",
        help="Prometheus text exposition format",
    )
    stats_cmd.add_argument(
        "--slow-us",
        type=int,
        default=None,
        help="slow-op capture threshold in microseconds "
        "(default: REPRO_SLOW_US or 10000)",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="run another subcommand with tracing forced on and print "
        "the N slowest span trees",
    )
    trace_cmd.add_argument(
        "--top", type=int, default=5, help="how many trees to keep"
    )
    trace_cmd.add_argument(
        "--json", action="store_true", help="machine-readable trees"
    )
    trace_cmd.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        metavar="command",
        help="any other repro subcommand with its arguments",
    )

    recover_cmd = sub.add_parser(
        "recover",
        help="rebuild a journaled database and print the recovery report",
    )
    recover_cmd.add_argument("directory")
    recover_cmd.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    recover_cmd.add_argument(
        "--verify",
        action="store_true",
        help="also run the full integrity suite on the recovered database",
    )

    checkpoint_cmd = sub.add_parser(
        "checkpoint",
        help="write an atomic checkpoint and truncate the journal",
    )
    checkpoint_cmd.add_argument("directory")

    compact_cmd = sub.add_parser(
        "compact",
        help="re-spill cold history into one fresh segment generation",
    )
    compact_cmd.add_argument("directory")

    replicate_cmd = sub.add_parser(
        "replicate",
        help="ship the committed journal tail into replica directories",
    )
    replicate_cmd.add_argument("directory", help="primary durability dir")
    replicate_cmd.add_argument(
        "replica", nargs="+", help="replica durability directories"
    )

    restore_cmd = sub.add_parser(
        "restore",
        help="point-in-time recovery to an LSN or a clock tick",
    )
    restore_cmd.add_argument("directory")
    target = restore_cmd.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--lsn", type=int, default=None, help="journal position target"
    )
    target.add_argument(
        "--tick", type=int, default=None, help="database clock target"
    )
    restore_cmd.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the restored state as a persistence JSON file",
    )
    restore_cmd.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    asof_cmd = sub.add_parser(
        "asof",
        help="read the state believed at a past transaction time "
        "(commit LSN)",
    )
    asof_cmd.add_argument("directory", help="durability directory")
    asof_cmd.add_argument(
        "--lsn",
        type=int,
        required=True,
        help="transaction time: the commit LSN to read as of",
    )
    asof_cmd.add_argument(
        "--query",
        default=None,
        help="valid-time query to run against the believed state",
    )
    asof_cmd.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the believed state as a persistence JSON file",
    )
    asof_cmd.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="serve a journaled database over the newline-JSON protocol",
    )
    serve_cmd.add_argument("directory", help="durability directory")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    serve_cmd.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="admission control: concurrent session cap",
    )
    serve_cmd.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="per-session pipelined-request queue bound",
    )
    serve_cmd.add_argument(
        "--read-workers",
        type=int,
        default=None,
        help="forked snapshot query workers (default: cores-1, max 4)",
    )
    serve_cmd.add_argument(
        "--no-mvcc",
        action="store_true",
        help="ablation: serialize reads on the writer lock",
    )
    serve_cmd.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="graceful-shutdown budget in seconds",
    )
    serve_cmd.add_argument(
        "--sync",
        default="always",
        choices=("always", "never"),
        help="journal fsync policy",
    )

    return parser


_HANDLERS = {
    "tables": cmd_tables,
    "demo": cmd_demo,
    "check": cmd_check,
    "describe": cmd_describe,
    "query": cmd_query,
    "explain": cmd_explain,
    "perf": cmd_perf,
    "stats": cmd_stats,
    "trace": cmd_trace,
    "recover": cmd_recover,
    "checkpoint": cmd_checkpoint,
    "compact": cmd_compact,
    "replicate": cmd_replicate,
    "restore": cmd_restore,
    "asof": cmd_asof,
    "serve": cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
