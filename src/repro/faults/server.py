"""Server crash trials: kill the process between commit and ack.

The serving layer's durability contract is *acked implies durable*:
a client that received an ``ok`` response for a write must find that
write after the server restarts, while a write whose acknowledgement
never arrived may land either way -- present (the crash hit between
the group-commit barrier and the socket write) or absent (the crash
hit before the barrier) -- but never torn.

:func:`run_server_trial` drives one deterministic experiment:

1. start a real ``repro serve`` subprocess on a fresh durability
   directory, with one of the crash knobs armed:
   ``REPRO_SERVER_CRASH_BEFORE_WRITES=k`` (die before applying the
   k-th write) or ``REPRO_SERVER_CRASH_AFTER_WRITES=k`` (die after
   the k-th write's durability barrier, before its ack);
2. run the shared fault-harness workload
   (:func:`repro.faults.harness._next_op`) over the wire, mirroring
   every *acknowledged* op into a local oracle database;
3. when the connection dies, assert the process exited through the
   armed crash point, recover the directory read-only, and compare it
   (Def. 5.10 equivalence, the harness's ``_compare``) against the
   acked oracle -- optionally extended by the one in-flight op;
4. restart the server on the same directory and verify a reconnecting
   client gets clean service: ping, a query, and -- when the in-flight
   op turned out lost -- a successful retry that converges the server
   onto the extended oracle.

``tests/test_server_faults.py`` sweeps seeds; CI runs the matrix at
``SERVER_FAULT_TRIALS=200``.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.database.database import TemporalDatabase
from repro.database.recovery import recover
from repro.errors import ServerError, TChimeraError
from repro.faults.harness import (
    _compare,
    _next_op,
    _note_applied,
    _schema_ops,
    _WorkloadState,
    apply_op,
)
from repro.server.client import ServerClient

#: Exit codes the armed crash points use (see server.py); anything
#: else means the process died some other way and the trial fails.
CRASH_BEFORE_EXIT = 42
CRASH_AFTER_EXIT = 43


@dataclass
class ServerTrialResult:
    """Outcome of one server crash trial."""

    seed: int
    crash_kind: str = ""
    crash_at: int = 0
    #: ops acknowledged over the wire before the crash.
    acked_ops: int = 0
    #: the op whose ack never arrived, if any.
    inflight: tuple | None = None
    #: True/False once recovery settled which way the in-flight op
    #: landed; None when there was no in-flight op.
    inflight_present: bool | None = None
    #: the in-flight op was retried on the restarted server.
    retried: bool = False
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def _spawn(directory: str, extra_env: dict | None = None):
    """Start ``repro serve`` on *directory*; returns (proc, host, port)."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_SERVER_CRASH_BEFORE_WRITES", None)
    env.pop("REPRO_SERVER_CRASH_AFTER_WRITES", None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            directory,
            "--port",
            "0",
            "--read-workers",
            "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise ServerError(
                    f"server died at startup (exit {proc.returncode})"
                )
            continue
        if line.startswith("listening on "):
            host, port = line.split()[-1].rsplit(":", 1)
            return proc, host, int(port)
    proc.kill()
    raise ServerError("server never printed its endpoint")


def _connect(host: str, port: int, timeout: float = 10.0) -> ServerClient:
    deadline = time.monotonic() + timeout
    while True:
        try:
            return ServerClient.connect(host, port, timeout=30.0)
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)


def _build_oracle(ops: list[tuple]) -> TemporalDatabase:
    """Replay *ops* into a fresh in-memory database."""
    db = TemporalDatabase()
    for op in ops:
        try:
            apply_op(db, op)
        except TChimeraError:
            # The server refused it too (same state, same engine).
            pass
    return db


def run_server_trial(seed: int, n_ops: int = 24) -> ServerTrialResult:
    """One deterministic crash-between-commit-and-ack experiment."""
    rng = random.Random(seed)
    # Leave slack below n_ops: a few workload ops may be engine-refused
    # and refusals don't advance the server's applied-write counter.
    crash_at = rng.randint(5, max(6, n_ops - 6))
    crash_kind = rng.choice(("before", "after"))
    knob = (
        "REPRO_SERVER_CRASH_BEFORE_WRITES"
        if crash_kind == "before"
        else "REPRO_SERVER_CRASH_AFTER_WRITES"
    )
    result = ServerTrialResult(
        seed=seed, crash_kind=crash_kind, crash_at=crash_at
    )

    with tempfile.TemporaryDirectory() as directory:
        proc, host, port = _spawn(directory, {knob: str(crash_at)})
        client = _connect(host, port)

        # The mirror does double duty: workload generator state and
        # acked-ops oracle (its serials track the server's exactly, so
        # generated ops reference oids both sides agree on).
        state = _WorkloadState(random.Random(seed * 31 + 7))
        acked: list[tuple] = []
        inflight: tuple | None = None
        pending = list(_schema_ops())
        mirror = _build_oracle([])
        try:
            for _ in range(n_ops):
                op = pending.pop(0) if pending else _next_op(state, mirror)
                inflight = op
                try:
                    client.execute(op)
                except ServerError as exc:
                    if exc.kind == "ConnectionError":
                        break  # the armed crash fired
                    # The engine refused the op; the oracle replay
                    # will refuse it identically.  Not in flight.
                    inflight = None
                    acked.append(op)
                    continue
                inflight = None
                acked.append(op)
                try:
                    op_result = apply_op(mirror, op)
                except TChimeraError:
                    op_result = None
                _note_applied(state, op, op_result)
                if state.rng.random() < 0.2:
                    try:
                        client.query("select employee where salary > 1500")
                    except ServerError as exc:
                        if exc.kind == "ConnectionError":
                            inflight = None
                            break
                        # e.g. the class is not defined yet: the read
                        # failed, the write path is unaffected.
            else:
                result.problems.append(
                    f"crash point {crash_kind}:{crash_at} never fired "
                    f"in {n_ops} ops"
                )
        finally:
            client.close_socket()

        exit_code = proc.wait(timeout=30)
        expected = (
            CRASH_BEFORE_EXIT if crash_kind == "before" else CRASH_AFTER_EXIT
        )
        if not result.problems and exit_code != expected:
            result.problems.append(
                f"server exited {exit_code}, expected {expected}"
            )
        result.acked_ops = len(acked)
        result.inflight = inflight

        # -- recovery oracle ------------------------------------------
        recovered, report = recover(directory)
        if not report.ok or recovered is None:
            result.problems.append("recovery failed outright")
            return result
        oracle_acked = _build_oracle(acked)
        base_problems = _compare(recovered, oracle_acked)
        if inflight is None:
            result.problems.extend(base_problems)
        elif not base_problems:
            result.inflight_present = False
        else:
            oracle_plus = _build_oracle(acked + [inflight])
            plus_problems = _compare(recovered, oracle_plus)
            if plus_problems:
                result.problems.append(
                    "recovered state matches neither oracle: "
                    + "; ".join((base_problems + plus_problems)[:4])
                )
            else:
                result.inflight_present = True

        # -- clean retry on a restarted server ------------------------
        proc2, host2, port2 = _spawn(directory)
        try:
            client2 = _connect(host2, port2)
            try:
                if not client2.ping():
                    result.problems.append("restarted server failed ping")
                client2.query("select person")
                if inflight is not None and result.inflight_present is False:
                    try:
                        client2.execute(inflight)
                        result.retried = True
                    except ServerError as exc:
                        if exc.kind == "ConnectionError":
                            result.problems.append(
                                "retry killed the restarted server"
                            )
                        else:
                            # The engine may legitimately refuse the
                            # retry only if the oracle refuses it too.
                            try:
                                apply_op(_build_oracle(acked), inflight)
                            except TChimeraError:
                                result.retried = True
                            else:
                                result.problems.append(
                                    f"clean retry refused: {exc}"
                                )
            finally:
                client2.close()
        finally:
            proc2.terminate()
            try:
                proc2.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc2.kill()
                proc2.wait(timeout=15)

    return result
