"""The crash-recovery property harness.

One *trial* (:func:`run_trial`) is a full crash-recovery experiment,
deterministic in its seed:

1. draw a :class:`CrashPlan` (named crash point + occurrence) and build
   a journaled :class:`TemporalDatabase` on a :class:`SimulatedFS`;
2. run a randomized workload (creates, temporal/static updates,
   migrations, deletions, retroactive corrections, schema evolution,
   clock ticks, transactions -- some deliberately rolled back --
   bulk batches (``db.batch()`` group-commit runs), and mid-run
   checkpoints), recording each committed operation together with the
   LSN of its journal record;
3. the injected fault kills the process model mid-operation; the
   simulated disk collapses to its durable content
   (:meth:`SimulatedFS.crash_view`);
4. recover; the report must be ``ok`` (or the crash predates any
   durable genesis/checkpoint, in which case there is provably nothing
   to recover);
5. rebuild the *durable-prefix oracle*: a plain database that applies
   exactly the committed operations whose LSN the recovery replayed or
   the checkpoint covered;
6. assert the recovered database passes ``check_database`` and is
   equivalent to the oracle -- structurally value-equal and
   weak-value-equal (Definition 5.10) object by object -- and that no
   bulk batch survived *partially*: the replay boundary never falls
   strictly inside a batch's LSN range (a torn group-commit write must
   drop the whole batch, never a prefix; Def. 5.6 referential
   integrity then holds on whatever recovery rebuilds).

Every future PR that touches the engine can regress against this: any
operation that mutates state without journaling it, or journals
something replay cannot reproduce, breaks the equivalence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.database.database import TemporalDatabase
from repro.database.integrity import check_database
from repro.database.recovery import (
    JOURNAL_NAME,
    RecoveryReport,
    recover,
)
from repro.database.transactions import Transaction
from repro.database.wal import Journal, scan_frames
from repro.errors import TChimeraError
from repro.faults.fs import (
    CrashPlan,
    FaultInjector,
    SimulatedCrash,
    SimulatedFS,
    random_plan,
)
from repro.objects.equality import weak_value_equal
from repro.schema.attribute import Attribute
from repro.values.structure import values_equal

DB_DIR = "/db"


# -- logical operations ---------------------------------------------------------


def apply_op(db: TemporalDatabase, op: tuple) -> Any:
    """Apply one logical operation (shared by the primary and the oracle)."""
    kind = op[0]
    if kind == "tick":
        return db.tick(op[1])
    if kind == "define_class":
        _, name, parents, attributes = op
        return db.define_class(
            name,
            parents=parents,
            attributes=[Attribute(*spec) for spec in attributes],
        )
    if kind == "add_attribute":
        _, class_name, spec = op
        return db.add_attribute(class_name, Attribute(*spec))
    if kind == "remove_attribute":
        _, class_name, attr_name = op
        return db.remove_attribute(class_name, attr_name)
    if kind == "drop_class":
        return db.drop_class(op[1])
    if kind == "create":
        _, class_name, attributes = op
        return db.create_object(class_name, attributes)
    if kind == "update":
        _, oid, attr_name, value = op
        return db.update_attribute(oid, attr_name, value)
    if kind == "migrate":
        _, oid, class_name, attributes = op
        return db.migrate(oid, class_name, attributes)
    if kind == "delete":
        return db.delete_object(op[1])
    if kind == "correct":
        _, oid, attr_name, start, end, value = op
        return db.correct_attribute(oid, attr_name, start, end, value)
    raise ValueError(f"unknown op {kind!r}")


class _WorkloadState:
    """Book-keeping the generator needs to emit mostly-valid operations."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.employees: list = []
        self.managers: set = set()
        self.extra_attrs: list[str] = []
        self.attr_counter = 0


def _schema_ops() -> list[tuple]:
    return [
        ("define_class", "person", [], [("name", "string")]),
        (
            "define_class",
            "employee",
            ["person"],
            [
                ("salary", "temporal(real)"),
                ("dept", "string"),
                ("mentor", "temporal(person)"),
                ("metric", "temporal(integer)"),
            ],
        ),
        (
            "define_class",
            "manager",
            ["employee"],
            [("officialcar", "string")],
        ),
        ("tick", 1),
    ]


def _next_op(state: _WorkloadState, db: TemporalDatabase) -> tuple:
    """Draw the next operation given the primary's current state."""
    rng = state.rng
    live = [
        oid
        for oid in state.employees
        if oid in db and db.get_object(oid).alive_at(db.now, db.now)
    ]
    roll = rng.random()
    if roll < 0.12 or not live:
        index = len(state.employees)
        return (
            "create",
            "employee",
            {
                "name": f"emp{index}",
                "salary": float(1000 + rng.randrange(2000)),
                "dept": rng.choice("RSTU"),
            },
        )
    if roll < 0.40:
        oid = rng.choice(live)
        if rng.random() < 0.3 and len(live) > 1:
            other = rng.choice([o for o in live if o != oid])
            return ("update", oid, "mentor", other)
        return (
            "update", oid, "salary", float(1000 + rng.randrange(3000))
        )
    if roll < 0.52:
        oid = rng.choice(live)
        name = rng.choice(["dept", *state.extra_attrs]) \
            if state.extra_attrs and rng.random() < 0.4 else "dept"
        return ("update", oid, name, f"v{rng.randrange(50)}")
    if roll < 0.60:
        return ("update", rng.choice(live), "metric", rng.randrange(100))
    if roll < 0.68:
        oid = rng.choice(live)
        if oid in state.managers:
            return ("migrate", oid, "employee", {})
        return (
            "migrate", oid, "manager",
            {"officialcar": f"car{rng.randrange(9)}"},
        )
    if roll < 0.76:
        oid = rng.choice(live)
        obj = db.get_object(oid)
        start = obj.lifespan.start
        if db.now > start:
            lo = rng.randint(start, db.now)
            hi = rng.randint(lo, db.now)
            return (
                "correct", oid, "salary", lo, hi,
                float(500 + rng.randrange(4000)),
            )
        return ("tick", 1)
    if roll < 0.82 and len(live) > 2:
        return ("delete", rng.choice(live))
    if roll < 0.86:
        state.attr_counter += 1
        name = f"extra{state.attr_counter}"
        return ("add_attribute", "employee", (name, "string"))
    if roll < 0.90 and state.extra_attrs:
        return (
            "remove_attribute",
            "employee",
            state.rng.choice(state.extra_attrs),
        )
    return ("tick", rng.randint(1, 3))


def _note_applied(state: _WorkloadState, op: tuple, result: Any) -> None:
    kind = op[0]
    if kind == "create":
        state.employees.append(result)
    elif kind == "migrate":
        if op[2] == "manager":
            state.managers.add(op[1])
        else:
            state.managers.discard(op[1])
    elif kind == "delete":
        state.managers.discard(op[1])
    elif kind == "add_attribute":
        state.extra_attrs.append(op[2][0])
    elif kind == "remove_attribute":
        state.extra_attrs.remove(op[2])


# -- the trial -------------------------------------------------------------------


@dataclass
class TrialResult:
    seed: int
    plan: CrashPlan
    crashed: bool
    #: committed operations with their journal LSNs, in order.
    ops: list[tuple[int, tuple]]
    report: RecoveryReport | None
    #: True when the crash predates any durable genesis/checkpoint, so
    #: there is provably nothing to recover (report.ok is False then).
    nothing_durable: bool = False
    checkpoints: int = 0
    #: (first, last) data-record LSN of every bulk batch the workload
    #: ran (including one interrupted by the crash): recovery must land
    #: the replay boundary outside each range, never inside.
    batches: list[tuple[int, int]] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def run_trial(
    seed: int,
    n_ops: int = 45,
    plan: CrashPlan | None = None,
) -> TrialResult:
    """One deterministic crash-recovery experiment (see module docs)."""
    rng = random.Random(seed)
    plan = plan or random_plan(rng)
    fs = SimulatedFS(
        injector=FaultInjector(plan), rng=random.Random(seed ^ 0x5EED)
    )
    applied: list[tuple[int, tuple]] = []
    state = _WorkloadState(random.Random(seed * 31 + 7))
    crashed = False
    checkpoints = 0
    batches: list[tuple[int, int]] = []
    # The op the crash interrupted, if any.  Its journal record may or
    # may not be durable; ``acked`` (the last LSN whose operation
    # returned to the client) lets the oracle decide after recovery.
    inflight: tuple | None = None
    acked = 0

    try:
        journal = Journal(f"{DB_DIR}/{JOURNAL_NAME}", fs=fs)
        db = TemporalDatabase(journal=journal)
        acked = journal.last_lsn  # the genesis record
        pending = list(_schema_ops())
        ops_done = 0
        while ops_done < n_ops:
            decide = state.rng.random()
            if pending:
                op = inflight = pending.pop(0)
                result = apply_op(db, op)
                applied.append((journal.last_lsn, op))
                acked = journal.last_lsn
                inflight = None
                _note_applied(state, op, result)
                ops_done += 1
            elif decide < 0.08:
                # A transaction batch; ~40% roll back on purpose.
                txn = Transaction(db).begin()
                staged: list[tuple[int, tuple]] = []
                for _ in range(state.rng.randint(2, 4)):
                    op = _next_op(state, db)
                    try:
                        result = apply_op(db, op)
                    except TChimeraError:
                        continue
                    staged.append((journal.last_lsn, op))
                    ops_done += 1
                if state.rng.random() < 0.4:
                    # Discarded on purpose; the journal suffix is
                    # truncated, so `staged` must never reach `applied`.
                    txn.rollback()
                else:
                    # Record before commit: if the crash hits inside
                    # the commit fsync, the marker may or may not be
                    # durable -- the LSN filter settles it either way.
                    applied.extend(staged)
                    for _lsn, op in staged:
                        _note_applied(state, op, None)
                    txn.commit()
                    acked = journal.last_lsn
            elif decide < 0.13 and applied:
                db.checkpoint()
                checkpoints += 1
                acked = journal.last_lsn
            elif decide < 0.22:
                # A bulk batch: records buffer in memory and hit the
                # disk as one group-commit flush at close, so the
                # injected fault can only fire at the barrier -- the
                # all-or-nothing shape the batches list asserts.
                staged = []
                with db.batch():
                    for _ in range(state.rng.randint(2, 5)):
                        op = _next_op(state, db)
                        try:
                            result = apply_op(db, op)
                        except TChimeraError:
                            continue
                        staged.append((journal.last_lsn, op))
                        _note_applied(state, op, result)
                        ops_done += 1
                    if staged:
                        batches.append((staged[0][0], staged[-1][0]))
                    # Record before close: if the crash hits inside
                    # the flush, the whole batch may or may not be
                    # durable -- the LSN filter settles it, and the
                    # range recorded above pins all-or-nothing.
                    applied.extend(staged)
                acked = journal.last_lsn
            else:
                op = _next_op(state, db)
                inflight = op
                try:
                    result = apply_op(db, op)
                except TChimeraError:
                    inflight = None
                    continue
                applied.append((journal.last_lsn, op))
                acked = journal.last_lsn
                inflight = None
                _note_applied(state, op, result)
                ops_done += 1
    except SimulatedCrash:
        crashed = True

    durable = fs.crash_view()
    recovered, report = recover(DB_DIR, fs=durable)
    result = TrialResult(
        seed=seed, plan=plan, crashed=crashed, ops=applied,
        report=report, checkpoints=checkpoints, batches=batches,
    )

    if recovered is None:
        # Acceptable only when genuinely nothing durable exists.
        result.nothing_durable = _nothing_durable(durable)
        if not result.nothing_durable:
            result.problems.append(
                "recovery failed with durable state present: "
                + "; ".join(report.errors)
            )
        return result

    oracle = TemporalDatabase()
    boundary = report.last_lsn
    for first, last in batches:
        if first <= boundary < last:
            result.problems.append(
                f"partial batch visible after recovery: replay "
                f"boundary {boundary} falls inside LSN range "
                f"[{first}, {last}]"
            )
    ops = list(applied)
    if inflight is not None and boundary > acked:
        # The crash interrupted this op after its journal record became
        # durable: recovery replays it even though the client never got
        # an acknowledgement.  Both outcomes are legal; the boundary
        # having advanced past the last acked LSN tells us which one
        # happened in this trial.
        ops.append((boundary, inflight))
    for lsn, op in ops:
        if lsn <= boundary:
            try:
                apply_op(oracle, op)
            except TChimeraError as exc:
                result.problems.append(
                    f"oracle replay of {op!r} failed: {exc}"
                )
                return result

    result.problems.extend(_compare(recovered, oracle))
    integrity = check_database(recovered)
    if not integrity.ok:
        result.problems.extend(
            f"integrity: {v}" for v in integrity.all_violations()[:5]
        )
    return result


# -- replication trials -----------------------------------------------------------


@dataclass
class ReplicaTrialResult:
    """Outcome of one replication fault-injection experiment."""

    seed: int
    plan: Any
    #: the plan's injector actually fired during the trial.
    fired: bool
    #: committed LSN the primary reached (and both replicas must reach).
    head_lsn: int
    checkpoints: int = 0
    #: restore_to round-trips performed against the replica archives.
    restores_checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def run_replica_trial(
    seed: int,
    n_ops: int = 40,
    plan: Any = None,
) -> ReplicaTrialResult:
    """One deterministic replication experiment (seeded end to end).

    A journaled primary on a healthy :class:`SimulatedFS` runs the same
    randomized workload as :func:`run_trial` (transactions -- some
    rolled back -- bulk batches, checkpoints, schema evolution) while a
    :class:`~repro.replication.LogShipper` feeds two replicas: one
    carrying a :class:`~repro.faults.replica.ReplicaCrashPlan` (frames
    torn/bit-flipped/dropped in transit, or the replica killed
    mid-apply / mid-fetch) and one fault-free control.  The faulty
    replica attaches late about half the time, exercising the
    checkpoint-fetch catch-up path.

    Afterwards the shipper drains and the trial asserts:

    * both replicas converged to the primary -- same committed LSN and
      :func:`_compare`-equivalent state (structural + Definition 5.10
      weak value equality, the same oracle the crash trials use);
    * writes on a replica raise :class:`ReplicaWriteError`;
    * up to two ``restore_to(lsn=...)`` round-trips against the faulty
      replica's archive reproduce snapshots taken during the run, and a
      ``restore_to(tick=...)`` lands at or before the snapshot clock.
    """
    from repro.database.persistence import (
        database_from_json,
        database_to_json,
    )
    from repro.errors import ReplicationError, ReplicaWriteError
    from repro.faults.replica import random_replica_plan
    from repro.replication import LogShipper, Replica, restore_to

    rng = random.Random(seed)
    plan = plan or random_replica_plan(rng)
    fs = SimulatedFS(rng=random.Random(seed ^ 0x5EED))
    shipper = LogShipper(DB_DIR, fs=fs, backoff=lambda attempt: None)
    injector = FaultInjector(plan)
    faulty = Replica(
        "faulty",
        fs=SimulatedFS(),
        injector=injector,
        rng=random.Random(seed ^ 0xFA11),
    )
    control = Replica(
        "control", fs=SimulatedFS(), rng=random.Random(seed ^ 0xC0DE)
    )
    shipper.attach(control)
    attach_after = rng.randint(0, n_ops // 2) if rng.random() < 0.5 else 0
    if attach_after == 0:
        shipper.attach(faulty)

    state = _WorkloadState(random.Random(seed * 31 + 7))
    checkpoints = 0
    #: (lsn, tick, snapshot json) taken at quiescent points.
    snapshots: list[tuple[int, int, str]] = []
    result = ReplicaTrialResult(
        seed=seed, plan=plan, fired=False, head_lsn=0
    )

    journal = Journal(f"{DB_DIR}/{JOURNAL_NAME}", fs=fs)
    db = TemporalDatabase(journal=journal)
    pending = list(_schema_ops())
    ops_done = 0
    try:
        while ops_done < n_ops:
            if ops_done >= attach_after and faulty not in shipper.replicas:
                shipper.attach(faulty)
            decide = state.rng.random()
            if pending:
                op = pending.pop(0)
                result_value = apply_op(db, op)
                _note_applied(state, op, result_value)
                ops_done += 1
            elif decide < 0.08:
                txn = Transaction(db).begin()
                staged: list[tuple] = []
                for _ in range(state.rng.randint(2, 4)):
                    op = _next_op(state, db)
                    try:
                        apply_op(db, op)
                    except TChimeraError:
                        continue
                    staged.append(op)
                    ops_done += 1
                if state.rng.random() < 0.4:
                    # Rolled back: the journal suffix is physically
                    # truncated, so nothing of it may ever reach a
                    # replica (the shipper withholds open transactions).
                    txn.rollback()
                else:
                    txn.commit()
                    for op in staged:
                        _note_applied(state, op, None)
            elif decide < 0.13 and ops_done:
                db.checkpoint()
                checkpoints += 1
            elif decide < 0.22:
                with db.batch():
                    for _ in range(state.rng.randint(2, 5)):
                        op = _next_op(state, db)
                        try:
                            result_value = apply_op(db, op)
                        except TChimeraError:
                            continue
                        _note_applied(state, op, result_value)
                        ops_done += 1
            else:
                op = _next_op(state, db)
                try:
                    result_value = apply_op(db, op)
                except TChimeraError:
                    continue
                _note_applied(state, op, result_value)
                ops_done += 1
            if state.rng.random() < 0.35:
                shipper.sync_all()
                if state.rng.random() < 0.2 and not journal.is_empty():
                    snapshots.append(
                        (journal.last_lsn, db.now, database_to_json(db))
                    )
    except ReplicationError as exc:
        result.problems.append(f"shipper gave up mid-run: {exc}")
        result.fired = injector.fired
        return result

    # Note: the transaction branch replays through the same journal the
    # shipper tails, so a rollback truncates frames the shipper may
    # have cached -- committed_frames() only caches past committed
    # boundaries, which rollback never truncates below.

    try:
        shipper.sync_all()
    except ReplicationError as exc:
        result.problems.append(f"final drain failed: {exc}")
        result.fired = injector.fired
        return result

    result.fired = injector.fired
    result.head_lsn = shipper.committed_lsn()
    result.checkpoints = checkpoints

    for replica in (control, faulty):
        if replica not in shipper.replicas:
            continue
        if replica.applied_lsn != result.head_lsn:
            result.problems.append(
                f"replica {replica.name}: applied lsn "
                f"{replica.applied_lsn} != committed head "
                f"{result.head_lsn}"
            )
            continue
        if replica._db is None:
            result.problems.append(
                f"replica {replica.name}: no database after drain"
            )
            continue
        result.problems.extend(
            f"replica {replica.name}: {p}"
            for p in _compare(replica._db, db)
        )
        try:
            replica.db.tick(1)
            result.problems.append(
                f"replica {replica.name}: write did not raise"
            )
        except ReplicaWriteError:
            pass

    # restore_to round-trips against the faulty replica's archive.
    for lsn, tick, snapshot in snapshots[-2:]:
        if faulty not in shipper.replicas or faulty._db is None:
            break
        expected = database_from_json(snapshot)
        try:
            restored, _report = restore_to(
                faulty.directory, lsn=lsn, fs=faulty.fs
            )
        except ReplicationError:
            # Legal only when the target predates the replica's
            # retained history (a later checkpoint install truncated
            # the archive past it).
            from repro.database.wal import (
                checkpoint_lsn as _ckpt_lsn,
                list_checkpoints as _list_ckpts,
            )

            names = _list_ckpts(faulty.fs, faulty.directory)
            floor = _ckpt_lsn(names[0]) if names else 0
            if lsn >= floor:
                result.problems.append(
                    f"restore_to(lsn={lsn}) failed inside the retained "
                    f"history (checkpoint floor {floor})"
                )
            continue
        result.restores_checked += 1
        result.problems.extend(
            f"restore lsn={lsn}: {p}"
            for p in _compare(restored, expected)
        )
        try:
            tick_restored, _ = restore_to(
                faulty.directory, tick=tick, fs=faulty.fs
            )
            if tick_restored.now > tick:
                result.problems.append(
                    f"restore tick={tick}: landed at {tick_restored.now}"
                )
        except ReplicationError:
            pass  # same retention caveat as above

    return result


def _nothing_durable(fs: SimulatedFS) -> bool:
    """True when the durable disk holds no checkpoint and no journal
    records at all (crash predated the first durable byte)."""
    import json

    from repro.database.wal import list_checkpoints

    for name in list_checkpoints(fs, DB_DIR):
        try:
            doc = json.loads(fs.read(f"{DB_DIR}/{name}").decode("utf-8"))
            if "database" in doc:
                return False
        except Exception:
            continue
    journal_path = f"{DB_DIR}/{JOURNAL_NAME}"
    if not fs.exists(journal_path):
        return True
    records, _tail = scan_frames(fs.read(journal_path))
    return not records


def _compare(recovered: TemporalDatabase, oracle: TemporalDatabase) -> list[str]:
    """Structural + Def. 5.10 equivalence of two databases."""
    problems: list[str] = []
    if recovered.now != oracle.now:
        problems.append(
            f"clock differs: {recovered.now} != {oracle.now}"
        )
    if recovered._oids.next_serial != oracle._oids.next_serial:
        problems.append(
            f"oid counter differs: {recovered._oids.next_serial} != "
            f"{oracle._oids.next_serial}"
        )
    if set(recovered.class_names()) != set(oracle.class_names()):
        problems.append(
            f"class sets differ: {sorted(recovered.class_names())} != "
            f"{sorted(oracle.class_names())}"
        )
        return problems
    now = oracle.now
    for name in oracle.class_names():
        r_cls, o_cls = recovered.get_class(name), oracle.get_class(name)
        if r_cls.lifespan != o_cls.lifespan:
            problems.append(f"class {name}: lifespan differs")
        if r_cls.history.members_at(now) != o_cls.history.members_at(now):
            problems.append(f"class {name}: extent at now differs")
        if set(r_cls.attributes) != set(o_cls.attributes):
            problems.append(f"class {name}: attribute sets differ")
        if set(r_cls.retired_attributes) != set(o_cls.retired_attributes):
            problems.append(f"class {name}: retired attributes differ")
    r_oids = {obj.oid for obj in recovered.objects()}
    o_oids = {obj.oid for obj in oracle.objects()}
    if r_oids != o_oids:
        problems.append(
            f"object populations differ: {len(r_oids)} vs {len(o_oids)} "
            f"(symmetric difference {sorted(r_oids ^ o_oids)[:4]})"
        )
        return problems
    for obj in oracle.objects():
        twin = recovered.get_object(obj.oid)
        if not values_equal(twin.value_record(), obj.value_record()):
            problems.append(f"{obj.oid!r}: value component differs")
        if twin.class_history != obj.class_history:
            problems.append(f"{obj.oid!r}: class history differs")
        if twin.lifespan != obj.lifespan:
            problems.append(f"{obj.oid!r}: lifespan differs")
        if set(twin.retained) != set(obj.retained) or not all(
            values_equal(twin.retained[k], obj.retained[k])
            for k in obj.retained
        ):
            problems.append(f"{obj.oid!r}: retained histories differ")
        if obj.alive_at(now, now) and not weak_value_equal(
            twin, obj, now
        ):
            problems.append(
                f"{obj.oid!r}: not weak-value-equal (Def. 5.10)"
            )
    return problems
