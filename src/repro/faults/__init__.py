"""Deterministic fault injection for the durability subsystem.

* :mod:`repro.faults.fs` -- the filesystem protocol, the
  :class:`RealFS` pass-through, and :class:`SimulatedFS`: an in-memory
  filesystem with an explicit durability model and named crash points
  driven by a seeded :class:`CrashPlan`;
* :mod:`repro.faults.replica` -- the replication fault catalogue:
  frames torn, bit-flipped or dropped in transit, replicas killed
  mid-apply or mid-checkpoint-fetch (:class:`ReplicaCrashPlan`);
* :mod:`repro.faults.harness` -- the crash-recovery property harness:
  randomized workloads, a crash at every named point, recovery, and
  equivalence checks against the durable-prefix oracle; plus the
  replication variant (:func:`run_replica_trial`) asserting replica
  convergence and restore round-trips under injected faults.
"""

from repro.faults.fs import (
    CRASH_POINTS,
    CrashPlan,
    FaultInjector,
    RealFS,
    SimulatedCrash,
    SimulatedFS,
    random_plan,
    segment_plans,
)
from repro.faults.replica import (
    REPLICA_CRASH_POINTS,
    ReplicaCrashPlan,
    random_replica_plan,
)

def __getattr__(name: str):
    # The harness imports the database package (it drives real engine
    # workloads), and the database's WAL imports :mod:`repro.faults.fs`
    # -- importing the harness eagerly here would close that cycle.
    if name in (
        "TrialResult",
        "run_trial",
        "apply_op",
        "ReplicaTrialResult",
        "run_replica_trial",
    ):
        from repro.faults import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CRASH_POINTS",
    "CrashPlan",
    "FaultInjector",
    "REPLICA_CRASH_POINTS",
    "RealFS",
    "ReplicaCrashPlan",
    "ReplicaTrialResult",
    "SimulatedCrash",
    "SimulatedFS",
    "TrialResult",
    "random_plan",
    "random_replica_plan",
    "run_replica_trial",
    "run_trial",
    "segment_plans",
]
