"""Deterministic fault injection for the durability subsystem.

* :mod:`repro.faults.fs` -- the filesystem protocol, the
  :class:`RealFS` pass-through, and :class:`SimulatedFS`: an in-memory
  filesystem with an explicit durability model and named crash points
  driven by a seeded :class:`CrashPlan`;
* :mod:`repro.faults.harness` -- the crash-recovery property harness:
  randomized workloads, a crash at every named point, recovery, and
  equivalence checks against the durable-prefix oracle.
"""

from repro.faults.fs import (
    CRASH_POINTS,
    CrashPlan,
    FaultInjector,
    RealFS,
    SimulatedCrash,
    SimulatedFS,
    random_plan,
)

def __getattr__(name: str):
    # The harness imports the database package (it drives real engine
    # workloads), and the database's WAL imports :mod:`repro.faults.fs`
    # -- importing the harness eagerly here would close that cycle.
    if name in ("TrialResult", "run_trial", "apply_op"):
        from repro.faults import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CRASH_POINTS",
    "CrashPlan",
    "FaultInjector",
    "RealFS",
    "SimulatedCrash",
    "SimulatedFS",
    "TrialResult",
    "random_plan",
    "run_trial",
]
