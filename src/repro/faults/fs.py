"""Filesystem abstraction with deterministic fault injection.

The durability subsystem (:mod:`repro.database.wal`,
:mod:`repro.database.recovery`) never touches ``os``/``open`` directly;
every byte goes through a filesystem object implementing the small
protocol below.  Two implementations:

* :class:`RealFS` -- the obvious pass-through to the operating system,
  used in production and by the CLI;
* :class:`SimulatedFS` -- an in-memory filesystem with an explicit
  *durability* model, used by the crash-recovery property harness.

Durability model of :class:`SimulatedFS`
----------------------------------------
Each file tracks its *visible* content (what reads return: the page
cache) and a *synced length* (the prefix known to be on stable
storage).  ``append``/``write`` extend only the visible content;
``fsync`` advances the synced length to the current size.  When the
simulated machine crashes (:meth:`SimulatedFS.crash_view`), every
file's content collapses to its synced prefix plus a pseudo-random
*prefix* of the unsynced suffix -- the kernel may have written any
amount of the dirty data before dying, but writes hit the platter in
order, so retention is always a prefix.  Torn records and lost tails
fall out of this model naturally.

Metadata operations (``replace``, ``truncate``, ``remove``) are modeled
as immediately durable.  This is kinder than the worst real filesystem,
but the write-ahead journal does not rely on the kindness: the crash
points still interleave failures *around* these calls, and content
durability (the dangerous part) is fully modeled.

Crash points
------------
A :class:`FaultInjector` counts filesystem operations and fires a
:class:`CrashPlan` at a chosen occurrence: crash ``before`` the
operation, ``after`` it (data written but unsynced), ``torn`` (only a
prefix of the payload reaches the page cache) or ``bitflip`` (the
payload lands with one bit flipped).  After the injected failure the
disk is *dead*: every further operation raises
:class:`SimulatedCrash`, so post-crash cleanup code cannot mutate the
state the recovery run will see.  The full crash-point catalogue is
listed in ``docs/durability.md``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass


class SimulatedCrash(BaseException):
    """The simulated process died at an injected crash point.

    Derives from ``BaseException`` so ordinary ``except Exception``
    cleanup handlers in library code cannot swallow the death.
    """


#: Operations a :class:`CrashPlan` can target, with the modes each
#: supports.  ``fsync.before`` is the classic *skipped fsync* fault:
#: the data was written but the sync never completed.
CRASH_POINTS: dict[str, tuple[str, ...]] = {
    "append": ("before", "after", "torn", "bitflip"),
    "write": ("before", "after", "torn", "bitflip"),
    "fsync": ("before", "after"),
    "replace": ("before", "after"),
    "truncate": ("before", "after"),
    "remove": ("before", "after"),
}


@dataclass(frozen=True)
class CrashPlan:
    """Crash at the *occurrence*-th ``op`` (1-based), in the given mode.

    With *path_part* set, only operations whose target path contains
    that substring count toward the occurrence -- e.g.
    ``CrashPlan("write", "torn", 1, path_part=".seg")`` tears the
    first cold-segment spill while leaving journal writes untouched.
    """

    op: str
    mode: str
    occurrence: int = 1
    path_part: str | None = None

    def __post_init__(self) -> None:
        if self.op not in CRASH_POINTS:
            raise ValueError(f"unknown crash point op {self.op!r}")
        if self.mode not in CRASH_POINTS[self.op]:
            raise ValueError(
                f"crash point {self.op!r} does not support mode "
                f"{self.mode!r}"
            )

    @property
    def point(self) -> str:
        """The crash point's name, e.g. ``append.torn``."""
        if self.path_part:
            return f"{self.op}.{self.mode}@{self.path_part}"
        return f"{self.op}.{self.mode}"


def random_plan(rng: random.Random, max_occurrence: int = 60) -> CrashPlan:
    """A pseudo-random crash plan drawn from the full catalogue."""
    op = rng.choice(sorted(CRASH_POINTS))
    mode = rng.choice(CRASH_POINTS[op])
    return CrashPlan(op, mode, rng.randint(1, max_occurrence))


def segment_plans(max_occurrence: int = 3) -> tuple[CrashPlan, ...]:
    """Crash plans aimed at the cold-segment spill protocol.

    Covers every dangerous shape around a checkpoint's segment file:
    torn and bit-flipped page writes, the skipped fsync, a death on
    either side of the rename, the window between a durable spill and
    the journal truncate, and the old-generation cleanup.
    """
    shapes = [
        ("write", "torn", ".seg"),       # torn spill
        ("write", "bitflip", ".seg"),    # bit-flipped page
        ("write", "before", ".seg"),
        ("write", "after", ".seg"),      # written, never synced
        ("fsync", "before", ".seg"),     # skipped fsync
        ("replace", "before", ".seg"),
        ("replace", "after", ".seg"),
        ("remove", "before", ".seg"),    # old-generation cleanup
        # Spill durable, checkpoint durable, journal not yet truncated.
        ("truncate", "before", None),
    ]
    return tuple(
        CrashPlan(op, mode, occurrence, path_part=part)
        for op, mode, part in shapes
        for occurrence in range(1, max_occurrence + 1)
    )


class FaultInjector:
    """Fires a :class:`CrashPlan` at the chosen operation occurrence."""

    def __init__(self, plan: CrashPlan | None) -> None:
        self.plan = plan
        self.counts: dict[str, int] = {}
        self.fired = False

    def check(self, op: str, path: str | None = None) -> str | None:
        """Count one occurrence of *op*; return the crash mode if the
        plan fires here, else None.  Path-targeted plans count only
        the operations whose *path* matches.  (The replica-side plans
        have no ``path_part`` field and always count untargeted.)"""
        self.counts[op] = count = self.counts.get(op, 0) + 1
        if self.plan is None or self.fired or op != self.plan.op:
            return None
        part = getattr(self.plan, "path_part", None)
        if part:
            if path is None or part not in str(path):
                return None
            key = f"{op}@{part}"
            self.counts[key] = count = self.counts.get(key, 0) + 1
        if count == self.plan.occurrence:
            self.fired = True
            return self.plan.mode
        return None


class _File:
    __slots__ = ("visible", "synced")

    def __init__(self, data: bytes = b"") -> None:
        self.visible = bytearray(data)
        self.synced = len(data)


class SimulatedFS:
    """In-memory filesystem with durability tracking and fault injection."""

    def __init__(
        self,
        injector: FaultInjector | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._files: dict[str, _File] = {}
        self._injector = injector or FaultInjector(None)
        self._rng = rng or random.Random(0)
        self.dead = False

    # -- fault plumbing ------------------------------------------------------

    def _gate(self, op: str, path: str | None = None) -> str | None:
        if self.dead:
            raise SimulatedCrash(f"operation {op!r} on a dead disk")
        return self._injector.check(op, path)

    def _die(self) -> None:
        self.dead = True
        raise SimulatedCrash(self._injector.plan.point)

    def _mangle(self, data: bytes, mode: str) -> bytes:
        if mode == "torn":
            return data[: self._rng.randint(0, max(len(data) - 1, 0))]
        if mode == "bitflip" and data:
            index = self._rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[index] ^= 1 << self._rng.randrange(8)
            return bytes(corrupted)
        return data

    # -- protocol ------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return str(path) in self._files

    def size(self, path: str) -> int:
        return len(self._files[str(path)].visible)

    def read(self, path: str) -> bytes:
        try:
            return bytes(self._files[str(path)].visible)
        except KeyError:
            raise FileNotFoundError(path) from None

    def listdir(self, directory: str) -> list[str]:
        prefix = str(directory).rstrip("/") + "/"
        return sorted(
            name[len(prefix):]
            for name in self._files
            if name.startswith(prefix) and "/" not in name[len(prefix):]
        )

    def read_at(self, path: str, offset: int, length: int) -> bytes:
        try:
            file = self._files[str(path)]
        except KeyError:
            raise FileNotFoundError(path) from None
        return bytes(file.visible[offset : offset + length])

    def append(self, path: str, data: bytes) -> None:
        mode = self._gate("append", path)
        if mode == "before":
            self._die()
        file = self._files.setdefault(str(path), _File())
        if mode in ("torn", "bitflip"):
            file.visible.extend(self._mangle(data, mode))
            self._die()
        file.visible.extend(data)
        if mode == "after":
            self._die()

    def write(self, path: str, data: bytes) -> None:
        """Replace the whole file content (page cache only until fsync)."""
        mode = self._gate("write", path)
        if mode == "before":
            self._die()
        file = self._files.setdefault(str(path), _File())
        if mode in ("torn", "bitflip"):
            file.visible = bytearray(self._mangle(data, mode))
            file.synced = min(file.synced, len(file.visible))
            self._die()
        file.visible = bytearray(data)
        file.synced = min(file.synced, len(file.visible))
        if mode == "after":
            self._die()

    def fsync(self, path: str) -> None:
        mode = self._gate("fsync", path)
        if mode == "before":
            self._die()
        file = self._files[str(path)]
        file.synced = len(file.visible)
        if mode == "after":
            self._die()

    def fsync_dir(self, directory: str) -> None:
        # Directory metadata is modeled as immediately durable.
        if self.dead:
            raise SimulatedCrash("fsync_dir on a dead disk")

    def replace(self, src: str, dst: str) -> None:
        mode = self._gate("replace", dst)
        if mode == "before":
            self._die()
        self._files[str(dst)] = self._files.pop(str(src))
        if mode == "after":
            self._die()

    def truncate(self, path: str, size: int) -> None:
        mode = self._gate("truncate", path)
        if mode == "before":
            self._die()
        file = self._files[str(path)]
        del file.visible[size:]
        # Truncation is a metadata operation: durable immediately; the
        # retained prefix keeps its synced status.
        file.synced = min(file.synced, size)
        if mode == "after":
            self._die()

    def remove(self, path: str) -> None:
        mode = self._gate("remove", path)
        if mode == "before":
            self._die()
        self._files.pop(str(path), None)
        if mode == "after":
            self._die()

    # -- crash ----------------------------------------------------------------

    def crash_view(self, rng: random.Random | None = None) -> "SimulatedFS":
        """The filesystem an observer would find after the crash.

        Every file keeps its synced prefix plus a pseudo-random prefix
        of the unsynced suffix (writes reach the platter in order).
        The returned filesystem is healthy (no injector) and fully
        synced -- it is the disk the recovery process boots from.
        """
        chooser = rng or self._rng
        survivor = SimulatedFS()
        for name, file in self._files.items():
            pending = len(file.visible) - file.synced
            keep = file.synced + (
                chooser.randint(0, pending) if pending > 0 else 0
            )
            survivor._files[name] = _File(bytes(file.visible[:keep]))
        return survivor


class RealFS:
    """Pass-through to the operating system (the production filesystem)."""

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def size(self, path: str) -> int:
        return os.path.getsize(path)

    def read(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def read_at(self, path: str, offset: int, length: int) -> bytes:
        with open(path, "rb") as handle:
            handle.seek(offset)
            return handle.read(length)

    def listdir(self, directory: str) -> list[str]:
        return sorted(os.listdir(directory))

    def append(self, path: str, data: bytes) -> None:
        with open(path, "ab") as handle:
            handle.write(data)

    def write(self, path: str, data: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(data)

    def fsync(self, path: str) -> None:
        with open(path, "rb+") as handle:
            os.fsync(handle.fileno())

    def fsync_dir(self, directory: str) -> None:
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def truncate(self, path: str, size: int) -> None:
        with open(path, "rb+") as handle:
            handle.truncate(size)

    def remove(self, path: str) -> None:
        os.remove(path)
