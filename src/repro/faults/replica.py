"""Replica-side fault catalogue for the WAL-shipping subsystem.

The filesystem crash points in :mod:`repro.faults.fs` model a dying
*disk*; replication adds three new places for a deterministic failure
to land, modeled here:

* ``ship`` -- a frame is corrupted *in transit* between the primary's
  journal and a replica: ``torn`` (the delivery is cut mid-frame),
  ``bitflip`` (one bit of the framed bytes flips; the CRC catches it),
  or ``drop`` (the frame silently vanishes, leaving an LSN gap);
* ``apply`` -- the replica process is ``kill``-ed mid-replay, after it
  archived a delivery but before (or while) applying it; its in-memory
  database is gone and its local disk collapses to the durable view;
* ``fetch`` -- the replica is ``kill``-ed in the middle of a
  checkpoint fetch/install, leaving at worst a temp file that the next
  bootstrap ignores.

A :class:`ReplicaCrashPlan` names one such point and the occurrence at
which it fires; the generic :class:`~repro.faults.fs.FaultInjector`
counts occurrences for these plans exactly as it does for filesystem
plans.  Every catalogued fault must be *survivable without operator
action*: the shipper's catch-up protocol re-ships, re-fetches or
restarts the replica, and the property harness
(:func:`repro.faults.harness.run_replica_trial`) asserts convergence
to Definition 5.10 weak value equality with the primary afterwards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Replication fault points, with the modes each supports.
REPLICA_CRASH_POINTS: dict[str, tuple[str, ...]] = {
    "ship": ("torn", "bitflip", "drop"),
    "apply": ("kill",),
    "fetch": ("kill",),
}


@dataclass(frozen=True)
class ReplicaCrashPlan:
    """Fire at the *occurrence*-th ``op`` (1-based), in the given mode."""

    op: str
    mode: str
    occurrence: int = 1

    def __post_init__(self) -> None:
        if self.op not in REPLICA_CRASH_POINTS:
            raise ValueError(f"unknown replica crash point op {self.op!r}")
        if self.mode not in REPLICA_CRASH_POINTS[self.op]:
            raise ValueError(
                f"replica crash point {self.op!r} does not support mode "
                f"{self.mode!r}"
            )

    @property
    def point(self) -> str:
        """The crash point's name, e.g. ``ship.bitflip``."""
        return f"{self.op}.{self.mode}"


def random_replica_plan(
    rng: random.Random, max_occurrence: int = 40
) -> ReplicaCrashPlan:
    """A pseudo-random replica crash plan from the full catalogue."""
    op = rng.choice(sorted(REPLICA_CRASH_POINTS))
    mode = rng.choice(REPLICA_CRASH_POINTS[op])
    return ReplicaCrashPlan(op, mode, rng.randint(1, max_occurrence))
