"""Inheritance (paper, Section 6).

* :mod:`repro.inheritance.isa` -- the user-declared ISA hierarchy: a
  DAG over class identifiers (no common root class exists in Chimera),
  its partial order ``<=_ISA``, least common superclasses, and the
  partition into hierarchies (weakly connected components) whose object
  populations must stay disjoint (Invariant 6.2);
* :mod:`repro.inheritance.refinement` -- Rule 6.1 (attribute domain
  refinement, including the static-to-temporal refinement) and the
  covariance/contravariance conditions on method redefinition;
* :mod:`repro.inheritance.coercion` -- substitutability through
  coercion: viewing an instance of a subclass as an instance of a
  superclass, coercing temporally-refined attributes with
  ``snapshot(i, now)``.
"""

from repro.inheritance.isa import IsaHierarchy
from repro.inheritance.refinement import (
    check_attribute_refinement,
    check_class_refines,
    check_method_override,
    merge_inherited_attributes,
    merge_inherited_methods,
)
from repro.inheritance.coercion import as_member_of, coerce_attribute_value

__all__ = [
    "IsaHierarchy",
    "check_attribute_refinement",
    "check_method_override",
    "check_class_refines",
    "merge_inherited_attributes",
    "merge_inherited_methods",
    "as_member_of",
    "coerce_attribute_value",
]
