"""The ISA hierarchy: a DAG of class identifiers.

Inheritance relationships are described by a user-established ISA
hierarchy, expressed as a partial order ``<=_ISA`` on CI (Section 6).
In Chimera there is *no* common superclass of all classes: the
hierarchy is a DAG consisting of a number of connected components whose
sources are the *root classes* (classes without superclasses), and the
oid populations of different hierarchies are disjoint (Invariant 6.2).

We take a *hierarchy* to be a weakly connected component of the DAG,
identified by the lexicographically least root class in it (a component
may have several sources; migration is allowed anywhere within a
component, never across components).

:class:`IsaHierarchy` implements the
:class:`repro.types.subtyping.IsaOrder` protocol, so it plugs directly
into the subtype order and lub of Definition 6.1.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DuplicateClassError, IsaCycleError, UnknownClassError


class IsaHierarchy:
    """A mutable DAG of class names with ``<=_ISA`` queries.

    Classes are added with their direct superclasses
    (:meth:`add_class`); edges cannot be modified afterwards, matching
    the model (a class's superclasses are fixed at definition).
    Transitive ancestor sets are maintained incrementally, so
    :meth:`isa_le` is a set lookup.
    """

    def __init__(self) -> None:
        self._parents: dict[str, frozenset[str]] = {}
        self._children: dict[str, set[str]] = {}
        self._ancestors: dict[str, frozenset[str]] = {}  # incl. self
        self._component: dict[str, str] = {}  # class -> hierarchy id
        self._generation = 0  # bumped on every DAG change (memo keys)

    @property
    def generation(self) -> int:
        """A counter bumped on every DAG mutation.  Memo tables over the
        ISA order (:mod:`repro.types.subtyping`) key their entries on it
        so they self-invalidate when the hierarchy changes."""
        return self._generation

    # -- construction ---------------------------------------------------------

    def add_class(self, name: str, parents: Iterable[str] = ()) -> None:
        """Declare *name* with its direct superclasses.

        Raises :class:`DuplicateClassError` if already declared and
        :class:`UnknownClassError` if a parent is not declared yet
        (superclasses must exist first, which also rules out cycles).
        """
        if name in self._parents:
            raise DuplicateClassError(f"class {name!r} already declared")
        parent_set = frozenset(parents)
        if name in parent_set:
            raise IsaCycleError(f"class {name!r} cannot inherit from itself")
        for parent in parent_set:
            if parent not in self._parents:
                raise UnknownClassError(
                    f"superclass {parent!r} of {name!r} is not declared"
                )
        self._parents[name] = parent_set
        self._children.setdefault(name, set())
        ancestors = {name}
        for parent in parent_set:
            self._children[parent].add(name)
            ancestors |= self._ancestors[parent]
        self._ancestors[name] = frozenset(ancestors)
        self._component[name] = self._merge_components(name, parent_set)
        self._generation += 1

    def retract_class(self, name: str) -> None:
        """Undo the most recent :meth:`add_class` of *name*.

        Used by the database to roll back a failed class definition
        (component merges performed by the addition are not undone; the
        retracted class no longer relates any pair of classes, which is
        all ``<=_ISA`` queries observe).
        """
        self._parents.pop(name, None)
        self._children.pop(name, None)
        self._ancestors.pop(name, None)
        self._component.pop(name, None)
        for children in self._children.values():
            children.discard(name)
        self._generation += 1

    def _merge_components(self, name: str, parents: frozenset[str]) -> str:
        if not parents:
            return name  # a new root class founds its own hierarchy
        ids = {self._component[p] for p in parents}
        winner = min(ids)
        if len(ids) > 1:
            # The new class joins several hierarchies into one.
            for cls, comp in self._component.items():
                if comp in ids:
                    self._component[cls] = winner
        return winner

    # -- queries --------------------------------------------------------------------

    def known(self, name: str) -> bool:
        return name in self._parents

    def classes(self) -> Iterator[str]:
        return iter(self._parents)

    def __contains__(self, name: object) -> bool:
        return name in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def parents(self, name: str) -> frozenset[str]:
        """The direct superclasses."""
        self._require(name)
        return self._parents[name]

    def children(self, name: str) -> frozenset[str]:
        """The direct subclasses."""
        self._require(name)
        return frozenset(self._children[name])

    def superclasses(self, name: str, strict: bool = False) -> frozenset[str]:
        """All (transitive) superclasses; includes *name* unless strict."""
        self._require(name)
        ancestors = self._ancestors[name]
        return ancestors - {name} if strict else ancestors

    def subclasses(self, name: str, strict: bool = False) -> frozenset[str]:
        """All (transitive) subclasses; includes *name* unless strict."""
        self._require(name)
        found = {
            cls for cls, ancestors in self._ancestors.items()
            if name in ancestors
        }
        return frozenset(found - {name} if strict else found)

    def roots(self) -> frozenset[str]:
        """The root classes: classes without superclasses."""
        return frozenset(c for c, ps in self._parents.items() if not ps)

    def hierarchy_of(self, name: str) -> str:
        """The identifier of the hierarchy (component) containing *name*."""
        self._require(name)
        return self._component[name]

    def hierarchies(self) -> dict[str, frozenset[str]]:
        """Hierarchy id -> the classes it contains."""
        result: dict[str, set[str]] = {}
        for cls, comp in self._component.items():
            result.setdefault(comp, set()).add(cls)
        return {comp: frozenset(classes) for comp, classes in result.items()}

    def same_hierarchy(self, a: str, b: str) -> bool:
        """True iff the two classes live in the same hierarchy."""
        return self.hierarchy_of(a) == self.hierarchy_of(b)

    # -- the IsaOrder protocol ---------------------------------------------------------

    def isa_le(self, sub: str, sup: str) -> bool:
        """``sub <=_ISA sup``: *sub* is *sup* or one of its subclasses."""
        ancestors = self._ancestors.get(sub)
        if ancestors is None:
            return sub == sup
        return sup in ancestors

    def class_lub(self, names: Iterable[str]) -> str | None:
        """The least common superclass, or None.

        The lub exists iff the common ancestor set has a unique minimal
        element (the ISA order being a DAG, minimal upper bounds need
        not be unique, in which case there is no lub).
        """
        items = list(names)
        if not items:
            return None
        for name in items:
            if name not in self._ancestors:
                return items[0] if all(n == items[0] for n in items) else None
        common = frozenset.intersection(
            *(self._ancestors[name] for name in items)
        )
        if not common:
            return None
        minimal = [
            c
            for c in common
            if not any(
                other != c and c in self._ancestors[other]
                for other in common
            )
        ]
        return minimal[0] if len(minimal) == 1 else None

    # -- ordering utilities --------------------------------------------------------------

    def most_specific(self, names: Iterable[str]) -> str | None:
        """The unique class below all of *names*, if one of them is."""
        items = list(names)
        for candidate in items:
            if all(self.isa_le(candidate, other) for other in items):
                return candidate
        return None

    def topological(self) -> list[str]:
        """Classes ordered so that superclasses precede subclasses."""
        return sorted(self._parents, key=lambda c: len(self._ancestors[c]))

    def _require(self, name: str) -> None:
        if name not in self._parents:
            raise UnknownClassError(f"class {name!r} is not declared")
