"""Substitutability through coercion (Section 6.1).

Rule 6.1 lets a subclass refine a non-temporal attribute into a
temporal one.  The value of a temporal attribute is a *function* from
the time domain, so it cannot directly substitute a non-temporal value;
whenever an instance of the subclass must be seen as an instance of the
superclass, the temporal value is **coerced** to its value at the
current instant -- ``snapshot(i, now).a``, i.e. ``o.v.a(now)`` -- and
the history is forgotten, which is semantically right: in the
superclass we were never interested in the history of that attribute.

:func:`as_member_of` builds the full coerced view: the object's state
as an instance of an ancestor class, with every temporally-refined
attribute coerced and every subclass-only attribute projected away.
"""

from __future__ import annotations

from typing import Any

from repro.errors import UnknownAttributeError
from repro.objects.object import TemporalObject
from repro.schema.class_def import ClassSignature
from repro.temporal.temporalvalue import TemporalValue
from repro.types.grammar import TemporalType, Type
from repro.values.null import NULL
from repro.values.records import RecordValue


def coerce_attribute_value(
    value: Any, target_type: Type, now: int
) -> Any:
    """Coerce *value* so it fits an attribute of *target_type*.

    * target temporal, value temporal -- passed through (the subclass
      may have refined the inner domain; the function itself fits);
    * target non-temporal, value temporal -- the *snapshot coercion*:
      the value of the function at ``now`` (null when the function is
      undefined there, e.g. right after the attribute was dropped);
    * otherwise -- passed through.
    """
    if isinstance(value, TemporalValue) and not isinstance(
        target_type, TemporalType
    ):
        return value.get(now, NULL)
    return value


def as_member_of(
    obj: TemporalObject, target: ClassSignature, now: int
) -> RecordValue:
    """The state of *obj* seen as an instance of class *target*.

    For each attribute of *target*: the object's value, coerced per
    :func:`coerce_attribute_value`.  Raises
    :class:`UnknownAttributeError` if the object lacks one of the
    target's attributes (it is then not a member of the class at all).
    """
    fields: dict[str, Any] = {}
    for name, attribute in target.attributes.items():
        if not obj.has_attribute(name):
            raise UnknownAttributeError(
                f"object {obj.oid!r} has no attribute {name!r}; it is "
                f"not substitutable as a member of {target.name!r}"
            )
        fields[name] = coerce_attribute_value(
            obj.get_attribute(name), attribute.type, now
        )
    return RecordValue(fields)
