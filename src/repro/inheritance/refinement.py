"""Refinement of inherited features (Rule 6.1 and Section 6.1).

A subclass must contain all attributes and operations of all its
superclasses; inherited features may be *redefined* under restrictions:

* **Attributes** (Rule 6.1): an attribute of domain T in the superclass
  may, in the subclass, have domain T' where either

  1. ``T' <=_T T``, or
  2. ``T' = temporal(T'')`` with ``T'' <=_T T``

  -- i.e. a non-temporal attribute may be refined into a temporal one
  (on the same or a more specific domain), *never* vice-versa.  Note
  that clause 1 covers the temporal-to-temporal refinement, since
  ``temporal(T2) <=_T temporal(T1)`` iff ``T2 <=_T T1``.

* **Methods**: covariance of the result, contravariance of the inputs
  (checked by :meth:`MethodSignature.is_valid_override`).

:func:`merge_inherited_attributes` computes the effective attribute set
of a subclass from its superclasses' sets plus its own declarations,
raising :class:`RefinementError` on violations -- including the case of
two superclasses contributing *incomparable* domains for the same
attribute with no declared resolution in the subclass.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import RefinementError
from repro.schema.attribute import Attribute
from repro.schema.method import MethodSignature
from repro.types.grammar import TemporalType, Type
from repro.types.subtyping import IsaOrder, is_subtype


def check_attribute_refinement(
    refined: Type, inherited: Type, isa: IsaOrder
) -> bool:
    """Rule 6.1: may an attribute of inherited domain get *refined* domain?"""
    if is_subtype(refined, inherited, isa):
        return True
    if isinstance(refined, TemporalType) and not isinstance(
        inherited, TemporalType
    ):
        return is_subtype(refined.argument, inherited, isa)
    return False


def check_method_override(
    own: MethodSignature, inherited: MethodSignature, isa: IsaOrder
) -> bool:
    """Covariant result, contravariant inputs."""
    return own.is_valid_override(inherited, isa)


def merge_inherited_attributes(
    own: Mapping[str, Attribute],
    inherited_sets: list[Mapping[str, Attribute]],
    isa: IsaOrder,
    class_name: str,
) -> dict[str, Attribute]:
    """The effective attributes of a class under inheritance.

    Every inherited attribute is present; an own declaration overrides
    the inherited one iff Rule 6.1 admits the refinement (against every
    superclass contributing the attribute).  When several superclasses
    contribute the same attribute with different domains and the class
    does not redeclare it, the domains must be linearly related and the
    most specific one wins; incomparable domains raise
    :class:`RefinementError` (the classic multiple-inheritance
    conflict, which Chimera requires the user to resolve explicitly).
    """
    merged: dict[str, Attribute] = {}
    for inherited in inherited_sets:
        for name, attribute in inherited.items():
            if name in own:
                continue  # resolved below against every contributor
            present = merged.get(name)
            if present is None:
                merged[name] = attribute
            elif check_attribute_refinement(
                present.type, attribute.type, isa
            ):
                pass  # the already-chosen domain is the more specific
            elif check_attribute_refinement(
                attribute.type, present.type, isa
            ):
                merged[name] = attribute
            elif present.type != attribute.type:
                raise RefinementError(
                    f"class {class_name!r}: attribute {name!r} is "
                    f"inherited with incomparable domains "
                    f"{present.type!r} and {attribute.type!r}; "
                    "redeclare it to resolve the conflict"
                )
    for name, attribute in own.items():
        for inherited in inherited_sets:
            if name in inherited and not check_attribute_refinement(
                attribute.type, inherited[name].type, isa
            ):
                raise RefinementError(
                    f"class {class_name!r}: attribute {name!r} of domain "
                    f"{attribute.type!r} does not refine the inherited "
                    f"domain {inherited[name].type!r} (Rule 6.1); note "
                    "that a temporal attribute can never be refined "
                    "into a non-temporal one"
                )
        merged[name] = attribute
    return merged


def merge_inherited_methods(
    own: Mapping[str, MethodSignature],
    inherited_sets: list[Mapping[str, MethodSignature]],
    isa: IsaOrder,
    class_name: str,
) -> dict[str, MethodSignature]:
    """The effective methods of a class under inheritance."""
    merged: dict[str, MethodSignature] = {}
    for inherited in inherited_sets:
        for name, method in inherited.items():
            if name in own:
                continue
            present = merged.get(name)
            if present is None or method.is_valid_override(present, isa):
                merged[name] = method
            elif not present.is_valid_override(method, isa):
                raise RefinementError(
                    f"class {class_name!r}: method {name!r} is inherited "
                    f"with incompatible signatures {present!r} and "
                    f"{method!r}; redeclare it to resolve the conflict"
                )
    for name, method in own.items():
        for inherited in inherited_sets:
            if name in inherited and not check_method_override(
                method, inherited[name], isa
            ):
                raise RefinementError(
                    f"class {class_name!r}: method {name!r} redefinition "
                    f"{method!r} violates covariance of the result / "
                    f"contravariance of the inputs against "
                    f"{inherited[name]!r}"
                )
        merged[name] = method
    return merged


def check_class_refines(
    sub_attributes: Mapping[str, Attribute],
    sub_methods: Mapping[str, MethodSignature],
    super_attributes: Mapping[str, Attribute],
    super_methods: Mapping[str, MethodSignature],
    isa: IsaOrder,
) -> list[str]:
    """All Rule-6.1 / variance violations of a subclass signature
    against one superclass signature; empty when compliant."""
    problems: list[str] = []
    for name, attribute in super_attributes.items():
        if name not in sub_attributes:
            problems.append(f"attribute {name!r} is missing in the subclass")
        elif not check_attribute_refinement(
            sub_attributes[name].type, attribute.type, isa
        ):
            problems.append(
                f"attribute {name!r}: {sub_attributes[name].type!r} does "
                f"not refine {attribute.type!r}"
            )
    for name, method in super_methods.items():
        if name not in sub_methods:
            problems.append(f"method {name!r} is missing in the subclass")
        elif not check_method_override(sub_methods[name], method, isa):
            problems.append(
                f"method {name!r}: {sub_methods[name]!r} does not "
                f"validly override {method!r}"
            )
    return problems
