"""Snapshot read executor: forked worker processes serving queries.

CPython's GIL means in-process threads cannot evaluate two queries at
once, so concurrent read throughput needs processes.  The executor
forks a small pool of workers -- the child inherits the whole database
as an operating-system copy-on-write snapshot, the same trick
:mod:`repro.database.parallel` uses for scatter-gather -- and pins the
fork to the database's ``(now, generation, op count)`` state version.
A query dispatched to a version-matched executor therefore computes
against exactly the acquirer's :class:`~repro.database.mvcc.ReadView`
state, off the event loop, on another core, with the full
planner/index/cache stack warm in the child.

Differences from the scatter-gather pool (which splits *one* query
across partitions): this pool runs *many whole queries* concurrently,
so result frames must route back to per-request futures.  A dedicated
dispatcher thread drains the result queue and resolves futures on the
event loop via ``call_soon_threadsafe`` -- the asyncio-safe analogue
of the pool's task-id frame discipline.

When a writer advances the state version the executor is *retired*:
new forks serve new requests while in-flight results on the old pool
drain, after which its workers are released.  Group commit keeps the
respawn rate at one per commit batch, not one per write.

Workers are strictly read-only: the child drops the journal reference,
disables scatter-gather (its inherited pool handles belong to the
parent) and tracing, and ships results as encoded values so the parent
never touches child object graphs.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import threading
from typing import TYPE_CHECKING, Any

from repro import perf

if TYPE_CHECKING:  # pragma: no cover
    from repro.database.database import TemporalDatabase

_FORKS = perf.metric("server.executor_forks")
_EXEC_QUERIES = perf.metric("server.executor_queries")

_ids = itertools.count(1)


def fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover
        return False


def _worker_main(db: "TemporalDatabase", tasks, results) -> None:
    """Worker loop: evaluate whole queries against the forked snapshot."""
    from repro.database import parallel
    from repro.database.persistence import encode_value
    from repro.obs import spans as obs
    from repro.query.evaluator import evaluate
    from repro.query.parser import parse_query

    obs.set_enabled(False)
    # The inherited scatter-gather pool handles belong to the parent
    # process; using them from here would steal the parent's frames.
    parallel.set_enabled(False)
    db._parallel_pool = None
    # Read-only discipline: a worker must never append to the journal.
    db._journal = None
    while True:
        task = tasks.get()
        if task is None:
            return
        task_id, text = task
        try:
            oids = evaluate(db, parse_query(text))
            results.put(
                (task_id, True, [encode_value(oid) for oid in oids])
            )
        except Exception as exc:
            results.put(
                (task_id, False, (type(exc).__name__, str(exc)))
            )


class SnapshotExecutor:
    """One forked, version-pinned pool of query evaluators."""

    def __init__(self, db: "TemporalDatabase", workers: int) -> None:
        if workers < 1:
            raise ValueError("executor needs at least one worker")
        ctx = multiprocessing.get_context("fork")
        #: The state vector the forked snapshots hold.
        self.version = db._state_version()
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._pending: dict[int, tuple[asyncio.Future, Any]] = {}
        self._lock = threading.Lock()
        self._retired = False
        self._closed = False
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(db, self._tasks, self._results),
                daemon=True,
                name=f"repro-server-reader-{index}",
            )
            for index in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        _FORKS.add(workers)
        self._dispatcher = threading.Thread(
            target=self._drain, daemon=True,
            name="repro-server-dispatch",
        )
        self._dispatcher.start()

    # -- parent side ------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self._closed and all(p.is_alive() for p in self._procs)

    @property
    def inflight(self) -> int:
        return len(self._pending)

    async def run(self, query_text: str) -> list:
        """Evaluate *query_text* on a worker; returns encoded oids."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        task_id = next(_ids)
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            self._pending[task_id] = (future, loop)
        self._tasks.put((task_id, query_text))
        _EXEC_QUERIES.add()
        return await future

    def retire(self) -> None:
        """Stop accepting work; release workers once in-flight drains."""
        with self._lock:
            if self._retired or self._closed:
                return
            self._retired = True
            idle = not self._pending
        if idle:
            self.close()

    def close(self) -> None:
        """Release the workers and fail whatever is still pending."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for _ in self._procs:
            try:
                self._tasks.put_nowait(None)
            except Exception:  # pragma: no cover -- queue torn down
                break
        try:
            self._results.put_nowait(None)  # unblock the dispatcher
        except Exception:  # pragma: no cover
            pass
        for future, loop in pending:
            loop.call_soon_threadsafe(
                _fail, future, RuntimeError("executor closed")
            )

    # -- dispatcher thread ------------------------------------------------

    def _drain(self) -> None:
        while True:
            frame = self._results.get()
            if frame is None:
                return
            task_id, ok, payload = frame
            with self._lock:
                entry = self._pending.pop(task_id, None)
                drained = self._retired and not self._pending
            if entry is not None:
                future, loop = entry
                if ok:
                    loop.call_soon_threadsafe(_resolve, future, payload)
                else:
                    kind, text = payload
                    loop.call_soon_threadsafe(
                        _fail, future, QueryWorkerError(kind, text)
                    )
            if drained:
                self.close()
                return


class QueryWorkerError(Exception):
    """A query raised inside a snapshot worker."""

    def __init__(self, kind: str, text: str) -> None:
        super().__init__(f"{kind}: {text}")
        self.kind = kind
        self.text = text


def _resolve(future: asyncio.Future, payload: Any) -> None:
    if not future.done():
        future.set_result(payload)


def _fail(future: asyncio.Future, exc: Exception) -> None:
    if not future.done():
        future.set_exception(exc)
