"""The asyncio serving layer: sessions, group commit, backpressure.

One :class:`TemporalServer` owns one :class:`TemporalDatabase` and
speaks the newline-JSON protocol of :mod:`repro.server.protocol` over
TCP.  Concurrency model (docs/server.md):

* **reads never block writers.**  Each ``query`` acquires a per-request
  :class:`~repro.database.mvcc.ReadView`; when the snapshot executor is
  available the query runs in a version-pinned forked worker on another
  core, otherwise inline under the view's overlays.  With MVCC ablated
  (``REPRO_NO_MVCC``) reads take the global writer lock instead --
  the readers-block-writers baseline the E18 benchmark measures.
* **writes serialize through the WAL.**  Auto-commit ``exec`` requests
  from every session funnel into one writer coroutine which drains the
  pending queue under the global writer lock and applies it inside a
  single ``db.batch()`` -- one fsync barrier group-commits the writes
  of many sessions, and every acknowledgement is sent only after that
  barrier, so an acked write is a durable write.
* **per-session transactions.**  ``begin`` takes the writer lock and
  opens a :class:`~repro.database.transactions.Transaction`; the
  session's ``exec`` requests then apply inline (and journal into the
  transaction scope) until ``commit``/``rollback`` releases the lock.
  A client that disconnects mid-transaction is rolled back.
* **backpressure + admission control.**  Each session reads requests
  into a bounded queue (a full queue stops the socket reader -- TCP
  backpressure does the rest); connections beyond ``max_sessions`` and
  reads beyond ``max_inflight_reads`` are refused with ``retry: true``
  responses and counted in ``server.rejections``.
* **graceful drain.**  ``stop()`` closes the listener, lets in-flight
  requests finish within ``drain_timeout``, rolls back orphaned
  transactions, flushes the write queue, and retires the executor.

Crash-point knobs for the fault harness
(:func:`repro.faults.server.run_server_trial`):
``REPRO_SERVER_CRASH_BEFORE_WRITES=n`` hard-exits the process right
before applying the *n*-th write; ``REPRO_SERVER_CRASH_AFTER_WRITES=n``
hard-exits after the *n*-th write's durability barrier but before its
socket acknowledgement -- the "committed but unacked" window the trial
asserts around.
"""

from __future__ import annotations

import asyncio
import os
import re
import threading
import weakref
from typing import TYPE_CHECKING, Any, Optional

from repro import perf
from repro.database import mvcc as mvcc_mod
from repro.database.transactions import Transaction
from repro.errors import ServerError, TChimeraError
from repro.obs import spans as obs
from repro.server import protocol
from repro.server.executor import (
    QueryWorkerError,
    SnapshotExecutor,
    fork_available,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.database.database import TemporalDatabase

_REQUESTS = perf.metric("server.requests")
_READS = perf.metric("server.reads")
_WRITES = perf.metric("server.writes")
_SESSIONS = perf.metric("server.sessions")
_REJECTIONS = perf.metric("server.rejections")
_GROUP_COMMITS = perf.metric("server.group_commits")

#: Live servers in this process (for the aggregate :func:`stats`).
_SERVERS: "weakref.WeakSet[TemporalServer]" = weakref.WeakSet()

#: A trailing in-text ``as of N`` clause (case-insensitive, like every
#: query keyword) -- sniffed before routing so transaction-time reads
#: never reach the MVCC path, whose view proxy has no journal.
_AS_OF_CLAUSE = re.compile(r"\bas\s+of\s+(\d+)\s*$", re.IGNORECASE)


def _env_int(name: str) -> int:
    raw = os.environ.get(name, "").strip()
    try:
        return int(raw) if raw else 0
    except ValueError:
        return 0


def stats() -> dict:
    """Process-wide serving-layer gauges (``repro stats`` ``server``
    section; exported as ``repro_server_*`` Prometheus gauges)."""
    servers = list(_SERVERS)
    return {
        "sessions_active": sum(len(s._sessions) for s in servers),
        "sessions_total": _SESSIONS.count,
        "active_views": mvcc_mod.active_views(),
        "admission_rejections": _REJECTIONS.count,
        "requests": _REQUESTS.count,
        "reads": _READS.count,
        "writes": _WRITES.count,
        "group_commits": _GROUP_COMMITS.count,
        "inflight_reads": sum(s._inflight_reads for s in servers),
        "mvcc_enabled": mvcc_mod.is_enabled,
    }


class TemporalServer:
    """One serving endpoint over one database."""

    def __init__(
        self,
        db: "TemporalDatabase",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: int = 64,
        queue_depth: int = 32,
        max_inflight_reads: int | None = None,
        read_workers: int | None = None,
        use_mvcc: bool | None = None,
        drain_timeout: float = 5.0,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self.queue_depth = max(1, queue_depth)
        if read_workers is None:
            read_workers = min(4, max(1, (os.cpu_count() or 1) - 1))
        self.read_workers = read_workers
        if max_inflight_reads is None:
            max_inflight_reads = max(4, read_workers * 4)
        self.max_inflight_reads = max_inflight_reads
        if use_mvcc is None:
            use_mvcc = mvcc_mod.is_enabled
        self.use_mvcc = use_mvcc and mvcc_mod.is_enabled
        self.drain_timeout = drain_timeout

        self._server: asyncio.AbstractServer | None = None
        self._sessions: set["_Session"] = set()
        self._draining = False
        self._inflight_reads = 0
        self._executor: SnapshotExecutor | None = None
        self._write_lock = asyncio.Lock()
        self._writes: list[tuple[tuple, asyncio.Future]] = []
        self._write_event = asyncio.Event()
        self._writer_task: asyncio.Task | None = None
        self._writes_applied = 0
        self._crash_before = _env_int("REPRO_SERVER_CRASH_BEFORE_WRITES")
        self._crash_after = _env_int("REPRO_SERVER_CRASH_AFTER_WRITES")

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._writer_task = asyncio.get_running_loop().create_task(
            self._writer_loop()
        )
        _SERVERS.add(self)
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Graceful drain: finish in-flight work, then shut down."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while self._sessions and loop.time() < deadline:
            if all(s.idle for s in self._sessions):
                break
            await asyncio.sleep(0.02)
        for session in list(self._sessions):
            session.abort()
        # Let aborted sessions unwind (transaction rollbacks included).
        for _ in range(50):
            if not self._sessions:
                break
            await asyncio.sleep(0.01)
        # Flush whatever writes were accepted before the drain began.
        if self._writes:
            self._write_event.set()
            await asyncio.sleep(0)
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        if self._executor is not None:
            self._executor.retire()
            self._executor = None
        _SERVERS.discard(self)

    # -- connections ------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if self._draining or len(self._sessions) >= self.max_sessions:
            _REJECTIONS.add()
            reason = (
                "server is draining"
                if self._draining
                else "server at session capacity"
            )
            writer.write(protocol.dump_line({
                "id": None,
                "ok": False,
                "error": reason,
                "kind": "ServerError",
                "retry": True,
            }))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        session = _Session(self, reader, writer)
        self._sessions.add(session)
        _SESSIONS.add()
        try:
            await session.run()
        finally:
            self._sessions.discard(session)
            session.cleanup()

    # -- reads ------------------------------------------------------------

    def _ensure_executor(self) -> SnapshotExecutor | None:
        """A version-matched executor, respawning after writes.

        Must be called with no awaits between the version read and the
        dispatch (single event-loop discipline keeps that atomic).
        """
        if self.read_workers < 1 or not fork_available():
            return None
        db = self.db
        if db.in_batch or db._txn_active:
            return None
        version = db._state_version()
        executor = self._executor
        if (
            executor is not None
            and executor.version == version
            and executor.alive
        ):
            return executor
        if executor is not None:
            executor.retire()
            self._executor = None
        try:
            executor = SnapshotExecutor(db, self.read_workers)
        except Exception:
            return None
        self._executor = executor
        return executor

    async def _run_query(self, text: str, as_of: int | None = None) -> dict:
        db = self.db
        _READS.add()
        if self._inflight_reads >= self.max_inflight_reads:
            _REJECTIONS.add()
            raise _Overloaded(
                f"too many in-flight reads (> {self.max_inflight_reads})"
            )
        self._inflight_reads += 1
        try:
            if as_of is None and _AS_OF_CLAUSE.search(text):
                # An in-text `... as of N` clause without the protocol
                # field: same transaction-time pin, same inline route
                # (the MVCC view proxy has no journal to resolve it).
                as_of = int(_AS_OF_CLAUSE.search(text).group(1))
            if as_of is not None:
                # Transaction-time pin: the believed-at state is
                # immutable (a committed journal prefix never changes),
                # so no read view is needed -- resolve and evaluate
                # inline under the writer lock.  At-head pins read the
                # live state; historical pins pay one reconstruction
                # (memoized in repro.bitemporal.asof).
                async with self._write_lock:
                    return self._inline_query(text, as_of)
            if not (self.use_mvcc and mvcc_mod.is_enabled):
                # Ablation baseline: reads serialize with writes on the
                # global writer lock and run on the event loop --
                # readers block writers and each other.
                async with self._write_lock:
                    return self._inline_query(text)
            if db._txn_active or db.in_batch:
                # An open session transaction owns the writer lock;
                # queue behind it and read the committed state.
                async with self._write_lock:
                    return self._inline_query(text)
            executor = self._ensure_executor()
            if executor is not None:
                # The fork *is* the snapshot: pin the version through
                # the view API, then hand off -- no copy-on-write
                # overlays needed while the query runs off-loop.
                view = db.mvcc.acquire()
                pinned_now = view.now
                view.close()
                try:
                    encoded = await executor.run(text)
                    return {
                        "oids": encoded,
                        "count": len(encoded),
                        "now": pinned_now,
                    }
                except QueryWorkerError:
                    raise
                except (RuntimeError, OSError):
                    pass  # executor torn down underneath us: fall back
            with db.mvcc.acquire() as fallback_view:
                oids = fallback_view.execute(text)
                from repro.database.persistence import encode_value

                return {
                    "oids": [encode_value(oid) for oid in oids],
                    "count": len(oids),
                    "now": fallback_view.now,
                }
        finally:
            self._inflight_reads -= 1

    def _inline_query(self, text: str, as_of: int | None = None) -> dict:
        from dataclasses import replace

        from repro.database.persistence import encode_value
        from repro.query.evaluator import evaluate
        from repro.query.parser import parse_query

        query = parse_query(text)
        if as_of is not None:
            # The protocol field wins over an in-text `as of` clause.
            query = replace(query, as_of=as_of)
        if query.as_of is None:
            oids = evaluate(self.db, query)
            return {
                "oids": [encode_value(oid) for oid in oids],
                "count": len(oids),
                "now": self.db.now,
            }
        from repro.bitemporal import asof as asof_mod

        # Resolve once so the reply can carry the believed-at clock
        # (the second resolution inside evaluate hits the same state:
        # live at the head, the LRU memo otherwise).
        believed = asof_mod.as_of(self.db, query.as_of)
        oids = evaluate(self.db, query)
        return {
            "oids": [encode_value(oid) for oid in oids],
            "count": len(oids),
            "now": believed.now,
            "as_of": query.as_of,
        }

    # -- writes -----------------------------------------------------------

    def submit_write(self, op: tuple) -> asyncio.Future:
        """Queue one auto-commit write for the group-committing
        writer coroutine; resolves after the durability barrier."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._writes.append((op, future))
        self._write_event.set()
        return future

    async def _writer_loop(self) -> None:
        while True:
            await self._write_event.wait()
            self._write_event.clear()
            if not self._writes:
                continue
            async with self._write_lock:
                pending = self._writes
                self._writes = []
                self._apply_writes(pending)

    def _apply_writes(
        self, pending: list[tuple[tuple, asyncio.Future]]
    ) -> None:
        """Apply queued writes under one durability barrier (no awaits:
        the whole block is one event-loop step)."""
        from repro.database import batch as batch_mod
        from repro.faults.harness import apply_op

        db = self.db
        group = (
            len(pending) > 1
            and db.journal is not None
            and batch_mod.is_enabled
            and not db.in_batch
        )
        outcomes: list[tuple[asyncio.Future, bool, Any]] = []

        def _apply_one(op: tuple, future: asyncio.Future) -> None:
            if (
                self._crash_before
                and self._writes_applied + 1 >= self._crash_before
            ):
                os._exit(42)  # fault harness: die before the write
            try:
                result = apply_op(db, op)
            except Exception as exc:
                outcomes.append((future, False, exc))
                return
            self._writes_applied += 1
            outcomes.append((future, True, result))

        if group:
            with db.batch():
                for op, future in pending:
                    _apply_one(op, future)
            _GROUP_COMMITS.add()
        else:
            for op, future in pending:
                _apply_one(op, future)
        # ---- durability barrier passed: the batch (or each op) is on
        # disk.  Acks only from here on.
        if self._crash_after and self._writes_applied >= self._crash_after:
            os._exit(43)  # fault harness: die between commit and ack
        for future, ok, payload in outcomes:
            if future.done():
                continue
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(payload)
        _WRITES.add(sum(1 for _f, ok, _p in outcomes if ok))

    # -- introspection ----------------------------------------------------

    def server_stats(self) -> dict:
        """This endpoint's view of :func:`stats` plus local gauges."""
        data = stats()
        data.update({
            "host": self.host,
            "port": self.port,
            "draining": self._draining,
            "read_workers": self.read_workers,
            "queue_depth": self.queue_depth,
            "max_sessions": self.max_sessions,
            "use_mvcc": self.use_mvcc,
            "mvcc": self.db.mvcc.stats(),
        })
        return data


class _Overloaded(ServerError):
    """Admission control refused the request (safe to retry)."""


class _Session:
    """One client connection: bounded request queue + processor."""

    def __init__(
        self,
        server: TemporalServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self._reader = reader
        self._writer = writer
        self._queue: asyncio.Queue = asyncio.Queue(
            maxsize=server.queue_depth
        )
        self._reader_task: asyncio.Task | None = None
        self._txn: Optional[Transaction] = None
        self._busy = False
        self._closing = False

    @property
    def idle(self) -> bool:
        return (
            not self._busy and self._queue.empty() and self._txn is None
        )

    def abort(self) -> None:
        """Hard-close the connection (drain timeout expired)."""
        self._closing = True
        if self._reader_task is not None:
            self._reader_task.cancel()
        try:
            self._writer.close()
        except Exception:
            pass

    def cleanup(self) -> None:
        """Roll back an orphaned transaction and release the lock."""
        if self._txn is not None:
            try:
                self._txn.rollback()
            except Exception:
                pass
            self._txn = None
            if self.server._write_lock.locked():
                self.server._write_lock.release()

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        self._reader_task = loop.create_task(self._read_loop())
        session_span = obs.span("server.session") if obs.is_enabled else None
        if session_span is not None:
            session_span.__enter__()
        try:
            await self._process_loop()
        finally:
            if session_span is not None:
                try:
                    session_span.__exit__(None, None, None)
                except ValueError:
                    # The coroutine was torn down from the loop-close
                    # context; the histogram entry still lands.
                    pass
            self._reader_task.cancel()
            try:
                self._writer.close()
            except Exception:
                pass

    async def _read_loop(self) -> None:
        """Socket -> bounded queue.  A full queue suspends this task,
        which stops reading the socket: kernel-level backpressure."""
        try:
            while True:
                try:
                    line = await self._reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._queue.put(_TOO_LONG)
                    return
                if not line:
                    await self._queue.put(None)
                    return
                if line.strip():
                    await self._queue.put(line)
        except (ConnectionError, OSError, asyncio.CancelledError):
            try:
                self._queue.put_nowait(None)
            except asyncio.QueueFull:
                pass

    async def _process_loop(self) -> None:
        while not self._closing:
            if self.server._draining and self._queue.empty():
                return
            try:
                line = await asyncio.wait_for(
                    self._queue.get(), timeout=0.25
                )
            except asyncio.TimeoutError:
                continue
            if line is None:
                return
            self._busy = True
            try:
                response = await self._handle_line(line)
            finally:
                self._busy = False
            if response is None:
                continue
            try:
                self._writer.write(protocol.dump_line(response))
                await self._writer.drain()
            except (ConnectionError, OSError):
                return
            if response.get("_close"):
                del response["_close"]
                return

    async def _handle_line(self, line: bytes) -> dict | None:
        _REQUESTS.add()
        if line is _TOO_LONG:
            self._closing = True
            return {
                "id": None,
                "ok": False,
                "error": "request line too long",
                "kind": "ProtocolError",
                "retry": False,
                "_close": True,
            }
        try:
            message = protocol.parse_line(line)
        except protocol.ProtocolError as exc:
            return _error(None, exc)
        request_id = message.get("id")
        command = message.get("cmd")
        if obs.is_enabled:
            with obs.span("server.request", cmd=str(command)):
                return await self._dispatch(request_id, command, message)
        return await self._dispatch(request_id, command, message)

    async def _dispatch(
        self, request_id: Any, command: Any, message: dict
    ) -> dict:
        server = self.server
        try:
            if command == "ping":
                return _ok(request_id, "pong")
            if command == "query":
                text = message.get("q")
                if not isinstance(text, str):
                    raise protocol.ProtocolError(
                        "query needs a string field 'q'"
                    )
                as_of = message.get("as_of")
                if as_of is not None and (
                    isinstance(as_of, bool) or not isinstance(as_of, int)
                ):
                    raise protocol.ProtocolError(
                        "query field 'as_of' must be an integer "
                        "transaction time (LSN)"
                    )
                if self._txn is not None:
                    # This session owns the writer lock: evaluate its
                    # own uncommitted state inline (re-acquiring the
                    # lock here would self-deadlock).  An AS OF read is
                    # refused here by the bitemporal layer: the open
                    # transaction's frames have no committed
                    # transaction time yet.
                    _READS.add()
                    return _ok(
                        request_id, server._inline_query(text, as_of)
                    )
                return _ok(
                    request_id, await server._run_query(text, as_of)
                )
            if command == "exec":
                return await self._exec(request_id, message)
            if command == "begin":
                return await self._begin(request_id)
            if command == "commit":
                return self._commit(request_id)
            if command == "rollback":
                return self._rollback(request_id)
            if command == "stats":
                return _ok(request_id, server.server_stats())
            if command == "close":
                response = _ok(request_id, "bye")
                response["_close"] = True
                return response
            raise protocol.ProtocolError(
                f"unknown command {command!r}"
            )
        except _Overloaded as exc:
            return _error(request_id, exc, retry=True)
        except (TChimeraError, QueryWorkerError) as exc:
            return _error(request_id, exc)
        except Exception as exc:  # engine invariant: never kill the session
            return _error(request_id, exc)

    async def _exec(self, request_id: Any, message: dict) -> dict:
        op = protocol.decode_op(message.get("op"))
        server = self.server
        if self._txn is not None:
            # Inside this session's transaction: apply inline (the
            # session already owns the writer lock); durability comes
            # with the transaction commit.
            from repro.faults.harness import apply_op

            result = apply_op(server.db, op)
            _WRITES.add()
            return _ok(request_id, protocol.encode_result(result))
        if server._draining:
            _REJECTIONS.add()
            raise _Overloaded("server is draining")
        result = await server.submit_write(op)
        return _ok(request_id, protocol.encode_result(result))

    async def _begin(self, request_id: Any) -> dict:
        if self._txn is not None:
            raise ServerError("transaction already open on this session")
        await self.server._write_lock.acquire()
        try:
            self._txn = Transaction(self.server.db).begin()
        except BaseException:
            self.server._write_lock.release()
            raise
        return _ok(request_id, "begun")

    def _commit(self, request_id: Any) -> dict:
        if self._txn is None:
            raise ServerError("no transaction open on this session")
        txn, self._txn = self._txn, None
        try:
            txn.commit()
        finally:
            self.server._write_lock.release()
        return _ok(request_id, "committed")

    def _rollback(self, request_id: Any) -> dict:
        if self._txn is None:
            raise ServerError("no transaction open on this session")
        txn, self._txn = self._txn, None
        try:
            txn.rollback()
        finally:
            self.server._write_lock.release()
        return _ok(request_id, "rolled back")


#: Sentinel queued when a request line exceeded the stream limit.
_TOO_LONG = object()


def _ok(request_id: Any, result: Any) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def _error(request_id: Any, exc: Exception, retry: bool = False) -> dict:
    # QueryWorkerError/ServerError carry the originating engine
    # exception class in .kind; surface that, not the wrapper.
    kind = getattr(exc, "kind", None) or type(exc).__name__
    return {
        "id": request_id,
        "ok": False,
        "error": str(exc),
        "kind": kind,
        "retry": retry,
    }


# -- embedding helpers ------------------------------------------------------


async def serve(db: "TemporalDatabase", **kwargs: Any) -> TemporalServer:
    """Start a server on *db*; returns it once bound."""
    server = TemporalServer(db, **kwargs)
    await server.start()
    return server


class BackgroundServer:
    """A server on its own thread + event loop (tests, benchmarks).

    ::

        with BackgroundServer(db) as bg:
            client = ServerClient.connect(bg.host, bg.port)
    """

    def __init__(self, db: "TemporalDatabase", **kwargs: Any) -> None:
        self._db = db
        self._kwargs = kwargs
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: TemporalServer | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.host = ""
        self.port = 0

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-server"
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServerError("server failed to start (timeout)")
        if self._failure is not None:
            raise ServerError(f"server failed to start: {self._failure}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def _main() -> None:
            try:
                self._server = TemporalServer(self._db, **self._kwargs)
                self.host, self.port = await self._server.start()
            except BaseException as exc:
                self._failure = exc
                self._ready.set()
                return
            self._ready.set()
            await self._server.serve_forever()

        try:
            loop.run_until_complete(_main())
            loop.run_forever()
        finally:
            loop.close()

    def stop(self) -> None:
        loop, server = self._loop, self._server
        if loop is None or not loop.is_running():
            return

        async def _shutdown() -> None:
            if server is not None:
                await server.stop()
            asyncio.get_running_loop().stop()

        asyncio.run_coroutine_threadsafe(_shutdown(), loop)
        if self._thread is not None:
            self._thread.join(timeout=15)

    @property
    def server(self) -> TemporalServer:
        assert self._server is not None
        return self._server

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
