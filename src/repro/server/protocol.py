"""The wire protocol: newline-delimited JSON over a byte stream.

One request per line, one response per line, UTF-8.  Requests carry a
client-chosen ``id`` echoed back on the response, a ``cmd``, and
command-specific fields::

    {"id": 1, "cmd": "query", "q": "select employee where salary > 2000"}
    {"id": 1, "ok": true, "result": {"oids": [...], "count": 2, "now": 7}}

Commands
--------
``query``     evaluate a SELECT (``q``) under a per-request read view;
              an optional integer ``as_of`` field pins the read at a
              past transaction time (commit LSN) -- the reply then
              carries the believed-at clock as ``now`` and echoes the
              pin as ``as_of`` (equivalent to an ``as of N`` clause in
              the query text itself);
``exec``      apply one logical write operation (``op``, see below);
``begin`` / ``commit`` / ``rollback``
              session transaction control (holds the global writer
              lock while open -- see docs/server.md);
``ping``      liveness probe;
``stats``     the server's gauge/counter snapshot;
``close``     orderly goodbye (the server acks, then closes).

Errors come back as ``{"id": ..., "ok": false, "error": "...",
"kind": "<ExceptionClass>", "retry": <bool>}``; ``retry`` is true
exactly when the request was *refused* (admission control, draining)
rather than *failed*, so a client may safely resend it.

Write operations (``exec``) reuse the logical-operation vocabulary of
the fault harness (:func:`repro.faults.harness.apply_op`) -- the same
tuples the crash trials replay -- with every model value passed through
:func:`repro.database.persistence.encode_value` /
:func:`~repro.database.persistence.decode_value`, so oids, nulls, sets
and records survive the JSON trip::

    ["create", "employee", {"name": "ann", "salary": 2500.0}]
    ["update", {"$kind": "oid", ...}, "salary", 2800.0]
    ["tick", 1]

This module is dependency-light on purpose: both the asyncio server
and the blocking client import it, and the fault harness drives a
subprocess server through it.
"""

from __future__ import annotations

import json
from typing import Any

from repro.database.persistence import decode_value, encode_value
from repro.errors import DatabaseError

#: Requests larger than this are refused (one line must fit in memory
#: comfortably; a legitimate request is a query string or one op).
MAX_LINE_BYTES = 1 << 20

#: Op kinds whose oid-positions/value-positions need decoding, mapped
#: to ``(oid indexes, value indexes)`` within the argument list.
_OP_KINDS = {
    "tick": ((), ()),
    "define_class": ((), ()),
    "add_attribute": ((), ()),
    "remove_attribute": ((), ()),
    "drop_class": ((), ()),
    "create": ((), (1,)),          # payload mapping at index 1
    "update": ((0,), (2,)),
    "migrate": ((0,), (2,)),       # payload mapping at index 2
    "delete": ((0,), ()),
    "correct": ((0,), (4,)),
}


class ProtocolError(DatabaseError):
    """A malformed frame, unknown command, or oversized request."""


def dump_line(message: dict) -> bytes:
    """Serialize one protocol message as a wire line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def parse_line(raw: bytes) -> dict:
    """Parse one wire line; raise :class:`ProtocolError` when invalid."""
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed request line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def encode_op(op: tuple) -> list:
    """One logical operation tuple as its JSON wire form."""
    kind = op[0]
    if kind not in _OP_KINDS:
        raise ProtocolError(f"unknown op kind {kind!r}")
    oid_at, value_at = _OP_KINDS[kind]
    encoded: list[Any] = [kind]
    for index, arg in enumerate(op[1:]):
        if index in oid_at:
            encoded.append(encode_value(arg))
        elif index in value_at:
            if isinstance(arg, dict):
                encoded.append(
                    {name: encode_value(v) for name, v in arg.items()}
                )
            else:
                encoded.append(encode_value(arg))
        else:
            encoded.append(arg)
    return encoded


def decode_op(payload: Any) -> tuple:
    """The inverse of :func:`encode_op`: wire form back to an op tuple
    ready for :func:`repro.faults.harness.apply_op`."""
    if not isinstance(payload, list) or not payload:
        raise ProtocolError("op must be a non-empty JSON array")
    kind = payload[0]
    if kind not in _OP_KINDS:
        raise ProtocolError(f"unknown op kind {kind!r}")
    oid_at, value_at = _OP_KINDS[kind]
    decoded: list[Any] = [kind]
    for index, arg in enumerate(payload[1:]):
        if index in oid_at:
            decoded.append(decode_value(arg))
        elif index in value_at:
            if isinstance(arg, dict) and "$kind" not in arg:
                decoded.append(
                    {name: decode_value(v) for name, v in arg.items()}
                )
            else:
                decoded.append(decode_value(arg))
        elif isinstance(arg, list):
            # define_class parents/attribute spec lists arrive as JSON
            # arrays; apply_op wants the original (nested) sequences.
            decoded.append([
                tuple(item) if isinstance(item, list) else item
                for item in arg
            ])
        else:
            decoded.append(arg)
    if kind == "add_attribute" and isinstance(decoded[2], list):
        decoded[2] = tuple(decoded[2])
    return tuple(decoded)


def encode_result(value: Any) -> Any:
    """Encode one op result (oid, instant, None, ...) for the wire.

    Results outside the value domain (e.g. ``define_class`` returns the
    new :class:`~repro.schema.signature.ClassSignature`) travel as
    their textual rendering -- the client wants the acknowledgement,
    not the schema object.
    """
    if value is None:
        return None
    try:
        return encode_value(value)
    except Exception:
        return str(value)


def decode_result(value: Any) -> Any:
    return decode_value(value) if value is not None else None
