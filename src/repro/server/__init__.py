"""The concurrent serving layer (docs/server.md).

An asyncio TCP server speaking a newline-JSON protocol over the
existing query language: per-request MVCC read views keep readers off
the writers' path, auto-commit writes group-commit across sessions
through one ``db.batch()`` fsync barrier, and explicit per-session
transactions serialize on a global writer lock.

Public surface::

    from repro.server import TemporalServer, BackgroundServer, ServerClient

    with BackgroundServer(db) as bg:
        with ServerClient.connect(bg.host, bg.port) as client:
            client.query("select employee where salary > 2000")
"""

from repro.server.client import ServerClient
from repro.server.executor import (
    QueryWorkerError,
    SnapshotExecutor,
    fork_available,
)
from repro.server.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_op,
    decode_result,
    dump_line,
    encode_op,
    encode_result,
    parse_line,
)
from repro.server.server import (
    BackgroundServer,
    TemporalServer,
    serve,
    stats,
)

__all__ = [
    "BackgroundServer",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "QueryWorkerError",
    "ServerClient",
    "SnapshotExecutor",
    "TemporalServer",
    "decode_op",
    "decode_result",
    "dump_line",
    "encode_op",
    "encode_result",
    "fork_available",
    "parse_line",
    "serve",
    "stats",
]
