"""A blocking socket client for the serving layer.

Synchronous on purpose: the fault harness, the benchmark workers, and
the property tests all drive the server from plain threads or
subprocesses, where a one-socket-one-thread blocking client is the
simplest correct thing.  Each request writes one JSON line and reads
one JSON line back (the server answers a session's requests in order).

::

    client = ServerClient.connect(host, port)
    oids = client.query("select employee where salary > 2000")
    client.execute(("update", oids[0], "salary", 2800.0))
    client.close()

Server-side failures surface as :class:`~repro.errors.ServerError`
with ``kind`` naming the engine exception class and ``retry`` set when
the request was refused (admission control / draining) rather than
failed.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.errors import ServerError
from repro.server import protocol


class ServerClient:
    """One blocking protocol session over a TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rb")
        self._next_id = 0

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: float = 30.0
    ) -> "ServerClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(timeout)
        return cls(sock)

    # -- request plumbing -------------------------------------------------

    def request(self, message: dict) -> Any:
        """Send one raw protocol message; return the ``result`` field.

        Raises :class:`ServerError` on an ``ok: false`` response or a
        closed connection.
        """
        self._next_id += 1
        message = dict(message, id=self._next_id)
        try:
            self._sock.sendall(protocol.dump_line(message))
            raw = self._file.readline()
        except (ConnectionError, OSError) as exc:
            raise ServerError(
                f"connection lost: {exc}", kind="ConnectionError"
            ) from exc
        if not raw:
            raise ServerError(
                "connection closed by server", kind="ConnectionError"
            )
        response = protocol.parse_line(raw)
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown server error"),
                kind=response.get("kind", "ServerError"),
                retry=bool(response.get("retry")),
            )
        return response.get("result")

    # -- commands ---------------------------------------------------------

    def ping(self) -> bool:
        return self.request({"cmd": "ping"}) == "pong"

    def query(self, text: str, as_of: int | None = None) -> list:
        """Evaluate a SELECT; returns the matching oids (decoded).

        *as_of* pins the read at a past transaction time (commit LSN);
        equivalent to an ``as of N`` clause in the query text."""
        return [
            protocol.decode_result(o)
            for o in self.query_raw(text, as_of=as_of)["oids"]
        ]

    def query_raw(self, text: str, as_of: int | None = None) -> dict:
        """Evaluate a SELECT; returns the raw result envelope
        (``oids`` still wire-encoded, plus ``count`` and ``now``,
        and the echoed ``as_of`` pin when one was given)."""
        message: dict = {"cmd": "query", "q": text}
        if as_of is not None:
            message["as_of"] = as_of
        return self.request(message)

    def execute(self, op: tuple) -> Any:
        """Apply one logical write operation (see
        :func:`repro.faults.harness.apply_op` for the vocabulary)."""
        result = self.request(
            {"cmd": "exec", "op": protocol.encode_op(op)}
        )
        return protocol.decode_result(result)

    def begin(self) -> None:
        self.request({"cmd": "begin"})

    def commit(self) -> None:
        self.request({"cmd": "commit"})

    def rollback(self) -> None:
        self.request({"cmd": "rollback"})

    def stats(self) -> dict:
        return self.request({"cmd": "stats"})

    def close(self) -> None:
        try:
            self.request({"cmd": "close"})
        except ServerError:
            pass
        finally:
            self.close_socket()

    def close_socket(self) -> None:
        """Drop the connection without the protocol goodbye (used by
        the fault harness to model an abrupt client death)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
